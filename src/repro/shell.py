"""Interactive VQL shell — ``python -m repro.shell``.

A small REPL over a :class:`~repro.engine.QueryEngine` for poking at the
system: load a demo dataset, type VQL, inspect plans, costs, and the
adaptive strategy decisions.

Commands (everything else is executed as VQL):

=====================  ====================================================
``.help``              this text
``.load cars [N]``     load the car/dealer demo database (default 200 cars)
``.load words [N]``    load N synthetic bible words (default 2000)
``.peers N``           rebuild the network with N peers (data reloads)
``.strategy NAME``     qgrams | qsamples | strings | adaptive
``.analyze A [B ...]`` collect statistics (cost-based planning + cost model)
``.predict S A D``     per-strategy cost predictions for Similar(S, A, D)
``.explain QUERY``     show the physical plan without executing
``.stats``             session cost ledger
``.quit``              leave
=====================  ====================================================

In ``adaptive`` mode every similarity query is resolved by the cost
model; the chosen strategy and its predicted-vs-actual message cost are
printed with the query result (they ride on the
:class:`~repro.overlay.messages.CostReport`).
"""

from __future__ import annotations

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.core.errors import ReproError
from repro.engine import QueryEngine


class Shell:
    """State and command dispatch for the REPL (UI-independent, testable)."""

    def __init__(self, n_peers: int = 64, seed: int = 0):
        self.n_peers = n_peers
        self.seed = seed
        self.dataset: tuple[str, int] | None = None
        self.engine = QueryEngine.build(n_peers, config=StoreConfig(seed=seed))

    #: Backwards-compatible alias (earlier shells exposed ``.store``).
    @property
    def store(self) -> QueryEngine:
        return self.engine

    def execute(self, line: str) -> str:
        """Run one input line; returns the text to display.

        Raises ``SystemExit`` on ``.quit``; library errors come back as
        messages, never tracebacks.
        """
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("."):
                return self._command(line)
            return self._query(line)
        except ReproError as error:
            return f"error: {error}"

    # -- dot commands -----------------------------------------------------------

    def _command(self, line: str) -> str:
        parts = line.split()
        name, args = parts[0], parts[1:]
        if name == ".help":
            return __doc__.split("Commands", 1)[1]
        if name == ".quit":
            raise SystemExit(0)
        if name == ".load":
            return self._load(args)
        if name == ".peers":
            if not args or not args[0].isdigit():
                return "usage: .peers N"
            self.n_peers = int(args[0])
            return self._rebuild()
        if name == ".strategy":
            if not args:
                return f"strategy: {self.engine.ctx.strategy.value}"
            self.engine.ctx.strategy = SimilarityStrategy.from_name(args[0])
            return f"strategy set to {self.engine.ctx.strategy.value}"
        if name == ".analyze":
            if not args:
                return "usage: .analyze ATTRIBUTE [ATTRIBUTE ...]"
            catalog = self.engine.analyze(args)
            lines = [
                f"{a}: ~{catalog.get(a).row_count} rows, "
                f"~{catalog.get(a).distinct_estimate} distinct"
                for a in catalog.attributes()
            ]
            return "\n".join(lines)
        if name == ".predict":
            if len(args) != 3 or not args[2].isdigit():
                return "usage: .predict SEARCH ATTRIBUTE DISTANCE"
            predictions = self.engine.predict_similar(
                args[0], args[1], int(args[2])
            )
            return "\n".join(
                f"{value}: ~{p.messages:.0f} messages, "
                f"~{p.payload_bytes:.0f} bytes, ~{p.latency_ms:.0f} ms"
                for value, p in predictions.items()
            )
        if name == ".explain":
            if not args:
                return "usage: .explain SELECT ..."
            return self.engine.explain(line.split(None, 1)[1])
        if name == ".stats":
            return self.engine.stats.summary()
        return f"unknown command {name!r} — try .help"

    def _load(self, args: list[str]) -> str:
        if not args:
            return "usage: .load cars|words [N]"
        kind = args[0]
        count = int(args[1]) if len(args) > 1 and args[1].isdigit() else 0
        if kind == "cars":
            self.dataset = ("cars", count or 200)
        elif kind == "words":
            self.dataset = ("words", count or 2000)
        else:
            return f"unknown dataset {kind!r} (cars | words)"
        return self._rebuild()

    def _rebuild(self) -> str:
        triples = []
        label = "empty"
        if self.dataset is not None:
            kind, count = self.dataset
            if kind == "cars":
                from repro.datasets.cars import car_database

                triples = car_database(n_cars=count, seed=self.seed).triples
                label = f"{count} cars + dealers"
            else:
                from repro.datasets.bible import bible_triples

                triples = bible_triples(count, seed=self.seed)
                label = f"{count} words"
        strategy = self.engine.ctx.strategy
        self.engine = QueryEngine.build(
            self.n_peers, triples, StoreConfig(seed=self.seed),
            strategy=strategy,
        )
        return (
            f"network: {self.engine.n_peers} peers, {label}, "
            f"{self.engine.network.total_entries()} entries"
        )

    # -- queries -------------------------------------------------------------------

    def _query(self, text: str) -> str:
        result = self.engine.query(text)
        lines = []
        for row in result.rows[:50]:
            lines.append(
                "  ".join(f"{k}={v!r}" for k, v in row.items())
            )
        if len(result.rows) > 50:
            lines.append(f"... ({len(result.rows)} rows total)")
        lines.append(
            f"[{len(result.rows)} rows, {result.cost.messages} messages, "
            f"{result.cost.payload_bytes} bytes]"
        )
        for decision in result.cost.decisions:
            lines.append(f"[adaptive] {decision.summary()}")
        return "\n".join(lines)


def main() -> int:  # pragma: no cover - interactive entry point
    shell = Shell()
    print("repro VQL shell — .help for commands, .quit to leave")
    print(shell.execute(".load words 500"))
    while True:
        try:
            line = input("vql> ")
        except EOFError:
            print()
            return 0
        try:
            output = shell.execute(line)
        except SystemExit:
            return 0
        except Exception as error:  # noqa: BLE001 - REPL must survive
            output = f"error: {error}"
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
