"""Edit distance — the paper's string ``dist()`` (Section 3).

Two implementations:

* :func:`edit_distance` — classic two-row Wagner–Fischer Levenshtein;
* :func:`edit_distance_within` — banded variant that answers the decision
  problem ``edit(a, b) <= d``; it explores only a ``2d+1`` diagonal band
  and exits early, which is what the final verification step of
  Algorithm 2 (line 23) actually needs.  Returns the exact distance when
  it is ``<= d`` and ``d + 1`` otherwise (a saturating sentinel).
"""

from __future__ import annotations


def edit_distance(a: str, b: str) -> int:
    """Exact Levenshtein distance (unit insert/delete/substitute costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # keep the inner row short
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current[j] = min(
                previous[j] + 1,  # delete from a
                current[j - 1] + 1,  # insert into a
                previous[j - 1] + cost,  # substitute
            )
        previous = current
    return previous[-1]


def edit_distance_within(a: str, b: str, d: int) -> int:
    """Banded Levenshtein: exact distance if ``<= d``, else ``d + 1``.

    The length filter comes first: strings whose lengths differ by more
    than ``d`` cannot be within ``d``.  The DP then only fills cells with
    ``|i - j| <= d``; any row whose band minimum exceeds ``d`` aborts.
    """
    if d < 0:
        return 0 if a == b else 1
    length_gap = abs(len(a) - len(b))
    if length_gap > d:
        return d + 1
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    n, m = len(a), len(b)
    infinity = d + 1
    previous = [j if j <= d else infinity for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - d)
        hi = min(m, i + d)
        current = [infinity] * (m + 1)
        if i <= d:
            current[0] = i
        ch_a = a[i - 1]
        row_min = current[0] if i <= d else infinity
        for j in range(lo, hi + 1):
            cost = 0 if ch_a == b[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            if best > infinity:
                best = infinity
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min >= infinity:
            return infinity
        previous = current
    result = previous[m]
    return result if result <= d else infinity


def within_distance(a: str, b: str, d: int) -> bool:
    """True iff ``edit(a, b) <= d`` (the predicate form of the banded DP)."""
    return edit_distance_within(a, b, d) <= d
