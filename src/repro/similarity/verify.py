"""Batched edit-distance verification — the final step of Algorithm 2.

Every similarity operator ends the same way: a pile of candidate strings
must be checked against one ``(query, d)`` pair (line 23's ``dist()``
call).  Doing that with one from-scratch banded DP per candidate wastes
three kinds of work that this module recovers:

* **repeats** — workload candidates repeat heavily (the same value is
  stored under many oids, replicas and gram keys), so every distinct
  ``(query, candidate)`` pair is computed at most once and memoized;
* **shared prefixes** — candidates sorted lexicographically share long
  prefixes (natural-language corpora especially); the banded DP rows for
  a common prefix are computed once and reused, trie-style, instead of
  re-deriving them per candidate.  A prefix whose band minimum already
  exceeds ``d`` is *dead*: every candidate extending it is rejected with
  no further DP work;
* **length filtering** — the ``|len(a) - len(b)| <= d`` screen never
  costs DP work: the flat path's vectorized count bound subsumes it
  (with an inline guard when the prefilter is off), and the shared path
  screens candidates before sorting.

The per-candidate distance work itself routes through a pluggable
:class:`~repro.similarity.kernels.EditKernel` — by default Myers'
bit-parallel scan with a numpy count prefilter when numpy is importable
(:func:`~repro.similarity.kernels.resolve_kernel`), with the banded DP
retained as the always-available reference.  Kernels change wall-clock
only: the verifier is provably equivalent to calling
:func:`repro.similarity.edit_distance.edit_distance_within` per
candidate — the property suite checks exactly that, per kernel — so
operators can swap kernels without changing any match set.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable

from repro.similarity.kernels import EditKernel, resolve_kernel

#: Default bound on live verifiers in a :class:`VerifierPool`.  Each
#: verifier's memo grows with the distinct candidates its query has
#: seen, so bounding the verifier count bounds total memo memory in the
#: long-lived service; distance memos are store-independent, making
#: eviction always safe (never a correctness event).
DEFAULT_POOL_LIMIT = 512


class KernelCounters:
    """Verification-work tallies, aggregated across verifiers.

    One instance is shared by every verifier of a pool (so totals
    survive verifier eviction); standalone verifiers get their own.
    ``computed`` counts candidates that actually reached a kernel scan
    or DP extension, ``memo_hits`` dict probes that skipped all work,
    ``prefilter_rejected`` candidates the vectorized count filter
    discarded before any scan, and ``batches_flat`` /
    ``batches_shared`` record which batch path the kernel chose.
    """

    __slots__ = (
        "computed",
        "memo_hits",
        "prefilter_rejected",
        "batches_flat",
        "batches_shared",
    )

    def __init__(self) -> None:
        self.computed = 0
        self.memo_hits = 0
        self.prefilter_rejected = 0
        self.batches_flat = 0
        self.batches_shared = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class BatchVerifier:
    """Verifies candidate strings against one ``(query, d)`` pair.

    Use :meth:`distances` for batches and :meth:`distance` for one-off
    probes; both return the exact edit distance when it is ``<= d`` and
    the saturating sentinel ``d + 1`` otherwise, and both share one memo
    across the verifier's lifetime.  ``kernel`` selects the distance
    implementation (default: :func:`resolve_kernel`'s process default);
    batches run either the kernel's flat per-candidate path or the
    sorted shared-prefix DP below, whichever the kernel prefers for the
    batch's size — the choice is recorded on ``counters``.
    """

    __slots__ = ("query", "d", "_memo", "computed", "kernel", "_bound", "counters")

    def __init__(
        self,
        query: str,
        d: int,
        kernel: EditKernel | str | None = None,
        counters: KernelCounters | None = None,
    ):
        self.query = query
        self.d = d
        self._memo: dict[str, int] = {}
        #: Distinct candidates actually sent through a kernel scan or DP
        #: (diagnostics: ``len`` of every ``distances``/``distance``
        #: input minus memo, length-filter and prefilter hits).
        self.computed = 0
        self.kernel = resolve_kernel(kernel)
        self._bound = self.kernel.bind(query, d)
        self.counters = counters if counters is not None else KernelCounters()

    # -- single-candidate path ------------------------------------------------

    def distance(self, candidate: str) -> int:
        """Memoized ``edit_distance_within(query, candidate, d)``."""
        memo = self._memo
        found = memo.get(candidate)
        if found is not None:
            self.counters.memo_hits += 1
            return found
        result = self._bound.distance(candidate)
        self.computed += 1
        self.counters.computed += 1
        memo[candidate] = result
        return result

    def within(self, candidate: str) -> bool:
        """Predicate form: True iff ``edit(query, candidate) <= d``."""
        return self.distance(candidate) <= self.d

    # -- batched path ---------------------------------------------------------

    def distances(self, candidates: Iterable[str]) -> dict[str, int]:
        """Distances for every distinct candidate, batched.

        Duplicates collapse first (``dict.fromkeys``, C-speed, keeps
        first-appearance order); already-memoized candidates cost a dict
        probe; the rest are verified through the kernel's preferred
        batch path (flat bit-parallel scan or shared-prefix banded DP).
        The ``|len(a) - len(b)| <= d`` filter costs no DP either way: the
        flat path's count bound subsumes it (``max(n, m) - d`` exceeds
        any possible common count when the gap is > ``d``) with an
        inline guard for unfiltered candidates, and the shared path
        screens before sorting.
        """
        memo = self._memo
        counters = self.counters
        d = self.d
        reject = d + 1
        result: dict[str, int] = {}
        if memo:
            fresh: list[str] = []
            hits = 0
            for candidate in dict.fromkeys(candidates):
                found = memo.get(candidate)
                if found is None:
                    fresh.append(candidate)
                else:
                    hits += 1
                    result[candidate] = found
            counters.memo_hits += hits
        else:
            fresh = list(dict.fromkeys(candidates))
        if not fresh:
            return result
        if self._bound.prefers_shared(len(fresh)):
            counters.batches_shared += 1
            query_length = len(self.query)
            pending = []
            for candidate in fresh:
                if abs(len(candidate) - query_length) > d:
                    memo[candidate] = reject
                    result[candidate] = reject
                else:
                    pending.append(candidate)
            if pending:
                pending.sort()
                self._verify_sorted(pending, result)
        else:
            counters.batches_flat += 1
            self._verify_flat(fresh, result)
        return result

    def _verify_flat(self, pending: list[str], result: dict[str, int]) -> None:
        """Per-candidate kernel scans, after an optional batch prefilter.

        The kernel's vectorized count filter (when active) rejects
        candidates that provably exceed ``d`` — including every
        length-incompatible one, since ``max(n, m) - d`` then exceeds
        any achievable common count — with zero per-candidate python
        work; survivors each get one bit-parallel scan.  When the
        prefilter is inactive the loop screens lengths inline, so
        length-rejected candidates never count as ``computed`` on
        either path.  Results are exact-or-sentinel, identical to the
        shared-prefix path.
        """
        memo = self._memo
        counters = self.counters
        d = self.d
        reject = d + 1
        query_length = len(self.query)
        keep = self._bound.survivors(pending)
        if keep is not None and len(keep) < len(pending):
            counters.prefilter_rejected += len(pending) - len(keep)
            # Provisionally reject everything in bulk, then overwrite the
            # survivors with their real scans below.
            rejected = dict.fromkeys(pending, reject)
            memo.update(rejected)
            result.update(rejected)
            pending = [pending[index] for index in keep]
        distance = self._bound.distance
        computed = 0
        for candidate in pending:
            if abs(len(candidate) - query_length) > d:
                memo[candidate] = reject
                result[candidate] = reject
                continue
            outcome = distance(candidate)
            computed += 1
            memo[candidate] = outcome
            result[candidate] = outcome
        self.computed += computed
        counters.computed += computed

    def _verify_sorted(self, pending: list[str], result: dict[str, int]) -> None:
        """Shared-prefix banded DP over sorted, length-compatible candidates.

        ``rows[i]`` is the banded DP row comparing the current candidate's
        ``i``-char prefix against the query: ``rows[i][j]`` = distance
        between prefix and ``query[:j]`` for ``|i - j| <= d``, saturated
        at ``d + 1`` outside the band.  Moving from one candidate to the
        next pops rows down to their common prefix and extends from there;
        ``dead_depth`` marks a prefix whose whole band exceeded ``d``, so
        candidates sharing it are rejected without touching the DP.
        """
        query = self.query
        memo = self._memo
        counters = self.counters
        d = self.d
        m = len(query)
        infinity = d + 1
        first_row = [j if j <= d else infinity for j in range(m + 1)]
        rows: list[list[int]] = [first_row]
        previous = ""
        dead_depth: int | None = None
        for candidate in pending:
            if candidate == query:
                memo[candidate] = 0
                result[candidate] = 0
                continue
            shared = _common_prefix_len(previous, candidate)
            previous = candidate
            if dead_depth is not None:
                if shared >= dead_depth:
                    memo[candidate] = infinity
                    result[candidate] = infinity
                    continue
                dead_depth = None
            del rows[shared + 1 :]
            self.computed += 1
            counters.computed += 1
            outcome: int | None = None
            for i in range(len(rows), len(candidate) + 1):
                row = self._extend_row(rows[i - 1], candidate[i - 1], i)
                if row is None:
                    dead_depth = i
                    outcome = infinity
                    break
                rows.append(row)
            if outcome is None:
                final = rows[len(candidate)][m]
                outcome = final if final <= d else infinity
            memo[candidate] = outcome
            result[candidate] = outcome

    def _extend_row(
        self, previous: list[int], ch: str, i: int
    ) -> list[int] | None:
        """One banded DP step; ``None`` when the whole band exceeds ``d``."""
        query = self.query
        d = self.d
        m = len(query)
        infinity = d + 1
        row = [infinity] * (m + 1)
        row_min = infinity
        if i <= d:
            row[0] = i
            row_min = i
        lo = i - d if i - d > 1 else 1
        hi = i + d if i + d < m else m
        for j in range(lo, hi + 1):
            best = previous[j - 1] + (0 if ch == query[j - 1] else 1)
            other = previous[j] + 1
            if other < best:
                best = other
            other = row[j - 1] + 1
            if other < best:
                best = other
            if best > infinity:
                best = infinity
            row[j] = best
            if best < row_min:
                row_min = best
        if row_min >= infinity:
            return None
        return row


class VerifierPool:
    """Caches :class:`BatchVerifier` instances per ``(query, d)`` pair.

    One pool per composite operator run (a join's probes, a top-N's
    deepening rounds) lets every probe touching the same query string
    share one memo.  The pool is size-bounded: beyond ``max_verifiers``
    live verifiers the least-recently-used one is evicted, which in a
    long-lived service caps total memo growth.  Distance memos depend
    only on the ``(query, candidate, d)`` strings — never on store
    state — so eviction is always safe; an evicted pair is simply
    recomputed on its next appearance.  ``hits`` / ``misses`` /
    ``evictions`` count pool traffic, and every verifier shares one
    :class:`KernelCounters`, so kernel-level totals survive eviction.

    :meth:`get` is thread-safe (the engine shares one pool across every
    operator context, and contexts may run fanned-out per-peer work);
    the *returned* :class:`BatchVerifier` is not — verification passes
    stay on the caller's thread, as the fan-out contract requires.
    """

    __slots__ = (
        "_verifiers",
        "_lock",
        "kernel",
        "max_verifiers",
        "hits",
        "misses",
        "evictions",
        "counters",
    )

    def __init__(
        self,
        kernel: EditKernel | str | None = None,
        max_verifiers: int = DEFAULT_POOL_LIMIT,
    ) -> None:
        if max_verifiers < 1:
            raise ValueError(
                f"max_verifiers must be >= 1, got {max_verifiers}"
            )
        self._verifiers: OrderedDict[tuple[str, int], BatchVerifier] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.kernel = resolve_kernel(kernel)
        self.max_verifiers = max_verifiers
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.counters = KernelCounters()

    def get(self, query: str, d: int) -> BatchVerifier:
        key = (query, d)
        with self._lock:
            verifier = self._verifiers.get(key)
            if verifier is not None:
                self.hits += 1
                self._verifiers.move_to_end(key)
                return verifier
            self.misses += 1
            verifier = BatchVerifier(
                query, d, kernel=self.kernel, counters=self.counters
            )
            self._verifiers[key] = verifier
            while len(self._verifiers) > self.max_verifiers:
                self._verifiers.popitem(last=False)
                self.evictions += 1
        return verifier

    def memo_entries(self) -> int:
        """Total memoized ``(query, candidate)`` pairs across live verifiers."""
        with self._lock:
            return sum(
                len(verifier._memo) for verifier in self._verifiers.values()
            )

    def stats(self) -> dict[str, object]:
        """Pool traffic, bounds, and aggregated kernel counters."""
        with self._lock:
            live = len(self._verifiers)
            entries = sum(
                len(verifier._memo) for verifier in self._verifiers.values()
            )
        return {
            "kernel": self.kernel.name,
            "verifiers": live,
            "max_verifiers": self.max_verifiers,
            "memo_entries": entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            **self.counters.as_dict(),
        }

    def __len__(self) -> int:
        return len(self._verifiers)


def _common_prefix_len(a: str, b: str) -> int:
    """Length of the longest common prefix of two strings."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i
