"""Batched edit-distance verification — the final step of Algorithm 2.

Every similarity operator ends the same way: a pile of candidate strings
must be checked against one ``(query, d)`` pair (line 23's ``dist()``
call).  Doing that with one from-scratch banded DP per candidate wastes
three kinds of work that this module recovers:

* **repeats** — workload candidates repeat heavily (the same value is
  stored under many oids, replicas and gram keys), so every distinct
  ``(query, candidate)`` pair is computed at most once and memoized;
* **shared prefixes** — candidates sorted lexicographically share long
  prefixes (natural-language corpora especially); the banded DP rows for
  a common prefix are computed once and reused, trie-style, instead of
  re-deriving them per candidate.  A prefix whose band minimum already
  exceeds ``d`` is *dead*: every candidate extending it is rejected with
  no further DP work;
* **length filtering** — candidates are bucketed by length first, so the
  ``|len(a) - len(b)| <= d`` filter runs once per distinct length, not
  once per candidate.

The verifier is provably equivalent to calling
:func:`repro.similarity.edit_distance.edit_distance_within` per
candidate — the property suite checks exactly that — so operators can
swap it in without changing any match set.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from collections.abc import Iterable

from repro.similarity.edit_distance import edit_distance_within


class BatchVerifier:
    """Verifies candidate strings against one ``(query, d)`` pair.

    Use :meth:`distances` for batches (sorted shared-prefix DP) and
    :meth:`distance` for one-off probes; both return the exact edit
    distance when it is ``<= d`` and the saturating sentinel ``d + 1``
    otherwise, and both share one memo across the verifier's lifetime.
    """

    __slots__ = ("query", "d", "_memo", "computed")

    def __init__(self, query: str, d: int):
        self.query = query
        self.d = d
        self._memo: dict[str, int] = {}
        #: Distinct candidates actually sent through a DP (diagnostics:
        #: ``len`` of every ``distances``/``distance`` input minus memo
        #: and length-filter hits).
        self.computed = 0

    # -- single-candidate path ------------------------------------------------

    def distance(self, candidate: str) -> int:
        """Memoized ``edit_distance_within(query, candidate, d)``."""
        memo = self._memo
        found = memo.get(candidate)
        if found is not None:
            return found
        result = edit_distance_within(self.query, candidate, self.d)
        self.computed += 1
        memo[candidate] = result
        return result

    def within(self, candidate: str) -> bool:
        """Predicate form: True iff ``edit(query, candidate) <= d``."""
        return self.distance(candidate) <= self.d

    # -- batched path ---------------------------------------------------------

    def distances(self, candidates: Iterable[str]) -> dict[str, int]:
        """Distances for every distinct candidate, batched.

        Candidates already memoized cost a dict probe; the rest are
        length-bucketed, sorted, and verified with the shared-prefix
        banded DP below.
        """
        memo = self._memo
        d = self.d
        reject = d + 1
        result: dict[str, int] = {}
        queued: set[str] = set()
        by_length: dict[int, list[str]] = defaultdict(list)
        for candidate in candidates:
            if candidate in result or candidate in queued:
                continue
            found = memo.get(candidate)
            if found is not None:
                result[candidate] = found
            else:
                queued.add(candidate)
                by_length[len(candidate)].append(candidate)
        if not by_length:
            return result
        # Length filter, once per distinct candidate length.
        query_length = len(self.query)
        pending: list[str] = []
        for length, bucket in by_length.items():
            if abs(length - query_length) > d:
                for candidate in bucket:
                    memo[candidate] = reject
                    result[candidate] = reject
            else:
                pending.extend(bucket)
        if pending:
            pending.sort()
            self._verify_sorted(pending, result)
        return result

    def _verify_sorted(self, pending: list[str], result: dict[str, int]) -> None:
        """Shared-prefix banded DP over sorted, length-compatible candidates.

        ``rows[i]`` is the banded DP row comparing the current candidate's
        ``i``-char prefix against the query: ``rows[i][j]`` = distance
        between prefix and ``query[:j]`` for ``|i - j| <= d``, saturated
        at ``d + 1`` outside the band.  Moving from one candidate to the
        next pops rows down to their common prefix and extends from there;
        ``dead_depth`` marks a prefix whose whole band exceeded ``d``, so
        candidates sharing it are rejected without touching the DP.
        """
        query = self.query
        memo = self._memo
        d = self.d
        m = len(query)
        infinity = d + 1
        first_row = [j if j <= d else infinity for j in range(m + 1)]
        rows: list[list[int]] = [first_row]
        previous = ""
        dead_depth: int | None = None
        for candidate in pending:
            if candidate == query:
                memo[candidate] = 0
                result[candidate] = 0
                continue
            shared = _common_prefix_len(previous, candidate)
            previous = candidate
            if dead_depth is not None:
                if shared >= dead_depth:
                    memo[candidate] = infinity
                    result[candidate] = infinity
                    continue
                dead_depth = None
            del rows[shared + 1 :]
            self.computed += 1
            outcome: int | None = None
            for i in range(len(rows), len(candidate) + 1):
                row = self._extend_row(rows[i - 1], candidate[i - 1], i)
                if row is None:
                    dead_depth = i
                    outcome = infinity
                    break
                rows.append(row)
            if outcome is None:
                final = rows[len(candidate)][m]
                outcome = final if final <= d else infinity
            memo[candidate] = outcome
            result[candidate] = outcome

    def _extend_row(
        self, previous: list[int], ch: str, i: int
    ) -> list[int] | None:
        """One banded DP step; ``None`` when the whole band exceeds ``d``."""
        query = self.query
        d = self.d
        m = len(query)
        infinity = d + 1
        row = [infinity] * (m + 1)
        row_min = infinity
        if i <= d:
            row[0] = i
            row_min = i
        lo = i - d if i - d > 1 else 1
        hi = i + d if i + d < m else m
        for j in range(lo, hi + 1):
            best = previous[j - 1] + (0 if ch == query[j - 1] else 1)
            other = previous[j] + 1
            if other < best:
                best = other
            other = row[j - 1] + 1
            if other < best:
                best = other
            if best > infinity:
                best = infinity
            row[j] = best
            if best < row_min:
                row_min = best
        if row_min >= infinity:
            return None
        return row


class VerifierPool:
    """Caches :class:`BatchVerifier` instances per ``(query, d)`` pair.

    One pool per composite operator run (a join's probes, a top-N's
    deepening rounds) lets every probe touching the same query string
    share one memo.

    :meth:`get` is thread-safe (the engine shares one pool across every
    operator context, and contexts may run fanned-out per-peer work);
    the *returned* :class:`BatchVerifier` is not — verification passes
    stay on the caller's thread, as the fan-out contract requires.
    """

    __slots__ = ("_verifiers", "_lock")

    def __init__(self) -> None:
        self._verifiers: dict[tuple[str, int], BatchVerifier] = {}
        self._lock = threading.Lock()

    def get(self, query: str, d: int) -> BatchVerifier:
        key = (query, d)
        with self._lock:
            verifier = self._verifiers.get(key)
            if verifier is None:
                verifier = BatchVerifier(query, d)
                self._verifiers[key] = verifier
        return verifier

    def __len__(self) -> int:
        return len(self._verifiers)


def _common_prefix_len(a: str, b: str) -> int:
    """Length of the longest common prefix of two strings."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i
