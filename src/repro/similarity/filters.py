"""Candidate filters for q-gram similarity (Gravano et al. [7]).

Algorithm 2, line 8 prunes a candidate gram ``q'`` against a query gram
``q`` before any expensive work:

* **position filter** — ``|p(q') - p(q)| <= d``: an edit script of cost
  ``d`` can shift a surviving gram by at most ``d`` positions;
* **length filter** — ``|l(q') - l(q)| <= d``: strings within edit
  distance ``d`` differ in length by at most ``d``.

The **count filter** (shared-gram lower bound) applies when the full
overlapping q-gram set is used: matches must share at least
``max(|s1|, |s2|) - 1 - (d - 1) * q`` grams.  It cannot be applied to
q-samples (a sample deliberately drops grams), which is exactly the
paper's trade-off: "using only a subset of all possible q-grams — a
q-sample — performs much better but more candidates have to be processed
in the final step".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.storage.qgrams import PositionalQGram, count_filter_threshold


def position_filter(query_pos: int, candidate_pos: int, d: int) -> bool:
    """True if the gram positions are compatible with edit distance ``d``."""
    return abs(query_pos - candidate_pos) <= d


def length_filter(query_len: int, candidate_len: int, d: int) -> bool:
    """True if the string lengths are compatible with edit distance ``d``."""
    return abs(query_len - candidate_len) <= d


@dataclass(frozen=True)
class FilterConfig:
    """Which of the per-gram filters are active (ablation knob)."""

    use_position: bool = True
    use_length: bool = True

    def admits(
        self, query_gram: PositionalQGram, candidate: PositionalQGram, d: int
    ) -> bool:
        """Combined per-gram admissibility test (Algorithm 2, line 8)."""
        if self.use_position and not position_filter(
            query_gram.position, candidate.position, d
        ):
            return False
        if self.use_length and not length_filter(
            query_gram.source_length, candidate.source_length, d
        ):
            return False
        return True


class CountFilter:
    """Accumulates per-candidate gram hits and applies the count bound.

    Feed it one ``observe`` call per (query gram, candidate string) match;
    ``admitted`` then yields only candidates whose hit count reaches the
    Gravano bound for their length.  With a non-positive bound the filter
    is vacuous and admits every observed candidate (short strings / large
    ``d``), matching the theory.
    """

    def __init__(self, query_length: int, q: int, d: int):
        self.query_length = query_length
        self.q = q
        self.d = d
        self._hits: Counter[str] = Counter()
        self._lengths: dict[str, int] = {}

    def observe(self, candidate_id: str, candidate_length: int) -> None:
        """Record that one query gram matched ``candidate_id``."""
        self._hits[candidate_id] += 1
        self._lengths[candidate_id] = candidate_length

    def threshold_for(self, candidate_length: int) -> int:
        return count_filter_threshold(
            self.query_length, candidate_length, self.q, self.d
        )

    def admitted(self) -> list[str]:
        """Candidate ids passing the count bound."""
        result = []
        for candidate_id, hits in self._hits.items():
            threshold = self.threshold_for(self._lengths[candidate_id])
            if hits >= max(1, threshold):
                result.append(candidate_id)
        return result

    def observed(self) -> list[str]:
        """All candidate ids seen (the no-count-filter baseline)."""
        return list(self._hits)
