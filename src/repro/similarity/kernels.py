"""Edit-distance verification kernels — fast paths under one contract.

Every kernel answers the same question as
:func:`repro.similarity.edit_distance.edit_distance_within`: the exact
edit distance between the query and a candidate when it is ``<= d``, the
saturating sentinel ``d + 1`` otherwise.  Kernels change *wall-clock
only* — match sets, memo contents and every measured message/byte series
stay bit-identical whichever kernel runs (the property suite checks
exactly that differential).

Two kernels ship:

* :class:`ReferenceKernel` — the pure-python banded DP.  Single probes
  go through ``edit_distance_within``; batches through
  :meth:`BatchVerifier._verify_sorted`'s shared-prefix path.  Always
  available, property-tested, the ground truth the fast path is paired
  against.
* :class:`MyersKernel` — Myers' bit-parallel algorithm (JACM 1999).
  The query is compiled once into per-character bitmasks
  (:class:`MyersQuery`); each candidate is then verified in
  ``O(len(candidate))`` word operations instead of ``O(d * len)`` DP
  cells.  Queries up to 64 characters use a single int-as-bitvector
  block; longer queries use the multi-block variant with carry
  propagation between words.  Optionally, a numpy-vectorized unigram
  count filter prunes whole candidate batches before any bit-parallel
  work: strings within edit distance ``d`` must share at least
  ``max(|a|, |b|) - d`` characters with the query (the q-gram lemma at
  ``q = 1``), so candidates below that bound are rejected with zero
  per-candidate python work.

Selection is a runtime decision: ``QueryEngine(edit_kernel=...)`` takes
a kernel instance or name, and the ``REPRO_EDIT_KERNEL`` environment
variable (``auto`` / ``reference`` / ``myers``, parsed strictly via
:func:`repro.core.config.env_choice`) sets the process default.
``auto`` — the default — resolves to Myers with the numpy prefilter
when numpy is importable and plain Myers otherwise; the kernel layer
must degrade gracefully without numpy, which is a dev-only dependency.
"""

from __future__ import annotations

from repro.core.config import env_choice
from repro.core.errors import ConfigError
from repro.similarity.edit_distance import edit_distance_within

try:  # numpy is optional (requirements-dev only) — prefilter gates on it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

#: Environment variable naming the process-default kernel.
KERNEL_ENV = "REPRO_EDIT_KERNEL"

#: Accepted spellings for ``REPRO_EDIT_KERNEL`` / ``edit_kernel=`` names.
KERNEL_CHOICES = ("auto", "reference", "myers")

#: Machine word width used by the bit-parallel kernel.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1
_HIGH_BIT = 1 << (WORD_BITS - 1)

#: Batches smaller than this skip the numpy prefilter — the fixed cost
#: of building the code arrays outweighs pruning a handful of strings.
PREFILTER_MIN_BATCH = 8

#: Queries with at most this many distinct characters test membership
#: with per-character equality passes instead of ``np.isin``.
_EQ_LOOP_MAX_ALPHABET = 32

#: Multi-block queries fall back to the shared-prefix sorted path once a
#: batch is at least this large: sorted natural-language candidates share
#: prefixes the trie-style DP reuses, which beats re-running a
#: multi-word bit-parallel scan per candidate.
SHARED_FALLBACK_MIN_BATCH = 32


def numpy_available() -> bool:
    """True when the optional numpy prefilter dependency is importable."""
    return _np is not None


class MyersQuery:
    """One query compiled for bit-parallel scanning.

    Holds the per-character bitmask table (``masks[block][ch]`` has bit
    ``i % 64`` set iff ``query[i] == ch`` for positions in ``block``) so
    one query verifies thousands of candidates without re-deriving
    masks.  Instances are built once per :class:`BatchVerifier` and are
    immutable afterwards.
    """

    __slots__ = ("query", "length", "blocks", "masks")

    def __init__(self, query: str):
        self.query = query
        self.length = len(query)
        self.blocks = max(1, (self.length + WORD_BITS - 1) // WORD_BITS)
        masks: list[dict[str, int]] = [{} for __ in range(self.blocks)]
        for index, ch in enumerate(query):
            block = masks[index // WORD_BITS]
            block[ch] = block.get(ch, 0) | (1 << (index % WORD_BITS))
        self.masks = masks

    def within(self, text: str, d: int) -> int:
        """``edit_distance_within(self.query, text, d)``, bit-parallel."""
        m = self.length
        n = len(text)
        if n - m > d or m - n > d:
            return d + 1
        if self.query == text:
            return 0
        if m == 0:
            return n if n <= d else d + 1
        if self.blocks == 1:
            return self._within_one_block(text, d)
        return self._within_multi_block(text, d)

    def _within_one_block(self, text: str, d: int) -> int:
        """Single-word Myers scan (queries of at most 64 characters).

        Python ints are unbounded, so every complement and shift is
        re-masked to the pattern width; ``score`` tracks the distance at
        the pattern's last row and the scan exits early once even a
        match-only suffix could not bring it back under ``d``.
        """
        m = self.length
        mask = (1 << m) - 1
        last = 1 << (m - 1)
        get = self.masks[0].get
        vp = mask
        vn = 0
        score = m
        remaining = len(text)
        for ch in text:
            eq = get(ch, 0)
            xv = eq | vn
            xh = ((((eq & vp) + vp) & mask) ^ vp) | eq
            ph = vn | (mask & ~(xh | vp))
            mh = vp & xh
            if ph & last:
                score += 1
            elif mh & last:
                score -= 1
            ph = ((ph << 1) | 1) & mask
            vp = ((mh << 1) & mask) | (mask & ~(xv | ph))
            vn = ph & xv
            remaining -= 1
            if score - remaining > d:
                return d + 1
        return score if score <= d else d + 1


    def _within_multi_block(self, text: str, d: int) -> int:
        """Multi-word Myers scan with horizontal carries between blocks.

        ``hin``/``hout`` propagate the horizontal delta (-1/0/+1) from
        each 64-bit block into the next; the score is read at the
        pattern's true last row, so the phantom high bits of the final
        block never influence the result (carries only propagate
        upward).
        """
        blocks = self.blocks
        masks = self.masks
        last = 1 << ((self.length - 1) % WORD_BITS)
        last_block = blocks - 1
        vp = [_WORD_MASK] * blocks
        vn = [0] * blocks
        score = self.length
        remaining = len(text)
        for ch in text:
            hin = 1
            for b in range(blocks):
                eq = masks[b].get(ch, 0)
                pv = vp[b]
                mv = vn[b]
                xv = eq | mv
                if hin < 0:
                    eq |= 1
                xh = ((((eq & pv) + pv) & _WORD_MASK) ^ pv) | eq
                ph = mv | (_WORD_MASK & ~(xh | pv))
                mh = pv & xh
                if b == last_block:
                    if ph & last:
                        score += 1
                    elif mh & last:
                        score -= 1
                    hout = 0
                elif ph & _HIGH_BIT:
                    hout = 1
                elif mh & _HIGH_BIT:
                    hout = -1
                else:
                    hout = 0
                ph = (ph << 1) & _WORD_MASK
                mh = (mh << 1) & _WORD_MASK
                if hin > 0:
                    ph |= 1
                elif hin < 0:
                    mh |= 1
                vp[b] = mh | (_WORD_MASK & ~(xv | ph))
                vn[b] = ph & xv
                hin = hout
            remaining -= 1
            if score - remaining > d:
                return d + 1
        return score if score <= d else d + 1


def myers_within(a: str, b: str, d: int) -> int:
    """One-shot bit-parallel ``edit_distance_within(a, b, d)``.

    Matches the reference contract exactly, including the degenerate
    ``d < 0`` case (0 when equal, 1 otherwise).  For repeated probes of
    one query, build a :class:`MyersQuery` (or use the kernel through
    :class:`~repro.similarity.verify.BatchVerifier`) so masks are
    computed once.
    """
    if d < 0:
        return 0 if a == b else 1
    return MyersQuery(a).within(b, d)


# -- candidate prefilter -------------------------------------------------------


def _prefilter_survivors(
    query_codes, pending: list[str], query_length: int, d: int
):
    """Indices of ``pending`` that survive the unigram count filter.

    Vectorized over the whole batch: the candidates are joined into one
    UTF-32 buffer, each position is tested for membership in the query's
    character set, and per-candidate common counts come from one
    ``bincount``.  Counting *positions* (with repeats) against a
    character *set* over-counts the true bag intersection, so the filter
    only ever keeps too much — rejection is always sound.  Returns
    ``None`` when the batch cannot be encoded (lone surrogates), which
    simply skips the filter.
    """
    try:
        joined = "".join(pending).encode("utf-32-le")
    except UnicodeEncodeError:
        return None
    codes = _np.frombuffer(joined, dtype=_np.uint32)
    lengths = _np.fromiter(map(len, pending), dtype=_np.intp, count=len(pending))
    ids = _np.repeat(_np.arange(len(pending), dtype=_np.intp), lengths)
    if len(query_codes) == 0:
        member = _np.zeros(len(codes), dtype=bool)
    elif len(query_codes) <= _EQ_LOOP_MAX_ALPHABET:
        # A handful of equality passes beats np.isin's sort-based
        # membership for the small alphabets real queries have.
        member = codes == query_codes[0]
        for code in query_codes[1:]:
            member |= codes == code
    else:  # pragma: no cover - queries with > 32 distinct characters
        member = _np.isin(codes, query_codes)
    common = _np.bincount(ids[member], minlength=len(pending))
    bound = _np.maximum(lengths, query_length) - d
    return _np.flatnonzero(common >= bound).tolist()


# -- kernels -------------------------------------------------------------------


class EditKernel:
    """Interface verified batches and probes route through.

    A kernel is stateless and shareable; :meth:`bind` compiles per-query
    state once, and the bound object serves every probe and batch of
    that :class:`~repro.similarity.verify.BatchVerifier`.
    """

    #: Identity reported in diagnostics (``CostReport.verifier``,
    #: ``/stats``, ``BENCH_micro.json``).
    name = "abstract"

    def bind(self, query: str, d: int) -> "BoundKernel":
        raise NotImplementedError


class BoundKernel:
    """Kernel state compiled for one ``(query, d)`` pair."""

    __slots__ = ("d",)

    def __init__(self, d: int):
        self.d = d

    def distance(self, candidate: str) -> int:
        """Exact distance when ``<= d``, else the ``d + 1`` sentinel."""
        raise NotImplementedError

    def survivors(self, pending: list[str]):
        """Batch prefilter: surviving indices, or ``None`` when inactive."""
        return None

    def prefers_shared(self, batch_size: int) -> bool:
        """True when the sorted shared-prefix DP should run this batch."""
        return True


class _BoundReference(BoundKernel):
    __slots__ = ("query",)

    def __init__(self, query: str, d: int):
        super().__init__(d)
        self.query = query

    def distance(self, candidate: str) -> int:
        return edit_distance_within(self.query, candidate, self.d)


class ReferenceKernel(EditKernel):
    """The pure-python banded DP — always available, property-tested.

    Batches keep the historical behaviour: every batch runs the sorted
    shared-prefix dead-band path, so a reference-kernel verifier is
    bit-for-bit the pre-kernel :class:`BatchVerifier`.
    """

    name = "reference"

    def bind(self, query: str, d: int) -> BoundKernel:
        return _BoundReference(query, d)


class _BoundMyers(BoundKernel):
    __slots__ = ("state", "query_codes")

    def __init__(self, query: str, d: int, prefilter: bool):
        super().__init__(d)
        self.state = MyersQuery(query)
        self.query_codes = None
        if prefilter and _np is not None:
            try:
                self.query_codes = _np.unique(
                    _np.frombuffer(
                        query.encode("utf-32-le"), dtype=_np.uint32
                    )
                )
            except UnicodeEncodeError:
                self.query_codes = None

    def distance(self, candidate: str) -> int:
        return self.state.within(candidate, self.d)

    def survivors(self, pending: list[str]):
        if self.query_codes is None or len(pending) < PREFILTER_MIN_BATCH:
            return None
        return _prefilter_survivors(
            self.query_codes, pending, self.state.length, self.d
        )

    def prefers_shared(self, batch_size: int) -> bool:
        # Multi-block scans pay ``blocks`` words per candidate character;
        # on large sorted batches the shared-prefix DP amortizes better.
        return (
            self.state.blocks > 1 and batch_size >= SHARED_FALLBACK_MIN_BATCH
        )


class MyersKernel(EditKernel):
    """Bit-parallel kernel with an optional numpy batch prefilter."""

    __slots__ = ("prefilter",)

    def __init__(self, prefilter: bool | None = None):
        if prefilter is None:
            prefilter = numpy_available()
        self.prefilter = bool(prefilter) and numpy_available()

    @property
    def name(self) -> str:
        return "myers+prefilter" if self.prefilter else "myers"

    def bind(self, query: str, d: int) -> BoundKernel:
        return _BoundMyers(query, d, self.prefilter)


def resolve_kernel(spec: "EditKernel | str | None" = None) -> EditKernel:
    """Resolve a kernel instance, name, or the process default.

    ``None`` consults ``REPRO_EDIT_KERNEL`` (strictly parsed — a value
    outside :data:`KERNEL_CHOICES` raises
    :class:`~repro.core.errors.ConfigError` instead of guessing), then
    maps ``auto`` to Myers-with-prefilter when numpy is importable and
    plain Myers otherwise.
    """
    if isinstance(spec, EditKernel):
        return spec
    if spec is None:
        name = env_choice(KERNEL_ENV, KERNEL_CHOICES, "auto")
    else:
        name = spec.strip().lower()
    if name == "reference":
        return ReferenceKernel()
    if name in ("auto", "myers"):
        return MyersKernel()
    raise ConfigError(
        f"unknown edit kernel {spec!r} (choices: {'/'.join(KERNEL_CHOICES)})"
    )
