"""Similarity measures and candidate filters."""

from repro.similarity.edit_distance import (
    edit_distance,
    edit_distance_within,
    within_distance,
)
from repro.similarity.filters import CountFilter, FilterConfig
from repro.similarity.numeric import (
    Interval,
    absolute_distance,
    euclidean_box,
    euclidean_distance,
    similarity_interval,
)

__all__ = [
    "CountFilter",
    "FilterConfig",
    "Interval",
    "absolute_distance",
    "edit_distance",
    "edit_distance_within",
    "euclidean_box",
    "euclidean_distance",
    "similarity_interval",
    "within_distance",
]
