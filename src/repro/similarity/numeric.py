"""Numeric similarity — distance-to-interval mapping (Section 4).

"For similarity queries on numerical attributes we map the provided
similarity measure to a corresponding interval and process them as range
queries."  With the one-dimensional Euclidean distance ``|x - v|``, the
predicate ``dist(x, v) <= d`` is exactly the interval ``[v - d, v + d]``.

For multi-attribute numeric similarity the Euclidean ball is covered by
its bounding box: one interval per attribute, intersected after retrieval
(:func:`euclidean_box`), with the exact distance verified locally.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.errors import QueryError


def absolute_distance(x: float, y: float) -> float:
    """One-dimensional Euclidean distance."""
    return abs(float(x) - float(y))


def euclidean_distance(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Euclidean distance between equal-length numeric vectors."""
    if len(xs) != len(ys):
        raise QueryError(
            f"euclidean distance needs equal dimensions: {len(xs)} vs {len(ys)}"
        )
    return math.sqrt(sum((float(x) - float(y)) ** 2 for x, y in zip(xs, ys)))


@dataclass(frozen=True)
class Interval:
    """A closed numeric interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise QueryError(f"empty interval [{self.lo}, {self.hi}]")

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def width(self) -> float:
        return self.hi - self.lo

    def intersect(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def union_bounds(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))


def similarity_interval(center: float, distance: float) -> Interval:
    """The interval equivalent to ``dist(x, center) <= distance``."""
    if distance < 0:
        raise QueryError(f"similarity distance must be >= 0, got {distance}")
    return Interval(center - distance, center + distance)


def euclidean_box(center: Sequence[float], distance: float) -> list[Interval]:
    """Bounding-box cover of a Euclidean ball (one interval per dimension).

    Every point within Euclidean ``distance`` of ``center`` lies inside the
    box; the converse does not hold, so callers must verify the exact
    distance on the retrieved candidates.
    """
    if distance < 0:
        raise QueryError(f"similarity distance must be >= 0, got {distance}")
    return [similarity_interval(float(c), distance) for c in center]
