"""Latency distributions for the discrete-event replay.

Hop latencies in a wide-area overlay are heavy-tailed; the default model
is a deterministic-seeded log-normal around a configurable median, plus a
per-byte transfer cost.  All sampling flows from one ``random.Random`` so
replays are reproducible bit-for-bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyDistribution:
    """Log-normal hop latency plus linear bandwidth cost.

    ``median_ms`` is the distribution's median (the log-normal's scale);
    ``sigma`` its shape (0 = deterministic); ``per_kb_ms`` adds payload
    transfer time.  A wide-area default: 50 ms median, moderate spread.
    """

    median_ms: float = 50.0
    sigma: float = 0.4
    per_kb_ms: float = 0.2

    def sample(self, rng: random.Random, payload_bytes: int = 0) -> float:
        """One hop's latency in milliseconds."""
        if self.sigma > 0:
            base = self.median_ms * math.exp(rng.gauss(0.0, self.sigma))
        else:
            base = self.median_ms
        return base + self.per_kb_ms * payload_bytes / 1024.0

    def deterministic(self) -> "LatencyDistribution":
        """The same median with all randomness removed (for tests)."""
        return LatencyDistribution(
            median_ms=self.median_ms, sigma=0.0, per_kb_ms=self.per_kb_ms
        )
