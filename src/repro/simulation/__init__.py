"""Discrete-event latency replay over recorded message logs."""

from repro.simulation.replay import ReplayResult, replay_latency, replay_operation
from repro.simulation.timing import LatencyDistribution

__all__ = [
    "LatencyDistribution",
    "ReplayResult",
    "replay_latency",
    "replay_operation",
]
