"""Discrete-event latency replay of a recorded message log.

The synchronous simulator charges messages in *causal emission order*: a
peer only ever sends a message after the messages that triggered it were
delivered to it.  That ordering is exactly what a discrete-event replay
needs — no timestamps have to be recorded up front:

* every peer carries a **ready time** (when its latest causal trigger
  arrived; the initiator starts at 0);
* a logged message departs at its sender's current ready time, travels
  one sampled hop latency (plus bandwidth for its payload), and advances
  the *receiver's* ready time to its arrival if later;
* sends do not advance the sender — a peer fanning out N messages emits
  them in parallel, so forks cost one hop, not N (and joins fall out of
  the ``max`` at the receiver).

``DELEGATE`` messages ride along the routed walk that precedes them in
the paper's flow (the plan travels *in* the routing message), so they add
bandwidth but no extra hop.  Local CPU time is not replayed — the
analytic :mod:`repro.bench.latency` model covers the naive strategy's
comparison cost, which dwarfs everything else there.

Usage::

    tracer = MessageTracer(record_log=True)
    network = PGridNetwork(..., tracer=tracer)
    ...
    tracer.reset()
    similar(ctx, "apple", TEXT_ATTR, 1)
    outcome = replay_latency(tracer.log, initiator_id=peer_id)
    print(outcome.completion_ms)
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.overlay.messages import Message, MessageType
from repro.simulation.timing import LatencyDistribution


@dataclass
class ReplayResult:
    """Timing of one replayed query."""

    completion_ms: float
    messages: int
    makespan_by_phase: dict[str, float] = field(default_factory=dict)
    last_arrival_by_peer: dict[int, float] = field(default_factory=dict)


def replay_latency(
    log: Sequence[Message],
    initiator_id: int,
    model: LatencyDistribution | None = None,
    seed: int = 0,
) -> ReplayResult:
    """Replay a message log into a completion time.

    ``completion_ms`` is the initiator's final ready time — the moment the
    last result reached it (or, for queries whose results never return to
    the initiator, the time its own last action completed).
    """
    model = model if model is not None else LatencyDistribution()
    rng = random.Random(seed)
    ready: dict[int, float] = defaultdict(float)
    phase_makespan: dict[str, float] = defaultdict(float)
    for message in log:
        departure = ready[message.sender]
        if message.type is MessageType.DELEGATE:
            # The plan travels inside the routing message; bandwidth only.
            latency = model.per_kb_ms * message.payload_bytes / 1024.0
        else:
            latency = model.sample(rng, message.payload_bytes)
        arrival = departure + latency
        if arrival > ready[message.receiver]:
            ready[message.receiver] = arrival
        if arrival > phase_makespan[message.phase]:
            phase_makespan[message.phase] = arrival
    completion = ready[initiator_id]
    if completion == 0.0 and log:
        completion = max(ready.values())
    return ReplayResult(
        completion_ms=completion,
        messages=len(log),
        makespan_by_phase=dict(phase_makespan),
        last_arrival_by_peer=dict(ready),
    )


def replay_operation(
    network,
    operation,
    initiator_id: int,
    model: LatencyDistribution | None = None,
    seed: int = 0,
) -> tuple[object, ReplayResult]:
    """Run ``operation()`` with log recording and replay its latency.

    Temporarily switches the network's tracer into logging mode, clears
    the log window around the call, and returns ``(operation result,
    replay result)``.
    """
    tracer = network.tracer
    previous_mode = tracer.record_log
    log_start = len(tracer.log)
    tracer.record_log = True
    try:
        value = operation()
    finally:
        tracer.record_log = previous_mode
    window = tracer.log[log_start:]
    if not previous_mode:
        del tracer.log[log_start:]
    return value, replay_latency(window, initiator_id, model, seed)
