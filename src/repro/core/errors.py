"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class KeyspaceError(ReproError):
    """A binary key or key prefix is malformed or out of range."""


class HashingError(ReproError):
    """A value cannot be hashed into the key space."""


class OverlayError(ReproError):
    """The overlay network is in an invalid state.

    Carries optional structured context — *which* partition
    (``partition_index``/``partition_path``) or peer (``peer_id``) the
    failure concerns — so degraded-mode handling and tests can branch on
    the failing location instead of string-matching the message.
    """

    def __init__(
        self,
        message: str,
        *,
        partition_index: int | None = None,
        partition_path: str | None = None,
        peer_id: int | None = None,
    ):
        super().__init__(message)
        self.partition_index = partition_index
        self.partition_path = partition_path
        self.peer_id = peer_id


class RoutingError(OverlayError):
    """A lookup could not be routed to a responsible peer."""


class PartitionUnreachableError(RoutingError):
    """All replicas of a key-space partition are offline."""


class StorageError(ReproError):
    """A triple or index entry is invalid."""


class SchemaError(StorageError):
    """A relation schema or tuple violates its declared shape."""


class QueryError(ReproError):
    """Base class for query-processing errors."""


class VQLSyntaxError(QueryError):
    """The VQL query text could not be parsed.

    Carries the character ``position`` of the offending token so tools can
    point at the error location.
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class PlanningError(QueryError):
    """No valid physical plan exists for the query."""


class ExecutionError(QueryError):
    """A physical operator failed during execution."""
