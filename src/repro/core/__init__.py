"""Core package: configuration, errors, statistics, and the public facade."""

from repro.core.config import (
    RankFunction,
    SimilarityStrategy,
    StoreConfig,
    TrieBalancing,
)
from repro.core.errors import (
    ConfigError,
    ExecutionError,
    HashingError,
    KeyspaceError,
    OverlayError,
    PartitionUnreachableError,
    PlanningError,
    QueryError,
    ReproError,
    RoutingError,
    SchemaError,
    StorageError,
    VQLSyntaxError,
)

__all__ = [
    "RankFunction",
    "SimilarityStrategy",
    "StoreConfig",
    "TrieBalancing",
    "ConfigError",
    "ExecutionError",
    "HashingError",
    "KeyspaceError",
    "OverlayError",
    "PartitionUnreachableError",
    "PlanningError",
    "QueryError",
    "ReproError",
    "RoutingError",
    "SchemaError",
    "StorageError",
    "VQLSyntaxError",
]
