"""Configuration objects shared across the library.

:class:`StoreConfig` bundles every tunable of the system — key-space width,
q-gram parameters, similarity strategy, replication factor — so that a
network, its storage scheme and its operators are always built from one
consistent parameter set.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass

from repro.core.errors import ConfigError

#: Spellings accepted as a false environment flag (case-insensitive,
#: surrounding whitespace ignored).  An *unset* variable uses the
#: caller's default; an empty one is explicit false.
FALSE_FLAG_VALUES = frozenset({"", "0", "false", "no", "off"})

#: Spellings accepted as a true environment flag.
TRUE_FLAG_VALUES = frozenset({"1", "true", "yes", "on"})


def env_flag(name: str, default: bool = False) -> bool:
    """Read a boolean environment variable, normalized like enum names.

    The one sanctioned way to parse an on/off environment switch
    (``REPRO_FULL_SCALE``, ``REPRO_SWEEP_CHECK``, ...): values are
    ``.strip().lower()``-normalized first — the same idiom
    :meth:`SimilarityStrategy.from_name` uses — so ``"False"``,
    ``"FALSE"``, ``" no "`` and ``"off"`` all read as false instead of
    silently enabling the flag.  Unset variables return ``default``;
    a value that is neither a known true nor false spelling raises
    :class:`~repro.core.errors.ConfigError` rather than guessing.

    Raw ``os.environ.get(...) not in (...)`` flag parsing is banned by
    ``tools/check_env_flags.py`` precisely because it is case-sensitive;
    route new flags through this helper.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    normalized = raw.strip().lower()
    if normalized in FALSE_FLAG_VALUES:
        return False
    if normalized in TRUE_FLAG_VALUES:
        return True
    raise ConfigError(
        f"environment flag {name}={raw!r} is neither true "
        f"({'/'.join(sorted(TRUE_FLAG_VALUES))}) nor false "
        f"({'/'.join(sorted(v for v in FALSE_FLAG_VALUES if v))}/empty)"
    )


def env_choice(name: str, choices: tuple[str, ...], default: str) -> str:
    """Read an enumerated environment variable, strictly.

    The multi-valued sibling of :func:`env_flag` (and the one sanctioned
    way to parse one — ``REPRO_EDIT_KERNEL`` is the first client):
    values are ``.strip().lower()``-normalized, an unset variable
    returns ``default``, and anything outside ``choices`` raises
    :class:`~repro.core.errors.ConfigError` instead of silently falling
    back — a typo in a kernel name must not quietly select another
    kernel.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    normalized = raw.strip().lower()
    if normalized in choices:
        return normalized
    raise ConfigError(
        f"environment variable {name}={raw!r} is not one of "
        f"{'/'.join(choices)}"
    )

#: Default total key width in bits.  32 bits gives 4 × 10⁹ distinct slots,
#: ample for 10⁵ peers and 10⁶ data entries.
DEFAULT_KEY_BITS = 32

#: Default number of leading bits of an ``attribute#value`` composite key
#: reserved for the attribute part (see DESIGN.md §6).
DEFAULT_ATTR_BITS = 12

#: Default q-gram length.  q=3 follows Gravano et al. [7].
DEFAULT_Q = 3

#: Default number of routing references P-Grid keeps per trie level.
DEFAULT_REFS_PER_LEVEL = 2


class SimilarityStrategy(enum.Enum):
    """Physical strategy used by the string-similarity operator.

    * ``NAIVE`` — broadcast the full search string to every peer holding a
      slice of the attribute's value range and compare locally (the paper's
      baseline, Section 4).
    * ``QGRAM`` — look up *all* overlapping positional q-grams of the search
      string (Algorithm 2 with a full q-gram set).
    * ``QSAMPLE`` — look up only ``d + 1`` non-overlapping q-grams sampled
      every q-th position (Algorithm 2 with a q-sample, after [11]).
    * ``ADAPTIVE`` — not a physical strategy itself: each query is resolved
      to one of the three above by the cost model
      (:mod:`repro.query.cost`), using collected statistics when
      available.  This is the "choice depending on cost optimizations"
      the paper defers to ongoing work.  The decision, its predicted
      cost, and the measured cost are recorded on the query's
      :class:`~repro.overlay.messages.CostReport`.
    """

    NAIVE = "strings"
    QGRAM = "qgrams"
    QSAMPLE = "qsamples"
    ADAPTIVE = "adaptive"

    @property
    def is_physical(self) -> bool:
        """True for strategies an operator can execute directly."""
        return self is not SimilarityStrategy.ADAPTIVE

    @classmethod
    def from_name(cls, name: str) -> "SimilarityStrategy":
        """Resolve a strategy from its enum name or paper label.

        Accepts ``"qgram"``, ``"QGRAM"``, ``"qgrams"``, ``"strings"`` etc.
        """
        normalized = name.strip().lower()
        for strategy in cls:
            if normalized in (strategy.name.lower(), strategy.value):
                return strategy
        aliases = {
            "qgram": cls.QGRAM,
            "qsample": cls.QSAMPLE,
            "string": cls.NAIVE,
            "naive": cls.NAIVE,
        }
        if normalized in aliases:
            return aliases[normalized]
        raise ConfigError(f"unknown similarity strategy: {name!r}")


class TrieBalancing(enum.Enum):
    """How peer partitions are carved out of the key space.

    ``DATA_AWARE`` mirrors P-Grid's load balancing [2]: leaf boundaries are
    chosen so every peer stores roughly the same number of entries.
    ``UNIFORM`` splits the key space evenly regardless of data skew and
    exists mainly for the ablation benchmark.
    """

    DATA_AWARE = "data-aware"
    UNIFORM = "uniform"


class RankFunction(enum.Enum):
    """Ranking functions supported by the top-N operator (Algorithm 4)."""

    MIN = "MIN"
    MAX = "MAX"
    NN = "NN"


@dataclass(frozen=True)
class StoreConfig:
    """Immutable bundle of all system parameters.

    Parameters
    ----------
    key_bits:
        Total width of binary keys, in bits.
    attr_bits:
        Leading bits of composite ``A#v`` keys reserved for the attribute.
    q:
        q-gram length for string similarity.
    strategy:
        Default physical strategy for string-similarity queries.
    refs_per_level:
        Routing references kept per trie level (fault tolerance / random
        choice, Section 2).
    replication:
        Structural replication factor: number of peers per key-space
        partition.
    balancing:
        Trie construction policy.
    seed:
        Seed for all randomized choices (routing-reference sampling,
        replica selection).  Experiments are reproducible bit-for-bit.
    index_values:
        Insert ``key(v) -> triple`` entries (keyword search support).
    index_instance_grams:
        Insert ``key(A#q) -> gram entry`` for each value q-gram.
    index_schema_grams:
        Insert ``key(q) -> gram entry`` for each attribute-name q-gram.
    enable_length_filter / enable_position_filter:
        Toggle the candidate filters of Algorithm 2 line 8 (ablations).
    strict_completeness:
        When True, string-similarity queries whose parameters fall outside
        the q-gram completeness guarantee (``len(s) < 2 + (d-1)*q``) fall
        back to the naive broadcast, trading messages for zero false
        negatives.  The paper's evaluation runs without this fallback —
        its completeness claim is exact only in the guaranteed regime.
    """

    key_bits: int = DEFAULT_KEY_BITS
    attr_bits: int = DEFAULT_ATTR_BITS
    q: int = DEFAULT_Q
    strategy: SimilarityStrategy = SimilarityStrategy.QGRAM
    refs_per_level: int = DEFAULT_REFS_PER_LEVEL
    replication: int = 1
    balancing: TrieBalancing = TrieBalancing.DATA_AWARE
    seed: int = 0
    index_values: bool = True
    index_instance_grams: bool = True
    index_schema_grams: bool = True
    enable_length_filter: bool = True
    enable_position_filter: bool = True
    strict_completeness: bool = False

    def __post_init__(self) -> None:
        if self.key_bits < 4 or self.key_bits > 128:
            raise ConfigError(f"key_bits must be in [4, 128], got {self.key_bits}")
        if not 0 < self.attr_bits < self.key_bits:
            raise ConfigError(
                f"attr_bits must be in (0, key_bits), got {self.attr_bits}"
            )
        if self.q < 1:
            raise ConfigError(f"q must be >= 1, got {self.q}")
        if self.refs_per_level < 1:
            raise ConfigError(
                f"refs_per_level must be >= 1, got {self.refs_per_level}"
            )
        if self.replication < 1:
            raise ConfigError(f"replication must be >= 1, got {self.replication}")

    @property
    def value_bits(self) -> int:
        """Bits of a composite key left for the value part."""
        return self.key_bits - self.attr_bits

    def with_strategy(self, strategy: SimilarityStrategy | str) -> "StoreConfig":
        """Return a copy of this config with a different default strategy."""
        if isinstance(strategy, str):
            strategy = SimilarityStrategy.from_name(strategy)
        return self.replace(strategy=strategy)

    def replace(self, **changes: object) -> "StoreConfig":
        """Return a copy with the given fields replaced."""
        values = {f: getattr(self, f) for f in self.__dataclass_fields__}
        values.update(changes)
        return StoreConfig(**values)  # type: ignore[arg-type]
