"""Aggregated statistics over queries and workloads.

:class:`QueryStats` accumulates the per-query :class:`CostReport` deltas a
store or benchmark produces, exposing the two figures the paper plots —
total messages and total data volume — plus per-phase breakdowns that the
ablation benchmarks use.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.overlay.messages import CostReport


@dataclass
class QueryStats:
    """Running totals across a sequence of queries."""

    queries: int = 0
    messages: int = 0
    payload_bytes: int = 0
    by_type: Counter = field(default_factory=Counter)
    by_phase: Counter = field(default_factory=Counter)

    def record(self, cost: CostReport) -> None:
        """Fold one query's cost into the totals."""
        self.queries += 1
        self.messages += cost.messages
        self.payload_bytes += cost.payload_bytes
        self.by_type.update(cost.by_type)
        self.by_phase.update(cost.by_phase)

    def merge(self, other: "QueryStats") -> None:
        """Fold another accumulator into this one."""
        self.queries += other.queries
        self.messages += other.messages
        self.payload_bytes += other.payload_bytes
        self.by_type.update(other.by_type)
        self.by_phase.update(other.by_phase)

    @property
    def payload_megabytes(self) -> float:
        return self.payload_bytes / 1_000_000.0

    @property
    def messages_per_query(self) -> float:
        return self.messages / self.queries if self.queries else 0.0

    @property
    def bytes_per_query(self) -> float:
        return self.payload_bytes / self.queries if self.queries else 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.queries} queries, {self.messages} messages, "
            f"{self.payload_megabytes:.3f} MB"
        )
