"""The data-management facade: :class:`VerticalStore`.

A ``VerticalStore`` is the paper's "public data management" system in one
object: a P-Grid overlay, the vertical triple storage scheme on top of it,
and the VQL query processor.  Since PR 5 it is a thin specialization of
:class:`repro.engine.QueryEngine` — the unified query facade that owns
the statistics catalog, the cost model behind
``SimilarityStrategy.ADAPTIVE``, and the whole-workload memos — adding
only the record/relation insert helpers.  Typical use::

    from repro import VerticalStore, StoreConfig

    store = VerticalStore.build(
        n_peers=256,
        triples=my_triples,
        config=StoreConfig(seed=7),
    )
    result = store.query(
        "SELECT ?n WHERE { (?o,car:name,?n) FILTER (dist(?n,'BMW') < 2) }"
    )
    print(result.rows, result.cost.messages)

The store also exposes the physical operators directly (``similar``,
``sim_join``, ``top_n`` …) for workloads that bypass VQL, and keeps a
:class:`~repro.core.stats.QueryStats` ledger of everything it executed.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.engine import QueryEngine
from repro.storage.schema import RelationSchema, record_to_triples
from repro.storage.triple import Triple, ValueType


class VerticalStore(QueryEngine):
    """Vertically-organized structured data in a structured overlay.

    Everything query-side — VQL, direct operators, ``analyze``,
    adaptive-mode cost decisions, the memo lifecycle — is inherited from
    :class:`~repro.engine.QueryEngine`; this class adds the convenience
    inserters for dict-shaped records and horizontal relations.
    """

    def insert_record(
        self, oid: str, record: Mapping[str, ValueType], namespace: str = ""
    ) -> int:
        """Decompose one dict-shaped record into triples and insert them."""
        return self.insert(record_to_triples(oid, record, namespace))

    def insert_rows(
        self,
        schema: RelationSchema,
        rows: Iterable[Mapping[str, ValueType]],
        start_serial: int = 0,
    ) -> int:
        """Insert horizontal tuples of a relation, minting sequential oids."""
        triples: list[Triple] = []
        for serial, row in enumerate(rows, start=start_serial):
            triples.extend(schema.tuple_to_triples(schema.make_oid(serial), row))
        return self.insert(triples)
