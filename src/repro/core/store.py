"""The public facade: :class:`VerticalStore`.

A ``VerticalStore`` is the paper's "public data management" system in one
object: a P-Grid overlay, the vertical triple storage scheme on top of it,
and the VQL query processor.  Typical use::

    from repro import VerticalStore, StoreConfig

    store = VerticalStore.build(
        n_peers=256,
        triples=my_triples,
        config=StoreConfig(seed=7),
    )
    result = store.query(
        "SELECT ?n WHERE { (?o,car:name,?n) FILTER (dist(?n,'BMW') < 2) }"
    )
    print(result.rows, result.cost.messages)

The store also exposes the physical operators directly (``similar``,
``sim_join``, ``top_n`` …) for workloads that bypass VQL, and keeps a
:class:`~repro.core.stats.QueryStats` ledger of everything it executed.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping, Sequence
from contextlib import contextmanager

from repro.core.config import RankFunction, SimilarityStrategy, StoreConfig
from repro.core.stats import QueryStats
from repro.overlay.messages import CostReport, MessageTracer
from repro.overlay.network import PGridNetwork
from repro.query.executor import Executor, QueryResult
from repro.query.operators.base import MatchedObject, OperatorContext
from repro.query.operators.exact import (
    keyword_lookup,
    lookup_object,
    select_equals,
)
from repro.query.operators.range_scan import numeric_similar
from repro.query.operators.similar import SimilarResult, similar
from repro.query.operators.simjoin import SimJoinResult, anchored_sim_join, sim_join
from repro.query.operators.topn import TopNResult, top_n_numeric, top_n_string_nn
from repro.similarity.filters import FilterConfig
from repro.storage.schema import RelationSchema, record_to_triples
from repro.storage.triple import Triple, ValueType

if True:  # deferred import target for type checkers
    from typing import TYPE_CHECKING

    if TYPE_CHECKING:  # pragma: no cover
        from repro.query.statistics import StatisticsCatalog


class VerticalStore:
    """Vertically-organized structured data in a structured overlay."""

    def __init__(self, network: PGridNetwork, strategy: SimilarityStrategy | None = None):
        self.network = network
        self.config = network.config
        filters = FilterConfig(
            use_position=self.config.enable_position_filter,
            use_length=self.config.enable_length_filter,
        )
        self.ctx = OperatorContext(
            network,
            strategy=strategy if strategy is not None else self.config.strategy,
            filters=filters,
            rng=random.Random(self.config.seed + 3),
        )
        self.executor = Executor(self.ctx)
        self.stats = QueryStats()
        self.catalog: "StatisticsCatalog | None" = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        n_peers: int,
        triples: Sequence[Triple] = (),
        config: StoreConfig | None = None,
        strategy: SimilarityStrategy | str | None = None,
    ) -> "VerticalStore":
        """Build a network sized for ``triples`` and bulk-load them.

        The trie is balanced against the actual index-entry keys the data
        will produce (P-Grid's load balancing), then the entries are
        placed.  Use :meth:`insert` afterwards for incremental additions.
        """
        config = config if config is not None else StoreConfig()
        if isinstance(strategy, str):
            strategy = SimilarityStrategy.from_name(strategy)
        tracer = MessageTracer()
        probe = PGridNetwork(1, config, tracer=MessageTracer())
        sample_keys = [
            entry.key for entry in probe.entry_factory.entries_for_all(triples)
        ]
        network = PGridNetwork(n_peers, config, sample_keys=sample_keys, tracer=tracer)
        if triples:
            network.insert_triples(triples)
        return cls(network, strategy=strategy)

    # -- data management --------------------------------------------------------------

    def insert(self, triples: Iterable[Triple]) -> int:
        """Index and place triples; returns the number of entries stored."""
        return self.network.insert_triples(triples)

    def insert_record(
        self, oid: str, record: Mapping[str, ValueType], namespace: str = ""
    ) -> int:
        """Decompose one dict-shaped record into triples and insert them."""
        return self.insert(record_to_triples(oid, record, namespace))

    def insert_rows(
        self,
        schema: RelationSchema,
        rows: Iterable[Mapping[str, ValueType]],
        start_serial: int = 0,
    ) -> int:
        """Insert horizontal tuples of a relation, minting sequential oids."""
        triples: list[Triple] = []
        for serial, row in enumerate(rows, start=start_serial):
            triples.extend(schema.tuple_to_triples(schema.make_oid(serial), row))
        return self.insert(triples)

    # -- VQL ----------------------------------------------------------------------------

    def query(self, text: str, initiator_id: int | None = None) -> QueryResult:
        """Parse, plan and execute a VQL query; records its cost.

        When :meth:`analyze` has been run, plans are ordered by estimated
        cardinalities from the collected statistics.
        """
        result = self.executor.execute_text(text, initiator_id, self.catalog)
        self.stats.record(result.cost)
        return result

    def analyze(
        self, attributes: Sequence[str], sample_partitions: int = 4
    ) -> "StatisticsCatalog":
        """Collect overlay statistics for ``attributes`` (cost charged).

        The catalog is retained and used by subsequent :meth:`query`
        calls for cost-based plan ordering.
        """
        from repro.query.statistics import collect_statistics

        with self._recorded():
            self.catalog = collect_statistics(
                self.ctx, attributes, sample_partitions
            )
        return self.catalog

    def explain(self, text: str) -> str:
        """The physical plan VQL text would execute, without running it."""
        from repro.query.parser import parse
        from repro.query.planner import plan

        return plan(parse(text), self.catalog).explain()

    # -- direct operator access ------------------------------------------------------------

    def similar(
        self,
        search: str,
        attribute: str,
        d: int,
        strategy: SimilarityStrategy | str | None = None,
    ) -> SimilarResult:
        """``Similar(s, a, d)`` — instance level; ``attribute=''`` for schema."""
        if isinstance(strategy, str):
            strategy = SimilarityStrategy.from_name(strategy)
        with self._recorded():
            return similar(self.ctx, search, attribute, d, strategy=strategy)

    def similar_numeric(
        self, attribute: str, center: float, distance: float
    ) -> list[MatchedObject]:
        """Numeric similarity: values within ``distance`` of ``center``."""
        with self._recorded():
            return numeric_similar(self.ctx, attribute, center, distance)

    def sim_join(
        self, left_attribute: str, right_attribute: str, d: int, **kwargs
    ) -> SimJoinResult:
        """``SimJoin(ln, rn, d)`` over the full left column (Algorithm 3)."""
        with self._recorded():
            return sim_join(self.ctx, left_attribute, right_attribute, d, **kwargs)

    def sim_join_anchored(
        self, left_attribute: str, search: str, right_attribute: str, d: int
    ) -> SimJoinResult:
        """The evaluation workload's anchored similarity join."""
        with self._recorded():
            return anchored_sim_join(
                self.ctx, left_attribute, search, right_attribute, d
            )

    def top_n(
        self,
        attribute: str,
        n: int,
        rank: RankFunction | str = RankFunction.NN,
        reference: float = 0.0,
    ) -> TopNResult:
        """Numeric top-N (Algorithm 4) with MIN/MAX/NN ranking."""
        if isinstance(rank, str):
            rank = RankFunction(rank.upper())
        with self._recorded():
            return top_n_numeric(
                self.ctx, attribute, n, rank, reference, fetch_full_objects=True
            )

    def top_n_string(
        self, attribute: str, search: str, n: int, max_distance: int = 5
    ) -> TopNResult:
        """String nearest-neighbour top-N (iterative deepening)."""
        with self._recorded():
            return top_n_string_nn(self.ctx, attribute, search, n, max_distance)

    def lookup(self, oid: str) -> tuple[Triple, ...]:
        """Fetch the complete object stored under ``key(oid)``."""
        with self._recorded():
            return lookup_object(self.ctx, oid)

    def select(self, attribute: str, value: ValueType) -> list[MatchedObject]:
        """Exact selection ``attribute = value``."""
        with self._recorded():
            return select_equals(self.ctx, attribute, value)

    def keyword(self, value: ValueType) -> list[Triple]:
        """Keyword query: triples with ``value`` under any attribute."""
        with self._recorded():
            return keyword_lookup(self.ctx, value)

    # -- introspection -------------------------------------------------------------------------

    @property
    def n_peers(self) -> int:
        return self.network.n_peers

    def last_cost(self) -> CostReport:
        """Cost of the most recent recorded operation."""
        return self._last_cost

    @contextmanager
    def _recorded(self):
        """Charge the wrapped operation's message delta to ``stats``."""
        before = self.network.tracer.snapshot()
        try:
            yield
        finally:
            after = self.network.tracer.snapshot()
            self._last_cost = CostReport.from_delta(before, after)
            self.stats.record(self._last_cost)

    _last_cost: CostReport = CostReport(messages=0, payload_bytes=0)
