"""repro — Similarity Queries on Structured Data in Structured Overlays.

A complete Python reproduction of Karnstedt, Sattler, Hauswirth & Schmidt
(ICDE 2006): vertical triple storage on a simulated P-Grid DHT, the VQL
query language, q-gram string-similarity operators, similarity joins,
rank-aware top-N queries, and the paper's Figure 1 evaluation harness.

Quickstart::

    from repro import StoreConfig, Triple, VerticalStore

    triples = [Triple("w:0001", "word:text", "overlay")]
    store = VerticalStore.build(n_peers=64, triples=triples)
    hits = store.similar("overlai", "word:text", d=1)
"""

from repro.core.config import (
    RankFunction,
    SimilarityStrategy,
    StoreConfig,
    TrieBalancing,
)
from repro.core.errors import ReproError
from repro.core.stats import QueryStats
from repro.core.store import VerticalStore
from repro.storage.schema import RelationSchema
from repro.storage.triple import Triple

__version__ = "1.0.0"

__all__ = [
    "QueryStats",
    "RankFunction",
    "RelationSchema",
    "ReproError",
    "SimilarityStrategy",
    "StoreConfig",
    "TrieBalancing",
    "Triple",
    "VerticalStore",
    "__version__",
]
