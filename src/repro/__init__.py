"""repro — Similarity Queries on Structured Data in Structured Overlays.

A complete Python reproduction of Karnstedt, Sattler, Hauswirth & Schmidt
(ICDE 2006): vertical triple storage on a simulated P-Grid DHT, the VQL
query language, q-gram string-similarity operators, similarity joins,
rank-aware top-N queries, and the paper's Figure 1 evaluation harness.

Quickstart::

    from repro import QueryEngine, StoreConfig, Triple

    triples = [Triple("w:0001", "word:text", "overlay")]
    engine = QueryEngine.build(n_peers=64, triples=triples)
    hits = engine.similar("overlai", "word:text", d=1)

:class:`QueryEngine` is the unified facade (network + statistics +
cost-based adaptive strategy selection + workload memos);
:class:`VerticalStore` extends it with record/relation insert helpers.
"""

from repro.core.config import (
    RankFunction,
    SimilarityStrategy,
    StoreConfig,
    TrieBalancing,
)
from repro.core.errors import ReproError
from repro.core.stats import QueryStats
from repro.core.store import VerticalStore
from repro.engine import QueryEngine
from repro.overlay.faults import (
    Completeness,
    FaultMode,
    FaultPlan,
    RetryPolicy,
)
from repro.storage.schema import RelationSchema
from repro.storage.triple import Triple

__version__ = "1.0.0"

__all__ = [
    "Completeness",
    "FaultMode",
    "FaultPlan",
    "QueryEngine",
    "RetryPolicy",
    "QueryStats",
    "RankFunction",
    "RelationSchema",
    "ReproError",
    "SimilarityStrategy",
    "StoreConfig",
    "TrieBalancing",
    "Triple",
    "VerticalStore",
    "__version__",
]
