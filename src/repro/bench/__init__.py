"""Evaluation harness: workloads, experiment cells, sweeps, reports."""

from repro.bench.experiment import (
    ALL_STRATEGIES,
    ALL_WITH_ADAPTIVE,
    CellResult,
    build_network,
    run_cell,
)
from repro.bench.report import PANELS, format_panel, render_csv, shape_check, write_csv
from repro.bench.sweep import (
    DEFAULT_PEER_COUNTS,
    PAPER_PEER_COUNTS,
    SweepResult,
    full_scale,
    sweep,
)
from repro.bench.workload import (
    JOIN_DISTANCES,
    TOP_N_SIZES,
    QueryKind,
    WorkloadQuery,
    make_workload,
    run_query,
    run_workload,
)

__all__ = [
    "ALL_STRATEGIES",
    "ALL_WITH_ADAPTIVE",
    "CellResult",
    "DEFAULT_PEER_COUNTS",
    "JOIN_DISTANCES",
    "PANELS",
    "PAPER_PEER_COUNTS",
    "QueryKind",
    "SweepResult",
    "TOP_N_SIZES",
    "WorkloadQuery",
    "build_network",
    "format_panel",
    "full_scale",
    "make_workload",
    "render_csv",
    "run_cell",
    "run_query",
    "run_workload",
    "shape_check",
    "sweep",
    "write_csv",
]
