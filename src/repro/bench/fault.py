"""Churn-recovery benchmark: fail → query under failure → repair → re-audit.

The paper defers live robustness numbers to PlanetLab; this harness
measures what the simulator can quantify deterministically: how query
success and answer completeness degrade as a growing fraction of peers
fails (``protect_partitions=False`` — hard partition loss allowed), what
the retry/failover machinery costs in the paper's message currency, and
how much anti-entropy repair traffic it takes to restore replica
consistency after the churn episode.

Each cell of the sweep runs one full fail/recover cycle on a fresh
network:

1. install a lossy :class:`~repro.overlay.faults.FaultPlan` and take a
   random ``fail_fraction`` of peers offline;
2. run the query mix in ``degraded`` fault mode, recording per-query
   :class:`~repro.overlay.faults.Completeness` plus the ``retry`` /
   ``failover`` message phases;
3. insert fresh triples while the peers are down (``respect_online`` —
   offline replicas miss the writes and diverge);
4. bring every peer back, audit, repair each divergent partition with
   :func:`~repro.overlay.replication.repair_partition` (repair traffic
   charged under the ``repair`` phase), and re-audit;
5. replay the query mix on the healed, fault-free network.

``python -m repro.bench.fault --json-dir benchmarks`` writes the
committed ``BENCH_fault.json`` baseline (schema v1; see
``benchmarks/README.md``).  Everything is seeded — re-running at the
same scale reproduces the file bit-for-bit (modulo ``elapsed_seconds``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.core.config import StoreConfig
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.engine import QueryEngine
from repro.overlay.churn import ChurnController
from repro.overlay.faults import FaultPlan, RetryPolicy
from repro.overlay.replication import audit_replicas, repair_partition
from repro.storage.triple import Triple

#: Schema tag embedded in ``BENCH_fault.json``.
FAULT_SCHEMA = "repro-bench-fault/v1"

#: Default sweep scale (kept small: every cell builds its own network).
DEFAULT_WORDS = 600
DEFAULT_PEERS = 96
DEFAULT_REPLICATION = 3
DEFAULT_QUERIES = 24
DEFAULT_DROP_PROBABILITY = 0.05
DEFAULT_FRACTIONS = (0.0, 0.2, 0.4, 0.6)

#: Triples inserted per cell while peers are down (step 3 divergence).
CHURN_INSERTS = 40


def run_fault_bench(
    words: int = DEFAULT_WORDS,
    n_peers: int = DEFAULT_PEERS,
    replication: int = DEFAULT_REPLICATION,
    queries: int = DEFAULT_QUERIES,
    drop_probability: float = DEFAULT_DROP_PROBABILITY,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    seed: int = 0,
    progress=None,
) -> dict:
    """Run the churn-recovery sweep; returns the ``BENCH_fault.json`` payload."""
    started = time.perf_counter()
    config = StoreConfig(
        seed=seed, replication=replication,
        index_values=False, index_schema_grams=False,
    )
    corpus = bible_triples(words, seed=seed)
    strings = sorted({str(t.value) for t in corpus})
    rng = random.Random(seed + 11)
    query_mix = [(rng.choice(strings), rng.choice((1, 1, 2))) for __ in range(queries)]

    cells = []
    for cell_index, fraction in enumerate(fractions):
        if progress is not None:
            progress(f"fault cell {cell_index + 1}/{len(fractions)}: "
                     f"fail_fraction={fraction}")
        cells.append(
            _run_cell(
                corpus, query_mix, config, n_peers, fraction,
                drop_probability, seed, cell_index,
            )
        )
    return {
        "schema": FAULT_SCHEMA,
        "kind": "fault_bench",
        "scale": {
            "words": words,
            "peers": n_peers,
            "replication": replication,
            "queries": queries,
            "drop_probability": drop_probability,
            "fractions": list(fractions),
            "churn_inserts": CHURN_INSERTS,
            "seed": seed,
        },
        "cells": cells,
        "elapsed_seconds": round(time.perf_counter() - started, 3),
    }


def _run_cell(
    corpus,
    query_mix,
    config: StoreConfig,
    n_peers: int,
    fraction: float,
    drop_probability: float,
    seed: int,
    cell_index: int,
) -> dict:
    """One fail → query → repair → re-audit cycle at ``fraction``."""
    engine = QueryEngine.build(n_peers=n_peers, triples=corpus, config=config)
    tracer = engine.network.tracer

    # 1. Lossy transport + hard churn (dark partitions allowed).
    engine.install_faults(
        FaultPlan.lossy(drop_probability, seed=seed + 101 * cell_index),
        RetryPolicy(),
        mode="degraded",
    )
    churn = ChurnController(engine.network, seed=seed + 17 * cell_index)
    report = churn.fail_fraction(fraction, protect_partitions=False)

    # 2. The query mix under failure.
    under_failure = _run_queries(engine, query_mix)

    # 3. Inserts the offline replicas miss (anti-entropy divergence).
    fresh = [
        Triple(f"churn:{cell_index}:{i:03d}", TEXT_ATTRIBUTE, f"zz{i:03d}churn")
        for i in range(CHURN_INSERTS)
    ]
    engine.insert(fresh, respect_online=True)

    # 4. Recover, audit, repair, re-audit.
    recovered = churn.recover_all()
    audit_before = audit_replicas(engine.network)
    before_repair = tracer.snapshot()
    entries_copied = 0
    for partition_index in audit_before.divergent_partitions:
        entries_copied += repair_partition(
            engine.network, partition_index, charge_messages=True
        )
    repair_delta = before_repair.delta(tracer.snapshot())
    audit_after = audit_replicas(engine.network)

    # 5. Replay the mix on the healed, fault-free network.
    engine.clear_faults()
    engine.check_mutations()
    post_repair = _run_queries(engine, query_mix)

    return {
        "fail_fraction": fraction,
        "failed_peers": len(report.failed_peer_ids),
        "dark_partitions": len(report.dark_partitions),
        "under_failure": under_failure,
        "recovered_peers": recovered,
        "divergent_partitions_before_repair": len(audit_before.divergent_partitions),
        "repair": {
            "entries_copied": entries_copied,
            "messages": repair_delta.by_phase.get("repair", 0),
            "payload_bytes": repair_delta.payload_bytes,
        },
        "consistent_after_repair": audit_after.consistent,
        "post_repair": post_repair,
    }


def _run_queries(engine: QueryEngine, query_mix) -> dict:
    """Run the mix, aggregating completeness and fault-phase overhead."""
    complete = 0
    fraction_sum = 0.0
    matches = 0
    messages = 0
    payload_bytes = 0
    retry_messages = 0
    failover_messages = 0
    dropped_candidates = 0
    dark: set[int] = set()
    simulated_latency = 0.0
    for search, d in query_mix:
        result = engine.similar(search, TEXT_ATTRIBUTE, d)
        cost = engine.last_cost()
        matches += len(result.matches)
        messages += cost.messages
        payload_bytes += cost.payload_bytes
        retry_messages += cost.by_phase.get("retry", 0)
        failover_messages += cost.by_phase.get("failover", 0)
        completeness = cost.completeness
        if completeness is None:
            complete += 1
            fraction_sum += 1.0
            continue
        if completeness.fraction == 1.0 and not completeness.is_partial:
            complete += 1
        fraction_sum += completeness.fraction
        dropped_candidates += completeness.dropped_candidates
        dark.update(completeness.dark_partitions)
        simulated_latency += completeness.simulated_latency
    n = len(query_mix)
    return {
        "success_rate": round(complete / n, 4),
        "mean_completeness": round(fraction_sum / n, 4),
        "matches": matches,
        "messages": messages,
        "payload_bytes": payload_bytes,
        "retry_messages": retry_messages,
        "failover_messages": failover_messages,
        "dropped_candidates": dropped_candidates,
        "dark_partitions_seen": len(dark),
        "simulated_latency": round(simulated_latency, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.fault",
        description="Churn-recovery benchmark (BENCH_fault.json baseline).",
    )
    parser.add_argument("--words", type=int, default=DEFAULT_WORDS)
    parser.add_argument("--peers", type=int, default=DEFAULT_PEERS)
    parser.add_argument("--replication", type=int, default=DEFAULT_REPLICATION)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument(
        "--drop-probability", type=float, default=DEFAULT_DROP_PROBABILITY
    )
    parser.add_argument(
        "--fractions", type=float, nargs="+", default=list(DEFAULT_FRACTIONS)
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json-dir",
        default=None,
        help="write BENCH_fault.json into this directory (default: stdout only)",
    )
    args = parser.parse_args(argv)

    def progress(message: str) -> None:
        print(f"  [{time.strftime('%H:%M:%S')}] {message}", file=sys.stderr)

    payload = run_fault_bench(
        words=args.words,
        n_peers=args.peers,
        replication=args.replication,
        queries=args.queries,
        drop_probability=args.drop_probability,
        fractions=tuple(args.fractions),
        seed=args.seed,
        progress=progress,
    )
    for cell in payload["cells"]:
        under = cell["under_failure"]
        print(
            f"fail_fraction={cell['fail_fraction']:<4} "
            f"dark={cell['dark_partitions']:<3} "
            f"success={under['success_rate']:<6} "
            f"completeness={under['mean_completeness']:<6} "
            f"retries={under['retry_messages']:<5} "
            f"repair_msgs={cell['repair']['messages']:<4} "
            f"consistent_after={cell['consistent_after_repair']}"
        )
    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_fault.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {path}", file=sys.stderr)
    return 0 if all(c["consistent_after_repair"] for c in payload["cells"]) else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
