"""The evaluation workload of Section 6.

"In each test we processed a mix of 6 queries initiated 40 times.  The
set consists of three top-N queries, filtering the N = 5, 10, 15 nearest
neighbors to a provided search string (up to a maximal distance of 5),
and three similarity self-joins over one column.  The joins are processed
with a maximal join distance of d = 1, 2, 3 on the chosen column.  In
each run we chose the initiating peer as well as the search string (from
the set of all strings) of each query randomly and started each of the
three methods successively."

The self-joins are *anchored* at the chosen search string (left side =
objects matching it), the reading consistent with the paper's per-query
random search string and reported cost magnitudes — see DESIGN.md §4.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.config import SimilarityStrategy
from repro.core.stats import QueryStats
from repro.overlay.messages import CostReport
from repro.query.operators.base import OperatorContext
from repro.query.operators.simjoin import anchored_sim_join
from repro.query.operators.topn import top_n_string_nn

#: The paper's parameters.
TOP_N_SIZES = (5, 10, 15)
TOP_N_MAX_DISTANCE = 5
JOIN_DISTANCES = (1, 2, 3)
DEFAULT_REPETITIONS = 40


class QueryKind(enum.Enum):
    TOP_N = "topn"
    SIM_JOIN = "simjoin"


@dataclass(frozen=True)
class WorkloadQuery:
    """One query instance: kind, parameter, search string, initiator."""

    kind: QueryKind
    parameter: int  # N for top-N, d for joins
    search: str
    initiator_id: int


def make_workload(
    strings: Sequence[str],
    n_peers: int,
    repetitions: int = DEFAULT_REPETITIONS,
    seed: int = 0,
) -> list[WorkloadQuery]:
    """The 6-query mix, ``repetitions`` times, with fresh random choices.

    The same workload instance is replayed for each strategy ("started
    each of the three methods successively"), keeping the comparison
    paired.
    """
    rng = random.Random(seed)
    queries: list[WorkloadQuery] = []
    for __ in range(repetitions):
        for n in TOP_N_SIZES:
            queries.append(
                WorkloadQuery(
                    QueryKind.TOP_N,
                    n,
                    rng.choice(strings),
                    rng.randrange(n_peers),
                )
            )
        for d in JOIN_DISTANCES:
            queries.append(
                WorkloadQuery(
                    QueryKind.SIM_JOIN,
                    d,
                    rng.choice(strings),
                    rng.randrange(n_peers),
                )
            )
    return queries


def run_query(
    ctx: OperatorContext,
    attribute: str,
    query: WorkloadQuery,
    strategy: SimilarityStrategy,
) -> CostReport:
    """Execute one workload query under a strategy; returns its cost.

    Adaptive-mode strategy decisions taken while the query ran (one per
    ``Similar`` probe: deepening rounds and join probes each decide) are
    attached to the returned :class:`CostReport`.
    """
    tracer = ctx.network.tracer
    decision_mark = len(ctx.decision_log)
    before = tracer.snapshot()
    if query.kind is QueryKind.TOP_N:
        top_n_string_nn(
            ctx,
            attribute,
            query.search,
            query.parameter,
            max_distance=TOP_N_MAX_DISTANCE,
            initiator_id=query.initiator_id,
            strategy=strategy,
        )
    else:
        anchored_sim_join(
            ctx,
            attribute,
            query.search,
            attribute,
            query.parameter,
            initiator_id=query.initiator_id,
            strategy=strategy,
        )
    cost = CostReport.from_delta(before, tracer.snapshot())
    cost.decisions = list(ctx.decision_log[decision_mark:])
    return cost


def run_workload(
    ctx: OperatorContext,
    attribute: str,
    queries: Sequence[WorkloadQuery],
    strategy: SimilarityStrategy,
) -> QueryStats:
    """Run the whole mix under one strategy, accumulating cost."""
    stats = QueryStats()
    for query in queries:
        stats.record(run_query(ctx, attribute, query, strategy))
    return stats
