"""``python -m repro.bench`` entry point."""

from repro.bench.cli import main

raise SystemExit(main())
