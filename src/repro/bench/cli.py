"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench                      # all four panels, default scale
    python -m repro.bench --figure fig1a       # one panel
    python -m repro.bench --full               # paper scale (slow, memory-heavy)
    python -m repro.bench --peers 128 1024 --words 4000 --repetitions 10
    python -m repro.bench --csv-dir results/   # also write CSV series
    python -m repro.bench --json               # + BENCH_fig1.json / BENCH_micro.json
    python -m repro.bench --full --naive-sample 0.02   # estimate naive cells
    python -m repro.bench --check-incremental  # assert incremental == scratch

Default scale keeps the run to minutes on a laptop; ``--full`` switches
to the paper's corpus sizes (106 704 words / 66 349 titles) and peer
counts (100 .. 100 000).  Shapes are preserved at either scale; see
EXPERIMENTS.md.

Sweeps always run on the incremental engine (shared trie-derivation
state across cells, whole-workload naive memoization); both are
equivalence-preserving, so the measured series are bit-identical to a
from-scratch run.  ``--naive-sample RATE`` is the only switch that
trades exactness for speed: it samples each naive broadcast region at
~RATE and extrapolates, and is recorded in the JSON (``scale`` and
per-cell ``naive_sampled``) so estimated series stay distinguishable.

Each cell additionally replays the workload in **adaptive** mode (the
cost model of :mod:`repro.query.cost` picks naive vs. q-gram per query
from collected statistics); the ``adaptive`` series, the one-off
statistics cost, and the per-cell strategy tally are recorded in the
JSON (schema v3, additive).  ``--no-adaptive`` skips that replay — the
three fixed series are bit-identical either way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.config import StoreConfig
from repro.bench.experiment import ALL_STRATEGIES, ALL_WITH_ADAPTIVE
from repro.datasets.bible import PAPER_WORD_COUNT, TEXT_ATTRIBUTE, bible_triples
from repro.datasets.paintings import (
    PAPER_TITLE_COUNT,
    TITLE_ATTRIBUTE,
    painting_triples,
)
from repro.bench.micro import run_micro
from repro.bench.report import (
    PANELS,
    format_panel,
    render_fig1_json,
    shape_check,
    write_csv,
)
from repro.bench.sweep import (
    DEFAULT_PEER_COUNTS,
    PAPER_PEER_COUNTS,
    ParallelSweepRunner,
    SweepJob,
    SweepResult,
    full_scale,
    run_sweep_job,
    sweep_check,
)

#: Default (scaled-down) corpus sizes.
DEFAULT_WORDS = 8_000
DEFAULT_TITLES = 4_000
DEFAULT_REPETITIONS = 10


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate Figure 1 of Karnstedt et al., ICDE 2006.",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(PANELS) + ["all"],
        default="all",
        help="which panel(s) to regenerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale corpora and peer counts (slow)",
    )
    parser.add_argument("--peers", type=int, nargs="+", help="peer counts to sweep")
    parser.add_argument("--words", type=int, help="bible corpus size")
    parser.add_argument("--titles", type=int, help="painting-title corpus size")
    parser.add_argument(
        "--repetitions",
        type=int,
        help="workload repetitions (paper: 40)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv-dir", help="directory for CSV series output")
    parser.add_argument(
        "--json",
        action="store_true",
        help="write BENCH_fig1.json and BENCH_micro.json baselines",
    )
    parser.add_argument(
        "--json-dir",
        default=".",
        help="directory for the BENCH_*.json baselines (default: cwd)",
    )
    parser.add_argument(
        "--skip-shape-check",
        action="store_true",
        help="do not fail on qualitative shape findings (tiny smoke runs)",
    )
    parser.add_argument(
        "--naive-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="sampled-broadcast estimator for the naive strategy: scan "
        "only ~RATE of each region's partitions and extrapolate its "
        "cost (0 = exact broadcast, the default; recorded in the JSON)",
    )
    parser.add_argument(
        "--check-incremental",
        action="store_true",
        help="rebuild every cell's network from scratch and assert the "
        "incremental build is identical (slow; also REPRO_SWEEP_CHECK=1)",
    )
    parser.add_argument(
        "--no-adaptive",
        action="store_true",
        help="skip the cost-model-driven adaptive replay (the three "
        "fixed series are bit-identical either way; adaptive always "
        "runs last and is recorded as its own series)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep: (dataset, peer-count) "
        "cells are independent and dispatched in parallel; measured "
        "series are bit-identical to --jobs 1 (default: 1, serial)",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=0,
        metavar="THREADS",
        help="intra-cell thread fan-out for per-peer delegate work "
        "(>= 2 to enable); cost series are unaffected (default: off)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    use_full = args.full or full_scale()
    peer_counts = tuple(
        args.peers
        if args.peers
        else (PAPER_PEER_COUNTS if use_full else DEFAULT_PEER_COUNTS)
    )
    words = args.words or (PAPER_WORD_COUNT if use_full else DEFAULT_WORDS)
    titles = args.titles or (PAPER_TITLE_COUNT if use_full else DEFAULT_TITLES)
    repetitions = args.repetitions or (40 if use_full else DEFAULT_REPETITIONS)
    # The Figure 1 workload is instance-level only: keyword (VALUE) and
    # schema-gram entries are never queried, and the schema grams of a
    # single-attribute corpus form an indivisible hotspot (EXPERIMENTS.md),
    # so the harness leaves both families out of the storage scheme.
    config = StoreConfig(
        seed=args.seed, index_values=False, index_schema_grams=False
    )
    wanted = sorted(PANELS) if args.figure == "all" else [args.figure]
    datasets_needed = {PANELS[panel][0] for panel in wanted}

    def progress(message: str) -> None:
        print(f"  [{time.strftime('%H:%M:%S')}] {message}", file=sys.stderr)

    if not 0.0 <= args.naive_sample < 1.0:
        print(
            f"--naive-sample must be in [0, 1), got {args.naive_sample}",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.fanout == 1 or args.fanout < 0:
        print(
            f"--fanout must be 0 (off) or >= 2, got {args.fanout}",
            file=sys.stderr,
        )
        return 2
    job_options = {
        "naive_sample_rate": args.naive_sample,
        "check_equivalence": args.check_incremental or sweep_check(),
        "strategies": (
            ALL_STRATEGIES if args.no_adaptive else ALL_WITH_ADAPTIVE
        ),
        "repetitions": repetitions,
        "peer_counts": peer_counts,
        "config": config,
        "parallel_fanout": args.fanout if args.fanout >= 2 else None,
    }

    # Both datasets' jobs are prepared first, then dispatched together:
    # with --jobs > 1 one process pool interleaves every chunk, so no
    # worker idles at a dataset barrier.
    jobs: list[SweepJob] = []
    if "bible" in datasets_needed:
        print(
            f"# bible words: {words} words, peers {list(peer_counts)}, "
            f"{repetitions}x6 queries per cell",
            file=sys.stderr,
        )
        corpus = bible_triples(words, seed=args.seed)
        strings = [str(t.value) for t in corpus]
        jobs.append(SweepJob.from_dataset(
            "bible", corpus, TEXT_ATTRIBUTE, strings, **job_options
        ))
    if "titles" in datasets_needed:
        print(
            f"# painting titles: {titles} titles, peers {list(peer_counts)}",
            file=sys.stderr,
        )
        corpus = painting_triples(titles, seed=args.seed)
        strings = [str(t.value) for t in corpus]
        jobs.append(SweepJob.from_dataset(
            "titles", corpus, TITLE_ATTRIBUTE, strings, **job_options
        ))

    if args.jobs > 1:
        swept = ParallelSweepRunner(args.jobs).run(jobs, progress)
    else:
        swept = [run_sweep_job(job, progress) for job in jobs]
    results: dict[str, SweepResult] = {
        result.dataset: result for result in swept
    }

    status = 0
    for panel in wanted:
        dataset, __ = PANELS[panel]
        result = results[dataset]
        print()
        print(format_panel(panel, result))
    for dataset, result in results.items():
        findings = shape_check(result)
        for finding in findings:
            print(f"! shape check ({dataset}): {finding}")
            if not args.skip_shape_check:
                status = 1
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"{dataset}.csv")
            write_csv(path, result)
            print(f"wrote {path}", file=sys.stderr)
    if args.json:
        os.makedirs(args.json_dir, exist_ok=True)
        scale = {
            "full": use_full,
            "words": words,
            "titles": titles,
            "peer_counts": list(peer_counts),
            "repetitions": repetitions,
            "seed": args.seed,
            # 0.0 = exact broadcasts; > 0 marks the "strings" series of
            # every cell as sampled-broadcast *estimates*.
            "naive_sample_rate": args.naive_sample,
            # Whether the cost-model-driven adaptive replay ran (its
            # series is additive; fixed series are identical either way).
            "adaptive": not args.no_adaptive,
            # Execution knobs: worker processes and intra-cell fan-out
            # threads.  Both affect wall-clock numbers only — measured
            # series are bit-identical across any jobs/fanout setting.
            "jobs": args.jobs,
            "fanout": args.fanout if args.fanout >= 2 else 0,
        }
        fig1_path = os.path.join(args.json_dir, "BENCH_fig1.json")
        with open(fig1_path, "w") as handle:
            json.dump(render_fig1_json(results, scale), handle, indent=2)
            handle.write("\n")
        print(f"wrote {fig1_path}", file=sys.stderr)
        print("# micro ops ...", file=sys.stderr)
        micro_path = os.path.join(args.json_dir, "BENCH_micro.json")
        with open(micro_path, "w") as handle:
            json.dump(run_micro(seed=args.seed), handle, indent=2)
            handle.write("\n")
        print(f"wrote {micro_path}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
