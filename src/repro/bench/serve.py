"""Open-loop load harness for the service layer.

Drives :class:`~repro.serve.app.QueryService` with a zipfian query mix
at a configured arrival rate and reports the numbers a service owner
tracks: sustained QPS, p50/p95/p99 latency, admission rejections, and
per-strategy cost totals.  **Open loop**: arrivals follow a seeded
Poisson process and are fired whether or not earlier requests finished,
so saturation shows up as queueing latency and 429s instead of the
generator politely slowing down (closed-loop coordination omission).

The query mix is zipf-distributed over the prepared corpus strings
(rank ``r`` drawn with probability ∝ ``1/r**s``) across six request
shapes: similarity probes at ``d = 1`` and ``d = 2`` (strategy itself
mixed across adaptive / qgrams / qsamples), top-N, streaming top-N,
exact selection, and a VQL round trip.

Two transports exercise the same application object:

* **in-process** (default) — ``await service.handle(request)``; no
  sockets, measures the engine + admission path alone;
* ``--http`` — boots the real asyncio server on a loopback port and
  drives it through :class:`~repro.serve.client.HttpClient` keep-alive
  connections; measures the full wire path.

``python -m repro.bench.serve --json-dir benchmarks`` writes the
committed ``BENCH_serve.json`` baseline (schema ``repro-bench-serve/v1``;
see ``benchmarks/README.md``).  The workload sequence is seeded and
reproducible; wall-clock figures (latency, QPS) naturally are not.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import random
import sys
import time
from collections import Counter
from dataclasses import dataclass

from repro.serve.app import QueryService, Request
from repro.serve.client import HttpClient
from repro.serve.http import ServiceServer

#: Schema tag embedded in ``BENCH_serve.json``.
SERVE_SCHEMA = "repro-bench-serve/v1"

#: Default scale (the committed baseline).
DEFAULT_WORDS = 1_200
DEFAULT_PEERS = 64
DEFAULT_RATE = 40.0
DEFAULT_DURATION = 15.0
DEFAULT_MAX_INFLIGHT = 8
DEFAULT_COST_BUDGET = 600.0

#: Zipf exponent for the search-string popularity distribution.
ZIPF_EXPONENT = 1.1

#: Request-shape mix: (kind, cumulative probability).
KIND_MIX = (
    ("similar_d1", 0.30),
    ("similar_d2", 0.45),
    ("topn", 0.60),
    ("topn_stream", 0.70),
    ("exact", 0.90),
    ("vql", 1.00),
)

#: Similarity-strategy mix within similar/top-N requests.
STRATEGY_MIX = (
    ("adaptive", 0.50),
    ("qgrams", 0.80),
    ("qsamples", 1.00),
)

#: Connections kept open by the HTTP transport.
HTTP_POOL_SIZE = 16

#: Seconds allowed for in-flight requests to drain after the last arrival.
DRAIN_TIMEOUT = 60.0


@dataclass(frozen=True)
class PlannedRequest:
    """One arrival: where it goes and how it is labelled in the report."""

    kind: str
    method: str
    path: str
    payload: dict
    strategy: str  # report label: similarity strategy or the kind itself


def zipf_sampler(strings: list[str], rng: random.Random):
    """Draw strings with zipfian popularity (rank = sorted position)."""
    weights = [1.0 / (rank ** ZIPF_EXPONENT) for rank in range(1, len(strings) + 1)]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)

    def draw() -> str:
        target = rng.random() * total
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return strings[low]

    return draw


def plan_request(
    rng: random.Random, draw_string, attribute: str
) -> PlannedRequest:
    """One arrival of the mix (seeded; the sequence is reproducible)."""
    roll = rng.random()
    kind = next(name for name, cutoff in KIND_MIX if roll <= cutoff)
    search = draw_string()
    if kind in ("similar_d1", "similar_d2"):
        strategy_roll = rng.random()
        strategy = next(
            name for name, cutoff in STRATEGY_MIX if strategy_roll <= cutoff
        )
        d = 1 if kind == "similar_d1" else 2
        return PlannedRequest(
            kind,
            "POST",
            "/query/similar",
            {"search": search, "attribute": attribute, "d": d,
             "strategy": strategy},
            strategy,
        )
    if kind in ("topn", "topn_stream"):
        strategy_roll = rng.random()
        strategy = next(
            name for name, cutoff in STRATEGY_MIX if strategy_roll <= cutoff
        )
        path = "/query/topn" if kind == "topn" else "/query/topn/stream"
        return PlannedRequest(
            kind,
            "POST",
            path,
            {"attribute": attribute, "search": search,
             "n": rng.choice((5, 10)), "max_distance": 3,
             "strategy": strategy},
            strategy,
        )
    if kind == "exact":
        return PlannedRequest(
            kind,
            "POST",
            "/query/exact",
            {"attribute": attribute, "value": search},
            "exact",
        )
    return PlannedRequest(
        "vql",
        "POST",
        "/query/vql",
        {"text": f"SELECT ?w WHERE {{ (?o,{attribute},?w) "
                 f"FILTER (dist(?w,'{search}') <= 1) }}"},
        "vql",
    )


# -- transports ----------------------------------------------------------------


@dataclass
class Outcome:
    """What one fired request produced, transport-independent."""

    status: int
    cost_messages: int = 0
    cost_bytes: int = 0
    partial: bool = False
    retry_after: int = 0


class InProcessTransport:
    """Drive the application object directly (no sockets)."""

    def __init__(self, service: QueryService):
        self.service = service

    async def fire(self, planned: PlannedRequest) -> Outcome:
        request = Request(
            planned.method,
            planned.path,
            body=json.dumps(planned.payload).encode(),
        )
        response = await self.service.handle(request)
        if response.stream is not None:
            summary: dict = {}
            async for chunk in response.stream:
                line = json.loads(chunk)
                if line.get("done"):
                    summary = line
            return _outcome_from_payload(response.status, summary)
        return _outcome_from_payload(
            response.status, response.payload or {},
            response.headers.get("Retry-After"),
        )

    async def stats(self) -> dict:
        response = await self.service.handle(Request("GET", "/stats"))
        return response.payload or {}

    async def close(self) -> None:
        return None


class HttpTransport:
    """Drive a live server through a pool of keep-alive connections."""

    def __init__(self, host: str, port: int, pool_size: int = HTTP_POOL_SIZE):
        self._pool: asyncio.Queue[HttpClient] = asyncio.Queue()
        self._clients = [HttpClient(host, port) for __ in range(pool_size)]
        for client in self._clients:
            self._pool.put_nowait(client)

    async def fire(self, planned: PlannedRequest) -> Outcome:
        client = await self._pool.get()
        try:
            reply = await client.request(
                planned.method, planned.path, planned.payload
            )
        finally:
            self._pool.put_nowait(client)
        if reply.lines:
            summary = next(
                (line for line in reply.lines if line.get("done")), {}
            )
            return _outcome_from_payload(reply.status, summary)
        return _outcome_from_payload(
            reply.status, reply.json(), reply.headers.get("retry-after")
        )

    async def stats(self) -> dict:
        client = await self._pool.get()
        try:
            return (await client.request("GET", "/stats")).json()
        finally:
            self._pool.put_nowait(client)

    async def close(self) -> None:
        for client in self._clients:
            await client.close()


def _outcome_from_payload(
    status: int, payload: dict, retry_after=None
) -> Outcome:
    cost = payload.get("cost") or {}
    return Outcome(
        status=status,
        cost_messages=int(cost.get("messages", 0)),
        cost_bytes=int(cost.get("payload_bytes", 0)),
        partial=bool(payload.get("partial")),
        retry_after=int(retry_after or payload.get("retry_after") or 0),
    )


# -- the open loop -------------------------------------------------------------


@dataclass
class CompletedRequest:
    kind: str
    strategy: str
    status: int
    latency_seconds: float
    finished_at: float  # seconds since load start
    cost_messages: int
    cost_bytes: int


async def run_load(
    transport,
    strings: list[str],
    attribute: str,
    rate: float,
    duration: float,
    seed: int,
    progress=None,
) -> tuple[list[CompletedRequest], int]:
    """Fire the open-loop workload; returns (records, offered count)."""
    rng = random.Random(seed + 17)
    draw_string = zipf_sampler(sorted(set(strings)), rng)
    records: list[CompletedRequest] = []
    tasks: list[asyncio.Task] = []
    started = time.perf_counter()
    offered = 0

    async def fire(planned: PlannedRequest) -> None:
        begun = time.perf_counter()
        try:
            outcome = await transport.fire(planned)
        except Exception:
            outcome = Outcome(status=599)
        now = time.perf_counter()
        records.append(
            CompletedRequest(
                kind=planned.kind,
                strategy=planned.strategy,
                status=outcome.status,
                latency_seconds=now - begun,
                finished_at=now - started,
                cost_messages=outcome.cost_messages,
                cost_bytes=outcome.cost_bytes,
            )
        )

    next_arrival = rng.expovariate(rate)
    while next_arrival < duration:
        delay = started + next_arrival - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        planned = plan_request(rng, draw_string, attribute)
        tasks.append(asyncio.create_task(fire(planned)))
        offered += 1
        next_arrival += rng.expovariate(rate)
    if progress is not None:
        progress(f"offered {offered} requests, draining in-flight work")
    if tasks:
        await asyncio.wait_for(asyncio.gather(*tasks), DRAIN_TIMEOUT)
    return records, offered


# -- reporting -----------------------------------------------------------------


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0)."""
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[index]


def _latency_summary(latencies_ms: list[float]) -> dict:
    ordered = sorted(latencies_ms)
    return {
        "p50": round(percentile(ordered, 0.50), 3),
        "p95": round(percentile(ordered, 0.95), 3),
        "p99": round(percentile(ordered, 0.99), 3),
        "mean": round(sum(ordered) / len(ordered), 3) if ordered else 0.0,
        "max": round(ordered[-1], 3) if ordered else 0.0,
    }


def summarize(
    records: list[CompletedRequest], offered: int, admission: dict
) -> dict:
    """The ``results`` block of ``BENCH_serve.json``."""
    ok = [r for r in records if r.status in (200, 206)]
    rejected = [r for r in records if r.status == 429]
    errors = [r for r in records if r.status not in (200, 206, 429)]
    elapsed = max((r.finished_at for r in records), default=0.0)

    by_kind: dict[str, list[float]] = {}
    for record in ok:
        by_kind.setdefault(record.kind, []).append(
            record.latency_seconds * 1000.0
        )
    per_strategy: dict[str, dict] = {}
    for record in ok:
        bucket = per_strategy.setdefault(
            record.strategy,
            {"queries": 0, "messages": 0, "payload_bytes": 0},
        )
        bucket["queries"] += 1
        bucket["messages"] += record.cost_messages
        bucket["payload_bytes"] += record.cost_bytes

    timeline = [0] * (int(math.ceil(elapsed)) or 1)
    for record in ok:
        timeline[min(len(timeline) - 1, int(record.finished_at))] += 1

    return {
        "offered": offered,
        "completed": len(ok),
        "partial": sum(1 for r in ok if r.status == 206),
        "rejected": len(rejected),
        "errors": len(errors),
        "elapsed_seconds": round(elapsed, 3),
        "sustained_qps": round(len(ok) / elapsed, 2) if elapsed else 0.0,
        "latency_ms": _latency_summary(
            [r.latency_seconds * 1000.0 for r in ok]
        ),
        "latency_ms_by_kind": {
            kind: {"count": len(values), **_latency_summary(values)}
            for kind, values in sorted(by_kind.items())
        },
        "qps_timeline": timeline,
        "rejected_by_kind": dict(
            sorted(Counter(r.kind for r in rejected).items())
        ),
        "per_strategy_cost": dict(sorted(per_strategy.items())),
        "admission": admission,
    }


# -- entry point ---------------------------------------------------------------


async def run_serve_bench(
    words: int = DEFAULT_WORDS,
    peers: int = DEFAULT_PEERS,
    rate: float = DEFAULT_RATE,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
    http: bool = False,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    cost_budget: float = DEFAULT_COST_BUDGET,
    progress=None,
) -> dict:
    """Build the service, run the load, return the JSON payload."""
    from repro.datasets.bible import TEXT_ATTRIBUTE
    from repro.serve.__main__ import build_service

    if progress is not None:
        progress(f"building service: {words} words on {peers} peers")
    with build_service(
        peers, words, seed, "adaptive", max_inflight, cost_budget
    ) as service:
        # The corpus strings come back out of the dataset generator, not
        # the network: the same (count, seed) pair reproduces them.
        from repro.datasets.bible import bible_triples

        strings = [str(t.value) for t in bible_triples(words, seed=seed)]
        server = None
        if http:
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            transport = HttpTransport("127.0.0.1", server.port)
        else:
            transport = InProcessTransport(service)
        if progress is not None:
            transport_name = (
                f"http://127.0.0.1:{server.port}" if http else "in-process"
            )
            progress(
                f"load: rate={rate}/s duration={duration}s "
                f"({transport_name})"
            )
        try:
            records, offered = await run_load(
                transport,
                strings,
                TEXT_ATTRIBUTE,
                rate,
                duration,
                seed,
                progress,
            )
            stats = await transport.stats()
        finally:
            await transport.close()
            if server is not None:
                await server.stop()
    return {
        "schema": SERVE_SCHEMA,
        "kind": "serve_bench",
        "generated_by": "python -m repro.bench.serve --json-dir benchmarks",
        "scale": {
            "words": words,
            "peers": peers,
            "rate": rate,
            "duration_seconds": duration,
            "seed": seed,
            "transport": "http" if http else "inprocess",
            "max_inflight": max_inflight,
            "cost_budget": cost_budget,
        },
        "results": summarize(
            records, offered, stats.get("admission", {})
        ),
    }


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serve",
        description="Open-loop load benchmark for the query service.",
    )
    parser.add_argument("--words", type=int, default=DEFAULT_WORDS)
    parser.add_argument("--peers", type=int, default=DEFAULT_PEERS)
    parser.add_argument(
        "--rate", type=float, default=DEFAULT_RATE,
        help="mean arrival rate, requests/second (Poisson)",
    )
    parser.add_argument(
        "--duration", type=float, default=DEFAULT_DURATION,
        help="seconds of open-loop arrivals",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--http", action="store_true",
        help="boot the asyncio HTTP server and drive it over loopback "
             "sockets (default: in-process)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=DEFAULT_MAX_INFLIGHT,
        help="admission capacity (in-flight queries)",
    )
    parser.add_argument(
        "--cost-budget", type=float, default=DEFAULT_COST_BUDGET,
        help="admission budget in outstanding predicted messages (0 = off)",
    )
    parser.add_argument(
        "--json-dir",
        help="write BENCH_serve.json into this directory",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.rate <= 0 or args.duration <= 0:
        print("--rate and --duration must be > 0", file=sys.stderr)
        return 2

    def progress(message: str) -> None:
        print(f"  [{time.strftime('%H:%M:%S')}] {message}", file=sys.stderr)

    payload = asyncio.run(
        run_serve_bench(
            words=args.words,
            peers=args.peers,
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            http=args.http,
            max_inflight=args.max_inflight,
            cost_budget=args.cost_budget,
            progress=progress,
        )
    )
    results = payload["results"]
    print(
        f"offered {results['offered']}, completed {results['completed']} "
        f"({results['partial']} partial), rejected {results['rejected']}, "
        f"errors {results['errors']}"
    )
    print(
        f"sustained {results['sustained_qps']} qps; latency ms "
        f"p50={results['latency_ms']['p50']} "
        f"p95={results['latency_ms']['p95']} "
        f"p99={results['latency_ms']['p99']}"
    )
    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_serve.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {path}", file=sys.stderr)
    return 0 if not results["errors"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
