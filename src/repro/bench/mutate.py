"""Mixed read-write benchmark: delta memo maintenance vs wholesale drop.

The delta-maintenance arc routes every mutation through the engine's
explicit write path (:meth:`~repro.engine.QueryEngine.insert` /
:meth:`~repro.engine.QueryEngine.delete` / :meth:`~repro.engine.QueryEngine.recover`)
and invalidates only the affected key partitions' memo entries.  This
harness quantifies what that buys on a seeded mixed workload:

* **memo retention** — the same op sequence runs on a ``"delta"`` engine
  and a ``"drop"`` baseline engine (every write clears every memo); the
  headline number is the memo hit-rate each arm achieves.  Memos are
  cost-transparent (they replay recorded message charges), so the two
  arms' measured message series are bit-identical — the win is cached
  work, reported as hit rate and wall time.
* **query-visible staleness** — a third, memo-free reference arm
  (``memoize=False``) replays the identical ops; every query's match
  list must agree bit-for-bit with the delta arm's.  Any disagreement is
  a stale answer escaping a memo, counted (and expected to be zero).
* **recovery** — after the workload, a fail → diverge → recover cycle on
  the delta engine measures anti-entropy wall time, entries copied, and
  repair traffic, plus how many memo entries survive a recovery that
  only repairs the partitions that actually diverged.

``python -m repro.bench.mutate --json-dir benchmarks`` writes the
committed ``BENCH_mutate.json`` baseline (schema
``repro-bench-mutate/v1``; see ``benchmarks/README.md``).  Everything is
seeded — re-running at the same scale reproduces the file bit-for-bit
(modulo the wall-clock fields).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.core.config import StoreConfig
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.engine import QueryEngine
from repro.storage.triple import Triple

#: Schema tag embedded in ``BENCH_mutate.json``.
MUTATE_SCHEMA = "repro-bench-mutate/v1"

#: Default workload scale (kept small: three arms build three networks).
DEFAULT_WORDS = 400
DEFAULT_PEERS = 64
DEFAULT_REPLICATION = 3
DEFAULT_STEPS = 8
DEFAULT_QUERIES_PER_STEP = 6
DEFAULT_WRITE_BATCH = 8
DEFAULT_QUERY_POOL = 12

#: Recovery-phase settings: fraction of peers failed (partitions stay
#: reachable) and triples inserted while they are down.
RECOVERY_FAIL_FRACTION = 0.25
RECOVERY_INSERTS = 32


def build_workload(
    corpus,
    steps: int,
    queries_per_step: int,
    write_batch: int,
    query_pool: int,
    seed: int,
) -> list[tuple]:
    """The seeded op list every arm replays.

    Each step runs ``queries_per_step`` similarity queries drawn (with
    repetition — that is what memos cache) from a fixed pool of stored
    strings, then one write: inserts on even steps, deletes of the
    previous step's inserts on odd steps.  Net data change over a full
    even/odd pair is zero, so the workload keeps hitting the same
    regions instead of drifting away from the query pool.
    """
    rng = random.Random(seed + 23)
    strings = sorted({str(t.value) for t in corpus})
    pool = [rng.choice(strings) for __ in range(query_pool)]
    ops: list[tuple] = []
    pending: list[Triple] = []
    for step in range(steps):
        for __ in range(queries_per_step):
            ops.append(("query", rng.choice(pool), rng.choice((1, 1, 2))))
        if step % 2 == 0:
            batch = [
                Triple(
                    f"mut:{step}:{i:03d}",
                    TEXT_ATTRIBUTE,
                    f"{rng.choice(pool)}x{step}{i}",
                )
                for i in range(write_batch)
            ]
            ops.append(("insert", tuple(batch)))
            pending = batch
        else:
            ops.append(("delete", tuple(pending)))
            pending = []
    return ops


def _run_arm(
    corpus,
    ops,
    config: StoreConfig,
    n_peers: int,
    memo_maintenance: str | None,
) -> dict:
    """Replay ``ops`` on a fresh engine; ``None`` = memo-free reference."""
    if memo_maintenance is None:
        engine = QueryEngine.build(
            n_peers=n_peers, triples=corpus, config=config, memoize=False
        )
    else:
        engine = QueryEngine.build(
            n_peers=n_peers,
            triples=corpus,
            config=config,
            memo_maintenance=memo_maintenance,
        )
    answers: list[tuple] = []
    started = time.perf_counter()
    for op in ops:
        if op[0] == "query":
            result = engine.similar(op[1], TEXT_ATTRIBUTE, op[2])
            answers.append(
                tuple(
                    sorted(
                        (m.oid, m.matched, m.distance) for m in result.matches
                    )
                )
            )
        elif op[0] == "insert":
            engine.insert(list(op[1]))
        else:
            engine.delete(list(op[1]))
    wall = time.perf_counter() - started
    memo_stats = engine.memo_stats()
    hits = sum(m["hits"] for m in memo_stats.values())
    misses = sum(m["misses"] for m in memo_stats.values())
    lookups = hits + misses
    arm = {
        "messages": engine.stats.messages,
        "payload_bytes": engine.stats.payload_bytes,
        "queries": engine.stats.queries,
        "wall_seconds": round(wall, 4),
        "memo_hits": hits,
        "memo_misses": misses,
        "memo_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "memo_invalidations": sum(
            m["invalidations"] for m in memo_stats.values()
        ),
        "memo_entries_end": sum(m["entries"] for m in memo_stats.values()),
    }
    return {"engine": engine, "answers": answers, "summary": arm}


def _run_recovery(engine: QueryEngine, seed: int) -> dict:
    """Fail → diverge → recover on the (delta) engine; measure repair."""
    tracer = engine.network.tracer
    entries_before = sum(
        m["entries"] for m in engine.memo_stats().values()
    )
    engine.fail_fraction(RECOVERY_FAIL_FRACTION, protect_partitions=True)
    offline = engine.churn.offline_peer_ids()
    rng = random.Random(seed + 41)
    fresh = [
        Triple(f"rec:{i:03d}", TEXT_ATTRIBUTE, f"zz{rng.randrange(999):03d}rec")
        for i in range(RECOVERY_INSERTS)
    ]
    engine.insert(fresh, respect_online=True)
    before = tracer.snapshot()
    started = time.perf_counter()
    report = engine.recover(repair=True, charge_messages=True)
    wall = time.perf_counter() - started
    delta = before.delta(tracer.snapshot())
    entries_after = sum(m["entries"] for m in engine.memo_stats().values())
    return {
        "failed_peers": len(offline),
        "recovered_peers": report.recovered_peers,
        "divergent_partitions": len(report.divergent_partitions),
        "entries_copied": report.entries_copied,
        "repair_messages": delta.by_phase.get("repair", 0),
        "repair_payload_bytes": delta.payload_bytes,
        "wall_seconds": round(wall, 4),
        "memo_entries_before": entries_before,
        "memo_entries_after": entries_after,
    }


def run_mutate_bench(
    words: int = DEFAULT_WORDS,
    n_peers: int = DEFAULT_PEERS,
    replication: int = DEFAULT_REPLICATION,
    steps: int = DEFAULT_STEPS,
    queries_per_step: int = DEFAULT_QUERIES_PER_STEP,
    write_batch: int = DEFAULT_WRITE_BATCH,
    query_pool: int = DEFAULT_QUERY_POOL,
    seed: int = 0,
    progress=None,
) -> dict:
    """Run the three-arm workload; returns the ``BENCH_mutate.json`` payload."""
    started = time.perf_counter()
    config = StoreConfig(seed=seed, replication=replication)
    corpus = bible_triples(words, seed=seed)
    ops = build_workload(
        corpus, steps, queries_per_step, write_batch, query_pool, seed
    )
    n_queries = sum(1 for op in ops if op[0] == "query")

    arms = {}
    for name, mode in (("delta", "delta"), ("drop", "drop"), ("reference", None)):
        if progress is not None:
            progress(f"mutate arm: {name}")
        arms[name] = _run_arm(corpus, ops, config, n_peers, mode)

    stale = sum(
        1
        for got, want in zip(
            arms["delta"]["answers"], arms["reference"]["answers"]
        )
        if got != want
    )
    stale_drop = sum(
        1
        for got, want in zip(
            arms["drop"]["answers"], arms["reference"]["answers"]
        )
        if got != want
    )
    if progress is not None:
        progress("mutate recovery cycle")
    recovery = _run_recovery(arms["delta"]["engine"], seed)

    delta_rate = arms["delta"]["summary"]["memo_hit_rate"]
    drop_rate = arms["drop"]["summary"]["memo_hit_rate"]
    payload = {
        "schema": MUTATE_SCHEMA,
        "kind": "mutate_bench",
        "scale": {
            "words": words,
            "peers": n_peers,
            "replication": replication,
            "steps": steps,
            "queries_per_step": queries_per_step,
            "write_batch": write_batch,
            "query_pool": query_pool,
            "recovery_fail_fraction": RECOVERY_FAIL_FRACTION,
            "recovery_inserts": RECOVERY_INSERTS,
            "seed": seed,
        },
        "workload": {
            "ops": len(ops),
            "queries": n_queries,
            "writes": len(ops) - n_queries,
        },
        "arms": {name: arm["summary"] for name, arm in arms.items()},
        "staleness": {
            "queries_compared": n_queries,
            "stale_answers_delta": stale,
            "stale_answers_drop": stale_drop,
        },
        "retention": {
            "delta_hit_rate": delta_rate,
            "drop_hit_rate": drop_rate,
            "advantage": round(delta_rate - drop_rate, 4),
        },
        "recovery": recovery,
        "elapsed_seconds": round(time.perf_counter() - started, 3),
    }
    for arm in arms.values():
        arm["engine"].close()
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.mutate",
        description="Mixed read-write benchmark (BENCH_mutate.json baseline).",
    )
    parser.add_argument("--words", type=int, default=DEFAULT_WORDS)
    parser.add_argument("--peers", type=int, default=DEFAULT_PEERS)
    parser.add_argument("--replication", type=int, default=DEFAULT_REPLICATION)
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument(
        "--queries-per-step", type=int, default=DEFAULT_QUERIES_PER_STEP
    )
    parser.add_argument("--write-batch", type=int, default=DEFAULT_WRITE_BATCH)
    parser.add_argument("--query-pool", type=int, default=DEFAULT_QUERY_POOL)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json-dir",
        default=None,
        help="write BENCH_mutate.json into this directory (default: stdout only)",
    )
    args = parser.parse_args(argv)

    def progress(message: str) -> None:
        print(f"  [{time.strftime('%H:%M:%S')}] {message}", file=sys.stderr)

    payload = run_mutate_bench(
        words=args.words,
        n_peers=args.peers,
        replication=args.replication,
        steps=args.steps,
        queries_per_step=args.queries_per_step,
        write_batch=args.write_batch,
        query_pool=args.query_pool,
        seed=args.seed,
        progress=progress,
    )
    retention = payload["retention"]
    staleness = payload["staleness"]
    recovery = payload["recovery"]
    print(
        f"hit_rate delta={retention['delta_hit_rate']} "
        f"drop={retention['drop_hit_rate']} "
        f"advantage={retention['advantage']}"
    )
    print(
        f"stale_answers delta={staleness['stale_answers_delta']} "
        f"drop={staleness['stale_answers_drop']} "
        f"of {staleness['queries_compared']}"
    )
    print(
        f"recovery divergent={recovery['divergent_partitions']} "
        f"copied={recovery['entries_copied']} "
        f"repair_msgs={recovery['repair_messages']} "
        f"memos {recovery['memo_entries_before']}->{recovery['memo_entries_after']}"
    )
    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_mutate.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {path}", file=sys.stderr)
    ok = (
        staleness["stale_answers_delta"] == 0
        and retention["advantage"] > 0
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
