"""One experiment cell: (dataset, peer count) → per-strategy cost.

A cell builds one network sized to the peer count, bulk-loads the
dataset's index entries, and replays the same workload under each of the
three strategies ("started each of the three methods successively").
The network is shared across strategies exactly as in the paper — all
index families are present regardless of which strategy queries them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.core.stats import QueryStats
from repro.overlay.network import PGridNetwork
from repro.query.operators.base import OperatorContext
from repro.storage.triple import Triple
from repro.bench.workload import WorkloadQuery, make_workload, run_workload

#: Strategy order used in reports (mirrors the figure legends).
ALL_STRATEGIES = (
    SimilarityStrategy.QSAMPLE,
    SimilarityStrategy.QGRAM,
    SimilarityStrategy.NAIVE,
)


@dataclass
class CellResult:
    """Per-strategy workload statistics for one (dataset, n_peers) cell."""

    n_peers: int
    by_strategy: dict[SimilarityStrategy, QueryStats] = field(default_factory=dict)

    def messages(self, strategy: SimilarityStrategy) -> int:
        return self.by_strategy[strategy].messages

    def megabytes(self, strategy: SimilarityStrategy) -> float:
        return self.by_strategy[strategy].payload_megabytes


def build_network(
    triples: Sequence[Triple], n_peers: int, config: StoreConfig
) -> PGridNetwork:
    """Build a load-balanced network and place the dataset on it."""
    probe = PGridNetwork(1, config)
    sample_keys = [e.key for e in probe.entry_factory.entries_for_all(triples)]
    network = PGridNetwork(n_peers, config, sample_keys=sample_keys)
    network.insert_triples(triples)
    return network


def run_cell(
    triples: Sequence[Triple],
    attribute: str,
    strings: Sequence[str],
    n_peers: int,
    config: StoreConfig | None = None,
    repetitions: int = 40,
    strategies: Sequence[SimilarityStrategy] = ALL_STRATEGIES,
    workload: Sequence[WorkloadQuery] | None = None,
) -> CellResult:
    """Run the full strategy comparison for one peer count."""
    config = config if config is not None else StoreConfig()
    network = build_network(triples, n_peers, config)
    if workload is None:
        workload = make_workload(
            strings, network.n_peers, repetitions=repetitions, seed=config.seed
        )
    result = CellResult(n_peers=n_peers)
    for strategy in strategies:
        network.tracer.reset()
        ctx = OperatorContext(network, strategy=strategy)
        result.by_strategy[strategy] = run_workload(
            ctx, attribute, workload, strategy
        )
    return result
