"""One experiment cell: (dataset, peer count) → per-strategy cost.

A cell builds one network sized to the peer count, bulk-loads the
dataset's index entries, and replays the same workload under each of the
three strategies ("started each of the three methods successively").
The network is shared across strategies exactly as in the paper — all
index families are present regardless of which strategy queries them.

Sweeps run many cells over the *same* dataset, so the expensive
per-dataset work — q-gram decomposition, key hashing, entry construction,
the data-aware trie sample — is hoisted into :class:`PreparedDataset` and
done once; each cell then only re-places the prepared entries onto its
own trie (:meth:`repro.overlay.network.PGridNetwork.place_entries`).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.core.stats import QueryStats
from repro.overlay.hashing import CompositeKeyCodec
from repro.overlay.network import PGridNetwork
from repro.query.operators.base import OperatorContext
from repro.storage.indexing import EntryFactory, IndexEntry
from repro.storage.triple import Triple
from repro.bench.workload import WorkloadQuery, make_workload, run_workload

#: Strategy order used in reports (mirrors the figure legends).
ALL_STRATEGIES = (
    SimilarityStrategy.QSAMPLE,
    SimilarityStrategy.QGRAM,
    SimilarityStrategy.NAIVE,
)


@dataclass
class PreparedDataset:
    """A dataset's index entries, derived once and re-placed per cell.

    ``entries`` is sorted by key (ties keep generation order, matching
    what a per-cell :meth:`PGridNetwork.insert_triples` would produce
    after its deferred sort); ``sample_keys`` doubles as the data-aware
    trie sample, shared by every cell of a sweep.
    """

    config: StoreConfig
    entries: list[IndexEntry]
    sample_keys: list[str]

    @classmethod
    def prepare(
        cls, triples: Sequence[Triple], config: StoreConfig
    ) -> "PreparedDataset":
        """Derive and key-sort all index entries for ``triples``."""
        factory = EntryFactory(config, CompositeKeyCodec(config))
        entries = sorted(
            factory.entries_for_all(triples), key=lambda entry: entry.key
        )
        return cls(
            config=config,
            entries=entries,
            sample_keys=[entry.key for entry in entries],
        )

    def build_network(self, n_peers: int) -> PGridNetwork:
        """A load-balanced network of ``n_peers`` holding this dataset."""
        network = PGridNetwork(
            n_peers, self.config, sample_keys=self.sample_keys
        )
        network.place_entries(self.entries)
        return network


@dataclass
class CellResult:
    """Per-strategy workload statistics for one (dataset, n_peers) cell."""

    n_peers: int
    by_strategy: dict[SimilarityStrategy, QueryStats] = field(default_factory=dict)
    #: Wall-clock seconds the whole cell took (build + all strategies).
    wall_seconds: float = 0.0
    #: Index entries stored across all peers (replicas counted).
    total_entries: int = 0
    #: Stored payload bytes across all peers (cached per-store totals).
    stored_payload_bytes: int = 0

    def messages(self, strategy: SimilarityStrategy) -> int:
        return self.by_strategy[strategy].messages

    def megabytes(self, strategy: SimilarityStrategy) -> float:
        return self.by_strategy[strategy].payload_megabytes


def build_network(
    triples: Sequence[Triple], n_peers: int, config: StoreConfig
) -> PGridNetwork:
    """Build a load-balanced network and place the dataset on it."""
    return PreparedDataset.prepare(triples, config).build_network(n_peers)


def run_cell(
    triples: Sequence[Triple],
    attribute: str,
    strings: Sequence[str],
    n_peers: int,
    config: StoreConfig | None = None,
    repetitions: int = 40,
    strategies: Sequence[SimilarityStrategy] = ALL_STRATEGIES,
    workload: Sequence[WorkloadQuery] | None = None,
    prepared: PreparedDataset | None = None,
) -> CellResult:
    """Run the full strategy comparison for one peer count.

    ``prepared`` short-circuits entry derivation; sweeps pass the same
    :class:`PreparedDataset` into every cell.
    """
    config = config if config is not None else StoreConfig()
    started = time.perf_counter()
    if prepared is None:
        prepared = PreparedDataset.prepare(triples, config)
    network = prepared.build_network(n_peers)
    if workload is None:
        workload = make_workload(
            strings, network.n_peers, repetitions=repetitions, seed=config.seed
        )
    result = CellResult(n_peers=n_peers)
    for strategy in strategies:
        network.tracer.reset()
        ctx = OperatorContext(network, strategy=strategy)
        result.by_strategy[strategy] = run_workload(
            ctx, attribute, workload, strategy
        )
    result.wall_seconds = time.perf_counter() - started
    result.total_entries = network.total_entries()
    result.stored_payload_bytes = network.total_payload_bytes()
    return result
