"""One experiment cell: (dataset, peer count) → per-strategy cost.

A cell builds one network sized to the peer count, bulk-loads the
dataset's index entries, and replays the same workload under each of the
three strategies ("started each of the three methods successively").
The network is shared across strategies exactly as in the paper — all
index families are present regardless of which strategy queries them.

Sweeps run many cells over the *same* dataset, so the expensive
per-dataset work — q-gram decomposition, key hashing, entry construction,
the data-aware trie sample — is hoisted into :class:`PreparedDataset` and
done once; each cell then only re-places the prepared entries onto its
own trie (:meth:`repro.overlay.network.PGridNetwork.place_entries`).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from collections import Counter

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.core.stats import QueryStats
from repro.engine import QueryEngine
from repro.overlay.hashing import CompositeKeyCodec
from repro.overlay.incremental import IncrementalNetworkBuilder
from repro.overlay.network import PGridNetwork
from repro.storage.indexing import EntryFactory, IndexEntry
from repro.storage.triple import Triple
from repro.bench.workload import WorkloadQuery, make_workload, run_workload

#: Strategy order used in reports (mirrors the figure legends).
ALL_STRATEGIES = (
    SimilarityStrategy.QSAMPLE,
    SimilarityStrategy.QGRAM,
    SimilarityStrategy.NAIVE,
)

#: The fixed strategies plus the cost-model-driven adaptive mode (the
#: ``adaptive`` series of ``BENCH_fig1.json``).
ALL_WITH_ADAPTIVE = ALL_STRATEGIES + (SimilarityStrategy.ADAPTIVE,)


@dataclass
class PreparedDataset:
    """A dataset's index entries, derived once and re-placed per cell.

    ``entries`` is sorted by key (ties keep generation order, matching
    what a per-cell :meth:`PGridNetwork.insert_triples` would produce
    after its deferred sort); ``sample_keys`` doubles as the data-aware
    trie sample, shared by every cell of a sweep.
    """

    config: StoreConfig
    entries: list[IndexEntry]
    sample_keys: list[str]

    @classmethod
    def prepare(
        cls, triples: Sequence[Triple], config: StoreConfig
    ) -> "PreparedDataset":
        """Derive and key-sort all index entries for ``triples``."""
        factory = EntryFactory(config, CompositeKeyCodec(config))
        entries = sorted(
            factory.entries_for_all(triples), key=lambda entry: entry.key
        )
        return cls(
            config=config,
            entries=entries,
            sample_keys=[entry.key for entry in entries],
        )

    def build_network(self, n_peers: int) -> PGridNetwork:
        """A load-balanced network of ``n_peers`` holding this dataset."""
        network = PGridNetwork(
            n_peers, self.config, sample_keys=self.sample_keys
        )
        network.place_entries(self.entries)
        return network

    def make_builder(
        self, check_equivalence: bool = False
    ) -> IncrementalNetworkBuilder:
        """An incremental builder over this dataset (one per sweep).

        The builder shares trie split counts across every network it
        builds, so a sweep's later (larger) cells derive their tries from
        mostly cached splits; ``check_equivalence=True`` re-builds every
        cell from scratch and asserts structural equality (the sweep
        engine's paranoia mode).
        """
        return IncrementalNetworkBuilder(
            config=self.config,
            entries=self.entries,
            sample_keys=self.sample_keys,
            check_equivalence=check_equivalence,
        )


@dataclass
class CellResult:
    """Per-strategy workload statistics for one (dataset, n_peers) cell."""

    n_peers: int
    by_strategy: dict[SimilarityStrategy, QueryStats] = field(default_factory=dict)
    #: Wall-clock seconds the whole cell took (build + all strategies).
    wall_seconds: float = 0.0
    #: Wall-clock seconds of network construction + entry placement alone.
    build_seconds: float = 0.0
    #: Index entries stored across all peers (replicas counted).
    total_entries: int = 0
    #: Stored payload bytes across all peers (cached per-store totals).
    stored_payload_bytes: int = 0
    #: Sampled-broadcast estimator rate the cell ran with (0 = exact).
    naive_sample_rate: float = 0.0
    #: One-off statistics-collection cost paid before the adaptive replay
    #: (kept out of the workload series so all series stay comparable).
    adaptive_stats_messages: int = 0
    adaptive_stats_bytes: int = 0
    #: How often the adaptive replay resolved to each physical strategy.
    adaptive_choices: dict[str, int] = field(default_factory=dict)

    def messages(self, strategy: SimilarityStrategy) -> int:
        return self.by_strategy[strategy].messages

    def megabytes(self, strategy: SimilarityStrategy) -> float:
        return self.by_strategy[strategy].payload_megabytes


def build_network(
    triples: Sequence[Triple], n_peers: int, config: StoreConfig
) -> PGridNetwork:
    """Build a load-balanced network and place the dataset on it."""
    return PreparedDataset.prepare(triples, config).build_network(n_peers)


def run_cell(
    triples: Sequence[Triple],
    attribute: str,
    strings: Sequence[str],
    n_peers: int,
    config: StoreConfig | None = None,
    repetitions: int = 40,
    strategies: Sequence[SimilarityStrategy] = ALL_STRATEGIES,
    workload: Sequence[WorkloadQuery] | None = None,
    prepared: PreparedDataset | None = None,
    builder: IncrementalNetworkBuilder | None = None,
    memoize_naive: bool = True,
    memoize_gram_scans: bool = True,
    memoize_fetches: bool = True,
    share_verifiers: bool = True,
    naive_sample_rate: float = 0.0,
    parallel_fanout: int | None = None,
) -> CellResult:
    """Run the full strategy comparison for one peer count.

    ``prepared`` short-circuits entry derivation; sweeps pass the same
    :class:`PreparedDataset` into every cell.  ``builder`` additionally
    carries trie-derivation state across cells (the incremental sweep
    engine); when given, it takes precedence over ``prepared`` for
    network construction.

    All cell wiring — the whole-workload memos, the shared verifier
    pool, the cost model behind the adaptive replay — comes from one
    :class:`~repro.engine.QueryEngine`; ``memoize_naive`` /
    ``memoize_gram_scans`` / ``memoize_fetches`` / ``share_verifiers``
    toggle its parts individually (each
    acceleration is sound here because the cell's stores are static once
    loaded, and cost-transparent — identical message/byte series — by
    construction).  ``naive_sample_rate`` > 0 opts into the
    sampled-broadcast estimator; the default 0 keeps every naive series
    exact.

    When ``strategies`` contains ``SimilarityStrategy.ADAPTIVE`` it
    always replays *last*: it first collects per-attribute statistics
    (a routed sampling walk whose cost is recorded separately on the
    cell, not folded into the workload series) and consumes router RNG
    draws doing so — running it after the fixed strategies keeps their
    series bit-identical to an adaptive-free run.

    ``parallel_fanout`` (>= 2) turns on the engine's intra-query thread
    fan-out for per-peer delegate work; cost series are unaffected.
    """
    config = config if config is not None else StoreConfig()
    started = time.perf_counter()
    if builder is not None:
        # Time the build ourselves as well: a builder variant that
        # reports nothing must still yield a real build_seconds, not 0.0.
        build_started = time.perf_counter()
        network = builder.build(n_peers)
        build_measured = time.perf_counter() - build_started
        report = builder.last_report
        build_seconds = (
            report.build_seconds if report is not None else build_measured
        )
    else:
        if prepared is None:
            prepared = PreparedDataset.prepare(triples, config)
        # Time only construction + placement: dataset preparation is
        # per-dataset work, not part of the cell's build metric.
        build_started = time.perf_counter()
        network = prepared.build_network(n_peers)
        build_seconds = time.perf_counter() - build_started
    if workload is None:
        workload = make_workload(
            strings, network.n_peers, repetitions=repetitions, seed=config.seed
        )
    result = CellResult(
        n_peers=n_peers,
        build_seconds=build_seconds,
        naive_sample_rate=naive_sample_rate,
    )
    # One engine per cell: the strategies replay the same workload, so
    # later strategies reuse the memos and verifier state earlier ones
    # filled.  Sharing changes wall-clock only, never a match set or a
    # message (pinned by tests).
    engine = QueryEngine(
        network,
        memoize_naive=memoize_naive,
        memoize_gram_scans=memoize_gram_scans,
        memoize_fetches=memoize_fetches,
        share_verifiers=share_verifiers,
        naive_sample_rate=naive_sample_rate,
        parallel_fanout=parallel_fanout,
    )
    try:
        fixed = [s for s in strategies if s is not SimilarityStrategy.ADAPTIVE]
        for strategy in fixed:
            network.tracer.reset()
            ctx = engine.context(strategy=strategy)
            result.by_strategy[strategy] = run_workload(
                ctx, attribute, workload, strategy
            )
        if SimilarityStrategy.ADAPTIVE in strategies:
            _run_adaptive(engine, attribute, workload, result)
    finally:
        engine.close()
    result.wall_seconds = time.perf_counter() - started
    result.total_entries = network.total_entries()
    result.stored_payload_bytes = network.total_payload_bytes()
    return result


def _run_adaptive(
    engine: QueryEngine,
    attribute: str,
    workload: Sequence[WorkloadQuery],
    result: CellResult,
) -> None:
    """The cell's adaptive replay: collect statistics, then run.

    The one-off statistics walk is what the adaptive mode pays to become
    informed; it is recorded on the cell (``adaptive_stats_messages``)
    but kept out of the per-query workload series, which therefore stay
    directly comparable to the fixed strategies'.
    """
    from repro.query.statistics import collect_statistics

    network = engine.network
    network.tracer.reset()
    ctx = engine.context(strategy=SimilarityStrategy.ADAPTIVE)
    ctx.catalog = collect_statistics(ctx, [attribute])
    stats_snapshot = network.tracer.snapshot()
    result.adaptive_stats_messages = stats_snapshot.messages
    result.adaptive_stats_bytes = stats_snapshot.payload_bytes
    result.by_strategy[SimilarityStrategy.ADAPTIVE] = run_workload(
        ctx, attribute, workload, SimilarityStrategy.ADAPTIVE
    )
    result.adaptive_choices = dict(
        Counter(decision.chosen.value for decision in ctx.decision_log)
    )
