"""Rendering sweep results as the paper's figure panels.

Figure 1 has four panels — (messages | data volume) × (bible words |
painting titles) — each with three curves (``qsamples``, ``qgrams``,
``strings``) over the peer count.  :func:`format_panel` prints one panel
as a text table with the same rows/series; :func:`write_csv` emits
machine-readable output for plotting.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

from repro.core.config import SimilarityStrategy
from repro.bench.experiment import ALL_STRATEGIES
from repro.bench.sweep import SweepResult

#: Figure panel ids and their (dataset, metric) coordinates.
PANELS = {
    "fig1a": ("bible", "messages"),
    "fig1b": ("bible", "volume"),
    "fig1c": ("titles", "messages"),
    "fig1d": ("titles", "volume"),
}

PANEL_TITLES = {
    "fig1a": "Figure 1(a): Messages (bible words)",
    "fig1b": "Figure 1(b): Data volume (bible words)",
    "fig1c": "Figure 1(c): Messages (painting titles)",
    "fig1d": "Figure 1(d): Data volume (painting titles)",
}


def panel_strategies(
    result: SweepResult,
) -> tuple[SimilarityStrategy, ...]:
    """The strategies a sweep actually measured, in legend order.

    The three fixed series come first (the paper's legend), then any
    additional measured series — in practice ``adaptive``.
    """
    if not result.cells:
        return ALL_STRATEGIES
    measured = result.cells[0].by_strategy
    ordered = [s for s in ALL_STRATEGIES if s in measured]
    ordered += [s for s in measured if s not in ordered]
    return tuple(ordered)


def format_panel(
    panel: str,
    result: SweepResult,
    strategies: Sequence[SimilarityStrategy] | None = None,
) -> str:
    """One panel as an aligned text table (all measured series)."""
    if strategies is None:
        strategies = panel_strategies(result)
    __, metric = PANELS[panel]
    lines = [PANEL_TITLES[panel]]
    header = ["peers"] + [s.value for s in strategies]
    rows: list[list[str]] = [header]
    for cell in result.cells:
        row = [str(cell.n_peers)]
        for strategy in strategies:
            if metric == "messages":
                row.append(str(cell.messages(strategy)))
            else:
                row.append(f"{cell.megabytes(strategy):.3f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if metric == "volume":
        lines.append("(data volume in MB of payload shipped by the whole workload)")
    return "\n".join(lines)


def render_csv(
    result: SweepResult,
    strategies: Sequence[SimilarityStrategy] | None = None,
) -> str:
    """Sweep results as CSV: one row per (peers, strategy)."""
    if strategies is None:
        strategies = panel_strategies(result)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["dataset", "peers", "strategy", "messages", "megabytes"])
    for cell in result.cells:
        for strategy in strategies:
            writer.writerow(
                [
                    result.dataset,
                    cell.n_peers,
                    strategy.value,
                    cell.messages(strategy),
                    f"{cell.megabytes(strategy):.6f}",
                ]
            )
    return buffer.getvalue()


def write_csv(path: str, result: SweepResult) -> None:
    """Write :func:`render_csv` output to a file."""
    with open(path, "w", newline="") as handle:
        handle.write(render_csv(result))


#: Schema tag embedded in ``BENCH_fig1.json``.  v4 adds the per-dataset
#: ``sweep_seconds`` (end-to-end sweep wall clock — under ``--jobs N``
#: bounded by the slowest worker chunk, not the sum of cells) and the
#: ``jobs``/``fanout`` scale fields; v3 added the ``adaptive`` strategy
#: series plus the per-cell ``adaptive_stats_messages`` /
#: ``adaptive_stats_bytes`` / ``adaptive_choices`` fields (the cost of
#: the one-off statistics walk and the cost model's strategy picks) —
#: all additive; the v2 fields (``build_seconds``, ``naive_sampled``)
#: and the v1 series fields are unchanged.
FIG1_SCHEMA = "repro-bench-fig1/v4"


def sweep_to_dict(
    result: SweepResult,
    strategies: Sequence[SimilarityStrategy] | None = None,
) -> dict:
    """One sweep as a JSON-ready dict (the ``BENCH_fig1.json`` cell list).

    Each cell carries the figure series (messages / megabytes per
    strategy) plus the perf-trajectory fields: wall-clock seconds,
    network build seconds, stored entry count and payload bytes.  Cells
    measured with the sampled-broadcast estimator additionally carry
    ``"naive_sampled": true`` so estimated ``strings`` series can never
    be mistaken for exact ones; cells with an adaptive replay carry the
    statistics-walk cost and the tally of chosen strategies.
    """
    if strategies is None:
        strategies = panel_strategies(result)
    cells = []
    for cell in result.cells:
        cell_dict = {
            "peers": cell.n_peers,
            "wall_seconds": round(cell.wall_seconds, 4),
            "build_seconds": round(cell.build_seconds, 4),
            "total_entries": cell.total_entries,
            "stored_payload_bytes": cell.stored_payload_bytes,
            "strategies": {
                strategy.value: {
                    "messages": cell.messages(strategy),
                    "megabytes": round(cell.megabytes(strategy), 6),
                }
                for strategy in strategies
            },
        }
        if cell.naive_sample_rate:
            cell_dict["naive_sampled"] = True
        if SimilarityStrategy.ADAPTIVE in cell.by_strategy:
            cell_dict["adaptive_stats_messages"] = cell.adaptive_stats_messages
            cell_dict["adaptive_stats_bytes"] = cell.adaptive_stats_bytes
            cell_dict["adaptive_choices"] = dict(
                sorted(cell.adaptive_choices.items())
            )
        cells.append(cell_dict)
    return {
        "dataset": result.dataset,
        "sweep_seconds": round(result.wall_seconds, 4),
        "cells": cells,
    }


def render_fig1_json(
    results: dict[str, SweepResult],
    scale: dict,
    strategies: Sequence[SimilarityStrategy] | None = None,
) -> dict:
    """The full ``BENCH_fig1.json`` payload for a set of sweeps."""
    return {
        "schema": FIG1_SCHEMA,
        "generated_by": "python -m repro.bench --json",
        "scale": scale,
        "datasets": {
            name: sweep_to_dict(result, strategies)
            for name, result in results.items()
        },
    }


def shape_check(result: SweepResult) -> list[str]:
    """Qualitative assertions about a sweep, as human-readable findings.

    Checks the claims Figure 1 supports: the naive strategy grows with the
    peer count while the q-gram strategies grow much slower, and q-samples
    stay at or below q-grams.  Returns a list of findings (empty = every
    expectation held).
    """
    findings: list[str] = []
    naive = result.message_series(SimilarityStrategy.NAIVE)
    qgram = result.message_series(SimilarityStrategy.QGRAM)
    qsample = result.message_series(SimilarityStrategy.QSAMPLE)
    if len(naive) >= 2:
        naive_growth = naive[-1] / max(naive[0], 1)
        qgram_growth = qgram[-1] / max(qgram[0], 1)
        if naive_growth <= qgram_growth:
            findings.append(
                f"naive should outgrow qgrams: naive x{naive_growth:.1f} "
                f"vs qgrams x{qgram_growth:.1f}"
            )
    if qsample[-1] > qgram[-1]:
        findings.append(
            f"qsamples should not exceed qgrams at scale: "
            f"{qsample[-1]} vs {qgram[-1]}"
        )
    if naive[-1] <= qsample[-1]:
        findings.append(
            f"naive should be the most expensive at scale: "
            f"{naive[-1]} vs qsamples {qsample[-1]}"
        )
    if result.cells and SimilarityStrategy.ADAPTIVE in result.cells[0].by_strategy:
        adaptive = result.message_series(SimilarityStrategy.ADAPTIVE)
        for index, cell in enumerate(result.cells):
            best = min(naive[index], qgram[index], qsample[index])
            if adaptive[index] > 2 * best:
                findings.append(
                    f"adaptive should stay within 2x of the best fixed "
                    f"strategy: {adaptive[index]} vs {best} at "
                    f"{cell.n_peers} peers"
                )
    return findings
