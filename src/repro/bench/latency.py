"""Query response-time estimation.

The paper's Figure 1 reports messages and bytes, then remarks that the
naive strategy's good-looking message counts hide "the enormous effort
incurred by comparing the strings at the peers locally, which will result
in quite poor query answering times" (Section 6).  This module makes that
remark quantitative with a deliberately simple, documented model:

* network time — messages travel hop by hop; phases whose peers are
  contacted by a shower/broadcast run in *parallel*, so the network
  critical path is ``(routing depth + dissemination depth + 1 return) *
  hop_latency``;
* compute time — local string comparisons at the busiest peer (they run
  in parallel across peers, so the *maximum* per-peer count gates the
  response), each costing ``comparison_cost_us`` for a banded
  edit-distance check.

The absolute constants are arbitrary; the point is the *ratio* between
strategies: the naive broadcast makes every region peer compare its whole
slice, while the q-gram strategies verify a handful of candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.query.operators.similar import SimilarResult


@dataclass(frozen=True)
class LatencyModel:
    """Cost constants of the estimation model."""

    hop_latency_ms: float = 50.0
    comparison_cost_us: float = 20.0

    def network_time_ms(self, n_partitions: int, dissemination_depth: int) -> float:
        """Critical path of routing + parallel dissemination + return."""
        routing_depth = 0.5 * math.log2(max(2, n_partitions))
        return (routing_depth + dissemination_depth + 1) * self.hop_latency_ms

    def compute_time_ms(self, max_peer_comparisons: int) -> float:
        return max_peer_comparisons * self.comparison_cost_us / 1000.0


@dataclass
class LatencyEstimate:
    """Decomposed response-time estimate for one similarity query."""

    network_ms: float
    compute_ms: float

    @property
    def total_ms(self) -> float:
        return self.network_ms + self.compute_ms


def estimate_similar_latency(
    result: SimilarResult,
    n_partitions: int,
    model: LatencyModel | None = None,
) -> LatencyEstimate:
    """Estimate one ``Similar`` query's response time from its diagnostics.

    Naive runs (``extras['region_peers']`` present) disseminate through
    the whole region (depth ≈ log2 of its size, peers scan in parallel)
    and their busiest peer performs ``extras['max_peer_comparisons']``
    comparisons.  Gram runs disseminate to the gram partitions and verify
    at most a few candidates per oid peer — modelled as the candidate
    count spread over the contacted partitions.
    """
    model = model if model is not None else LatencyModel()
    region_peers = result.extras.get("region_peers")
    if region_peers is not None:
        dissemination = math.ceil(math.log2(max(2, region_peers)))
        comparisons = result.extras.get(
            "max_peer_comparisons", result.candidates_verified
        )
    else:
        dissemination = math.ceil(
            math.log2(max(2, result.gram_partitions_contacted))
        ) + 1  # one extra stage: gram peers -> oid peers
        contacted = max(1, result.gram_partitions_contacted)
        comparisons = math.ceil(result.candidates_verified / contacted)
    return LatencyEstimate(
        network_ms=model.network_time_ms(n_partitions, dissemination),
        compute_ms=model.compute_time_ms(comparisons),
    )
