"""Micro-benchmarks of the simulator's hot primitives.

``python -m repro.bench --json`` runs this suite and writes the timings
to ``BENCH_micro.json`` so the repository carries a machine-readable perf
trajectory alongside the Figure-1 series (``BENCH_fig1.json``).  The ops
mirror ``benchmarks/test_micro_ops.py`` but need no pytest-benchmark:
each op is timed with an adaptive ``perf_counter`` loop.

Two ops come in indexed/scan and batched/single pairs on purpose — the
ratio between the pair members is the measured payoff of the secondary
indexes and the batched verifier, and is emitted under ``"speedups"``.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable

from repro.core.config import StoreConfig
from repro.datasets.bible import bible_triples
from repro.overlay.hashing import CompositeKeyCodec
from repro.similarity.edit_distance import edit_distance_within
from repro.similarity.kernels import (
    MyersQuery,
    ReferenceKernel,
    numpy_available,
    resolve_kernel,
)
from repro.similarity.verify import BatchVerifier
from repro.storage.datastore import LocalDataStore
from repro.storage.indexing import EntryFactory
from repro.storage.qgrams import positional_qgrams, qgram_tuples

#: Schema tag embedded in ``BENCH_micro.json``.  v3 (additive over v2)
#: adds the bit-parallel kernel op pairs (``verify_batched_myers`` vs
#: ``verify_batched``, ``edit_distance_myers`` vs
#: ``edit_distance_banded``), their ``speedups`` entries, and a
#: ``kernels`` identity section; v2 added the ``cost_model`` accuracy
#: section; the v1 ``ops``/``speedups`` fields are unchanged throughout.
MICRO_SCHEMA = "repro-bench-micro/v3"

#: Corpus size feeding the micro fixtures (small; ops are microseconds).
MICRO_WORDS = 1500

#: Candidate pile size fed to the batched-verification ops.
MICRO_CANDIDATES = 4000

#: Edit-distance radius used by the verification ops.
MICRO_DISTANCE = 2

#: Corpus / network size of the cost-model accuracy fixture.
COST_MODEL_WORDS = 600
COST_MODEL_PEERS = 256

#: Similarity queries measured per distance by the accuracy fixture.
COST_MODEL_QUERIES_PER_D = 3


def _time_op(
    op: Callable[[], object], min_seconds: float = 0.05, max_rounds: int = 50
) -> dict[str, float]:
    """Adaptive timing: repeat ``op`` until ``min_seconds`` of runtime."""
    rounds = 0
    elapsed = 0.0
    best = float("inf")
    while elapsed < min_seconds and rounds < max_rounds:
        start = time.perf_counter()
        op()
        lap = time.perf_counter() - start
        elapsed += lap
        best = min(best, lap)
        rounds += 1
    mean = elapsed / rounds
    return {
        "seconds_per_call": mean,
        "best_seconds_per_call": best,
        "calls": rounds,
    }


def run_cost_model_accuracy(
    seed: int = 0,
    words: int = COST_MODEL_WORDS,
    peers: int = COST_MODEL_PEERS,
) -> dict[str, object]:
    """Predicted-vs-measured cost of the adaptive strategy model.

    Builds one mid-size network, collects statistics the way the
    adaptive replay does, then runs a small query mix under every fixed
    strategy while asking the :class:`~repro.query.cost.StrategyCostModel`
    for its predictions.  Reported per strategy: total predicted and
    measured messages plus their ratio; plus the fraction of queries
    where the model's pick measured within 2x of the best strategy (the
    adaptive mode's acceptance bound).
    """
    from repro.bench.experiment import ALL_STRATEGIES, build_network
    from repro.datasets.bible import TEXT_ATTRIBUTE
    from repro.engine import QueryEngine
    from repro.query.statistics import collect_statistics

    config = StoreConfig(
        seed=seed, index_values=False, index_schema_grams=False
    )
    corpus = bible_triples(words, seed=seed)
    strings = sorted({str(t.value) for t in corpus})
    network = build_network(corpus, peers, config)
    engine = QueryEngine(network)
    ctx = engine.context(strategy=ALL_STRATEGIES[0])
    catalog = collect_statistics(ctx, [TEXT_ATTRIBUTE])
    tracer = network.tracer

    rng = random.Random(seed)
    queries = [
        (rng.choice(strings), d)
        for d in (1, 2, 3)
        for __ in range(COST_MODEL_QUERIES_PER_D)
    ]
    predicted_total = {s.value: 0.0 for s in ALL_STRATEGIES}
    measured_total = {s.value: 0 for s in ALL_STRATEGIES}
    chosen_within_bound = 0
    from repro.query.operators.similar import similar as _similar

    for search, d in queries:
        predictions = engine.cost_model.predict_all(
            search, TEXT_ATTRIBUTE, d, catalog
        )
        measured: dict[str, int] = {}
        for strategy in ALL_STRATEGIES:
            before = tracer.snapshot()
            _similar(ctx, search, TEXT_ATTRIBUTE, d, strategy=strategy)
            measured[strategy.value] = before.delta(tracer.snapshot()).messages
            predicted_total[strategy.value] += predictions[strategy.value].messages
            measured_total[strategy.value] += measured[strategy.value]
        chosen = min(predictions, key=lambda key: predictions[key].messages)
        if measured[chosen] <= 2 * min(measured.values()):
            chosen_within_bound += 1
    return {
        "params": {
            "seed": seed,
            "words": words,
            "peers": peers,
            "queries": len(queries),
        },
        "per_strategy": {
            value: {
                "predicted_messages": round(predicted_total[value], 1),
                "measured_messages": measured_total[value],
                "predicted_over_measured": round(
                    predicted_total[value] / max(measured_total[value], 1), 3
                ),
            }
            for value in predicted_total
        },
        "chosen_within_2x_of_best": chosen_within_bound / len(queries),
    }


def run_micro(
    seed: int = 0,
    words_count: int = MICRO_WORDS,
    candidates_count: int = MICRO_CANDIDATES,
    cost_model_words: int = COST_MODEL_WORDS,
    cost_model_peers: int = COST_MODEL_PEERS,
) -> dict[str, object]:
    """Run every micro op; returns the ``BENCH_micro.json`` payload.

    The scale parameters exist for the CI kernel-parity smoke (which
    runs the suite once per forced ``REPRO_EDIT_KERNEL``); committed
    baselines always use the defaults.
    """
    config = StoreConfig(
        seed=seed, index_values=False, index_schema_grams=False
    )
    factory = EntryFactory(config, CompositeKeyCodec(config))
    triples = bible_triples(words_count, seed=seed)
    entries = list(factory.entries_for_all(triples))
    store = LocalDataStore()
    store.add_bulk(entries)

    rng = random.Random(seed)
    probe_keys = [rng.choice(entries).key for __ in range(2000)]
    words = sorted({str(t.value) for t in triples})
    # A candidate pile with natural repeats — what one query's final
    # verification actually sees across gram peers and replicas.
    candidates = [rng.choice(words) for __ in range(candidates_count)]
    query = rng.choice(words)
    title = "portrait of a young woman in blue near the mill after the rain"

    # The paired kernels: the historical banded DP (the always-available
    # reference) vs the runtime default Myers kernel (with the numpy
    # prefilter when importable) — pinned explicitly so the pair stays
    # meaningful whatever REPRO_EDIT_KERNEL says.
    reference_kernel = ReferenceKernel()
    myers_kernel = resolve_kernel("myers")

    def gram_lookup_indexed() -> int:
        return sum(len(store.lookup(key)) for key in probe_keys)

    def gram_lookup_scan() -> int:
        return sum(len(store.lookup_scan(key)) for key in probe_keys)

    # The batched ops time verification only (fresh verifier + one
    # ``distances`` pass); consuming the returned dict is caller-side
    # work identical in both pair members, so it stays outside the
    # timed region.
    def verify_batched() -> dict:
        verifier = BatchVerifier(query, MICRO_DISTANCE, kernel=reference_kernel)
        return verifier.distances(candidates)

    def verify_batched_myers() -> dict:
        verifier = BatchVerifier(query, MICRO_DISTANCE, kernel=myers_kernel)
        return verifier.distances(candidates)

    # The kernels must agree before their timings are worth recording.
    assert verify_batched() == verify_batched_myers()

    def verify_single() -> int:
        return sum(
            1
            for c in candidates
            if edit_distance_within(query, c, MICRO_DISTANCE) <= MICRO_DISTANCE
        )

    def tokenize_tuples() -> int:
        return sum(len(qgram_tuples(w, config.q)) for w in words[:500])

    def tokenize_dataclass() -> int:
        return sum(len(positional_qgrams(w, config.q)) for w in words[:500])

    def entry_generation() -> int:
        return sum(1 for t in triples[:300] for __ in factory.entries_for(t))

    def payload_total_cached() -> int:
        return store.total_payload_bytes()

    def edit_distance_banded() -> int:
        return edit_distance_within(title, "x" * len(title), 3)

    # Masks precompiled once, as the kernel uses them: one query's
    # MyersQuery serves thousands of candidate scans, so the amortized
    # per-candidate cost is the meaningful pair member.
    title_state = MyersQuery(title)

    def edit_distance_myers() -> int:
        return title_state.within("x" * len(title), 3)

    ops = {
        "gram_lookup_indexed": _time_op(gram_lookup_indexed),
        "gram_lookup_scan": _time_op(gram_lookup_scan),
        "verify_batched": _time_op(verify_batched),
        "verify_batched_myers": _time_op(verify_batched_myers),
        "verify_single": _time_op(verify_single),
        "tokenize_tuples": _time_op(tokenize_tuples),
        "tokenize_dataclass": _time_op(tokenize_dataclass),
        "entry_generation": _time_op(entry_generation),
        "payload_total_cached": _time_op(payload_total_cached),
        "edit_distance_banded": _time_op(edit_distance_banded),
        "edit_distance_myers": _time_op(edit_distance_myers),
    }

    def ratio(slow: str, fast: str) -> float:
        return ops[slow]["best_seconds_per_call"] / max(
            ops[fast]["best_seconds_per_call"], 1e-12
        )

    return {
        "schema": MICRO_SCHEMA,
        "params": {
            "seed": seed,
            "words": words_count,
            "entries": len(entries),
            "probe_keys": len(probe_keys),
            "candidates": len(candidates),
            "distance": MICRO_DISTANCE,
        },
        "kernels": {
            "default": resolve_kernel(None).name,
            "batched_pair": {
                "verify_batched": reference_kernel.name,
                "verify_batched_myers": myers_kernel.name,
            },
            "numpy_prefilter": numpy_available(),
        },
        "ops": ops,
        "cost_model": run_cost_model_accuracy(
            seed=seed, words=cost_model_words, peers=cost_model_peers
        ),
        "speedups": {
            "gram_lookup_indexed_vs_scan": ratio(
                "gram_lookup_scan", "gram_lookup_indexed"
            ),
            "verify_batched_vs_single": ratio("verify_single", "verify_batched"),
            "verify_myers_vs_batched": ratio(
                "verify_batched", "verify_batched_myers"
            ),
            "edit_distance_myers_vs_banded": ratio(
                "edit_distance_banded", "edit_distance_myers"
            ),
            "tokenize_tuples_vs_dataclass": ratio(
                "tokenize_dataclass", "tokenize_tuples"
            ),
        },
    }


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro.bench.micro`` — run the suite, write the baseline.

    The standalone entry point exists for the CI kernel-parity smoke:
    run once per forced ``REPRO_EDIT_KERNEL`` value, schema-check both
    outputs, and compare their measured message series (which must be
    kernel-independent).  ``--quick`` shrinks every fixture for CI;
    committed baselines use the defaults via ``python -m repro.bench
    --json``.
    """
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json-dir", default=None, help="write BENCH_micro.json here"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced-scale fixtures (CI smoke; numbers are meaningless)",
    )
    args = parser.parse_args(argv)
    kwargs: dict[str, int] = {"seed": args.seed}
    if args.quick:
        kwargs.update(
            words_count=400,
            candidates_count=1000,
            cost_model_words=200,
            cost_model_peers=64,
        )
    payload = run_micro(**kwargs)
    print(
        f"micro bench done: default kernel "
        f"{payload['kernels']['default']}, "
        f"verify speedup {payload['speedups']['verify_myers_vs_batched']:.2f}x"
    )
    if args.json_dir is not None:
        os.makedirs(args.json_dir, exist_ok=True)
        path = os.path.join(args.json_dir, "BENCH_micro.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
