"""Peer-count sweeps — the x-axis of Figure 1.

A sweep runs one experiment cell per peer count and collects, for every
strategy, the two series the paper plots: total messages and total data
volume of the whole workload.

Sweeps run on the incremental engine: one
:class:`~repro.overlay.incremental.IncrementalNetworkBuilder` (derived
from the sweep's shared :class:`~repro.bench.experiment.PreparedDataset`)
grows each cell's network from the trie-derivation state of the previous
cells instead of rebuilding from scratch, and each cell's workload runs
with whole-workload naive-broadcast memoization.  Both are equivalence-
preserving — measured message/byte series are bit-identical to a
from-scratch, unmemoized run — and ``REPRO_SWEEP_CHECK=1`` (or
``check_equivalence=True``) asserts the network equivalence per cell.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.storage.triple import Triple
from repro.bench.experiment import (
    ALL_STRATEGIES,
    CellResult,
    PreparedDataset,
    run_cell,
)

#: Default peer counts (log-spaced, scaled down from the paper's
#: 100..100000 so the default run finishes in minutes; see --full).
DEFAULT_PEER_COUNTS = (128, 512, 2048, 8192)

#: The paper's peer counts (log scale 100 .. 100000).
PAPER_PEER_COUNTS = (100, 1_000, 10_000, 100_000)

#: Environment variable that switches benchmarks to paper scale.
FULL_SCALE_ENV = "REPRO_FULL_SCALE"

#: Environment variable that turns on the per-cell incremental-vs-scratch
#: equivalence check (slow; the sweep engine's paranoia mode).
SWEEP_CHECK_ENV = "REPRO_SWEEP_CHECK"


def full_scale() -> bool:
    """True when the environment requests paper-scale runs."""
    return os.environ.get(FULL_SCALE_ENV, "") not in ("", "0", "false")


def sweep_check() -> bool:
    """True when the environment requests incremental equivalence checks."""
    return os.environ.get(SWEEP_CHECK_ENV, "") not in ("", "0", "false")


@dataclass
class SweepResult:
    """All cells of one dataset sweep."""

    dataset: str
    cells: list[CellResult] = field(default_factory=list)

    def peer_counts(self) -> list[int]:
        return [cell.n_peers for cell in self.cells]

    def message_series(self, strategy: SimilarityStrategy) -> list[int]:
        return [cell.messages(strategy) for cell in self.cells]

    def megabyte_series(self, strategy: SimilarityStrategy) -> list[float]:
        return [cell.megabytes(strategy) for cell in self.cells]


def sweep(
    dataset: str,
    triples: Sequence[Triple],
    attribute: str,
    strings: Sequence[str],
    peer_counts: Sequence[int] = DEFAULT_PEER_COUNTS,
    config: StoreConfig | None = None,
    repetitions: int = 40,
    strategies: Sequence[SimilarityStrategy] = ALL_STRATEGIES,
    progress: Callable[[str], None] | None = None,
    check_equivalence: bool | None = None,
    memoize_naive: bool = True,
    memoize_gram_scans: bool = True,
    memoize_fetches: bool = True,
    share_verifiers: bool = True,
    naive_sample_rate: float = 0.0,
) -> SweepResult:
    """Run the strategy comparison across peer counts.

    Entry derivation and the data-aware trie sample happen once, up
    front (:class:`PreparedDataset`); each cell's network is then grown
    by one shared incremental builder, and each cell's workload runs
    with the three cost-transparent accelerations (naive region memo,
    gram-scan memo, shared verifier pool) — each individually
    disableable so an acceleration can be validated against its own
    unaccelerated baseline.  ``check_equivalence`` (default: the
    ``REPRO_SWEEP_CHECK`` environment variable) re-builds every cell
    from scratch and asserts the incremental network is identical.
    ``naive_sample_rate`` > 0 opts into the sampled-broadcast estimator
    for the naive strategy (approximate series, flagged in the JSON);
    the default keeps every series exact.

    Including ``SimilarityStrategy.ADAPTIVE`` in ``strategies`` (e.g.
    :data:`~repro.bench.experiment.ALL_WITH_ADAPTIVE`) adds the
    cost-model-driven replay to every cell; it always runs last, so the
    fixed series stay bit-identical to an adaptive-free sweep.
    """
    result = SweepResult(dataset=dataset)
    config = config if config is not None else StoreConfig()
    prepared = PreparedDataset.prepare(triples, config)
    if check_equivalence is None:
        check_equivalence = sweep_check()
    builder = prepared.make_builder(check_equivalence=check_equivalence)
    for n_peers in peer_counts:
        if progress is not None:
            progress(f"{dataset}: {n_peers} peers ...")
        cell = run_cell(
            triples,
            attribute,
            strings,
            n_peers,
            config=config,
            repetitions=repetitions,
            strategies=strategies,
            prepared=prepared,
            builder=builder,
            memoize_naive=memoize_naive,
            memoize_gram_scans=memoize_gram_scans,
            memoize_fetches=memoize_fetches,
            share_verifiers=share_verifiers,
            naive_sample_rate=naive_sample_rate,
        )
        result.cells.append(cell)
        if progress is not None:
            parts = ", ".join(
                f"{s.value}={cell.messages(s)}" for s in strategies
            )
            progress(
                f"{dataset}: {n_peers} peers -> messages: {parts} "
                f"(build {cell.build_seconds:.1f}s)"
            )
    return result
