"""Peer-count sweeps — the x-axis of Figure 1.

A sweep runs one experiment cell per peer count and collects, for every
strategy, the two series the paper plots: total messages and total data
volume of the whole workload.

Sweeps run on the incremental engine: one
:class:`~repro.overlay.incremental.IncrementalNetworkBuilder` (derived
from the sweep's shared :class:`~repro.bench.experiment.PreparedDataset`)
grows each cell's network from the trie-derivation state of the previous
cells instead of rebuilding from scratch, and each cell's workload runs
with whole-workload naive-broadcast memoization.  Both are equivalence-
preserving — measured message/byte series are bit-identical to a
from-scratch, unmemoized run — and ``REPRO_SWEEP_CHECK=1`` (or
``check_equivalence=True``) asserts the network equivalence per cell.

Cells of one sweep are *independent*: every (dataset, peer count) pair
builds its own network from its own seed and replays its own workload,
so :class:`ParallelSweepRunner` can dispatch them to worker processes
(``jobs > 1``) and reassemble bit-identical series — the serial
:func:`run_sweep_job` path stays the property-tested reference.  The
parallel unit is the whole cell, never a single strategy: strategies
within a cell share the network's router RNG sequentially, and splitting
them would change the draw order and with it the measured series.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy, StoreConfig, env_flag
from repro.storage.triple import Triple
from repro.bench.experiment import (
    ALL_STRATEGIES,
    CellResult,
    PreparedDataset,
    run_cell,
)

#: Default peer counts (log-spaced, scaled down from the paper's
#: 100..100000 so the default run finishes in minutes; see --full).
DEFAULT_PEER_COUNTS = (128, 512, 2048, 8192)

#: The paper's peer counts (log scale 100 .. 100000).
PAPER_PEER_COUNTS = (100, 1_000, 10_000, 100_000)

#: Environment variable that switches benchmarks to paper scale.
FULL_SCALE_ENV = "REPRO_FULL_SCALE"

#: Environment variable that turns on the per-cell incremental-vs-scratch
#: equivalence check (slow; the sweep engine's paranoia mode).
SWEEP_CHECK_ENV = "REPRO_SWEEP_CHECK"


def full_scale() -> bool:
    """True when the environment requests paper-scale runs.

    Parsed with :func:`repro.core.config.env_flag`, so ``False``/``no``/
    ``off`` (any casing or whitespace) disable it and unrecognized
    values raise instead of silently enabling a 100 000-peer run.
    """
    return env_flag(FULL_SCALE_ENV)


def sweep_check() -> bool:
    """True when the environment requests incremental equivalence checks."""
    return env_flag(SWEEP_CHECK_ENV)


class SweepCellError(RuntimeError):
    """One sweep cell failed inside a worker process.

    Raised by the parallel runner with the *original* worker traceback
    embedded, so a failing cell aborts the sweep loudly (no silently
    missing series points) and debuggably.  Picklable by construction —
    ``__reduce__`` re-creates it from its three fields, which a plain
    multi-argument exception subclass would fail at when crossing the
    process boundary.
    """

    def __init__(self, dataset: str, n_peers: int | None, worker_traceback: str):
        self.dataset = dataset
        self.n_peers = n_peers
        self.worker_traceback = worker_traceback
        where = f"at {n_peers} peers" if n_peers is not None else "during setup"
        super().__init__(
            f"sweep cell of dataset {dataset!r} {where} failed in a "
            f"worker process; original traceback:\n{worker_traceback}"
        )

    def __reduce__(self):
        return (SweepCellError, (self.dataset, self.n_peers, self.worker_traceback))


@dataclass
class SweepResult:
    """All cells of one dataset sweep."""

    dataset: str
    cells: list[CellResult] = field(default_factory=list)
    #: Wall-clock seconds the whole sweep took, end to end.  Under the
    #: parallel runner this is bounded by the slowest worker chunk, not
    #: the sum of cells — the one number parallelism is allowed to
    #: change (measured message/byte series are bit-identical by
    #: construction and pinned by property tests).
    wall_seconds: float = 0.0

    def peer_counts(self) -> list[int]:
        return [cell.n_peers for cell in self.cells]

    def message_series(self, strategy: SimilarityStrategy) -> list[int]:
        return [cell.messages(strategy) for cell in self.cells]

    def megabyte_series(self, strategy: SimilarityStrategy) -> list[float]:
        return [cell.megabytes(strategy) for cell in self.cells]


@dataclass(frozen=True)
class SweepJob:
    """Everything one dataset sweep needs, in picklable form.

    The parallel runner ships jobs (with their :class:`PreparedDataset`
    embedded — entries and sample keys are plain data) to worker
    processes; the serial path runs the very same object through
    :func:`run_sweep_job`, so both modes consume one description.
    """

    dataset: str
    attribute: str
    strings: tuple[str, ...]
    peer_counts: tuple[int, ...]
    prepared: PreparedDataset
    repetitions: int = 40
    strategies: tuple[SimilarityStrategy, ...] = ALL_STRATEGIES
    check_equivalence: bool = False
    memoize_naive: bool = True
    memoize_gram_scans: bool = True
    memoize_fetches: bool = True
    share_verifiers: bool = True
    naive_sample_rate: float = 0.0
    #: Intra-cell fan-out threads (``QueryEngine(parallel_fanout=...)``);
    #: ``None`` keeps per-peer work serial inside each cell.
    parallel_fanout: int | None = None

    @classmethod
    def from_dataset(
        cls,
        dataset: str,
        triples: Sequence[Triple],
        attribute: str,
        strings: Sequence[str],
        peer_counts: Sequence[int] = DEFAULT_PEER_COUNTS,
        config: StoreConfig | None = None,
        **options,
    ) -> "SweepJob":
        """Prepare ``triples`` once and wrap the sweep description."""
        config = config if config is not None else StoreConfig()
        return cls(
            dataset=dataset,
            attribute=attribute,
            strings=tuple(strings),
            peer_counts=tuple(peer_counts),
            prepared=PreparedDataset.prepare(triples, config),
            **options,
        )

    def _run_cell(self, n_peers: int, builder) -> CellResult:
        return run_cell(
            (),
            self.attribute,
            self.strings,
            n_peers,
            config=self.prepared.config,
            repetitions=self.repetitions,
            strategies=self.strategies,
            prepared=self.prepared,
            builder=builder,
            memoize_naive=self.memoize_naive,
            memoize_gram_scans=self.memoize_gram_scans,
            memoize_fetches=self.memoize_fetches,
            share_verifiers=self.share_verifiers,
            naive_sample_rate=self.naive_sample_rate,
            parallel_fanout=self.parallel_fanout,
        )


def run_sweep_job(
    job: SweepJob,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Serial reference runner: one builder, cells in peer-count order.

    This is the path the parallel runner is property-tested against —
    its series define what "bit-identical" means for ``jobs > 1``.
    """
    started = time.perf_counter()
    result = SweepResult(dataset=job.dataset)
    builder = job.prepared.make_builder(check_equivalence=job.check_equivalence)
    for n_peers in job.peer_counts:
        if progress is not None:
            progress(f"{job.dataset}: {n_peers} peers ...")
        cell = job._run_cell(n_peers, builder)
        result.cells.append(cell)
        if progress is not None:
            progress(_cell_summary(job, cell))
    result.wall_seconds = time.perf_counter() - started
    return result


def _cell_summary(job: SweepJob, cell: CellResult) -> str:
    parts = ", ".join(
        f"{s.value}={cell.messages(s)}" for s in job.strategies
    )
    return (
        f"{job.dataset}: {cell.n_peers} peers -> messages: {parts} "
        f"(build {cell.build_seconds:.1f}s)"
    )


def _run_sweep_chunk(
    job: SweepJob, cell_indices: tuple[int, ...]
) -> list[tuple[int, CellResult]]:
    """Worker-process entry point: run one chunk of a job's cells.

    Each chunk gets its own :class:`IncrementalNetworkBuilder` (the trie
    count cache is per-process state) and its indices arrive in
    increasing peer-count order, so the builder only ever grows.  Any
    failure is re-raised as a picklable :class:`SweepCellError` carrying
    the full formatted traceback — the parent's view of a worker crash
    must never degrade to a bare, context-free exception.
    """
    n_peers: int | None = None
    try:
        builder = job.prepared.make_builder(
            check_equivalence=job.check_equivalence
        )
        chunk: list[tuple[int, CellResult]] = []
        for index in cell_indices:
            n_peers = job.peer_counts[index]
            chunk.append((index, job._run_cell(n_peers, builder)))
        return chunk
    except Exception:
        raise SweepCellError(
            job.dataset, n_peers, traceback.format_exc()
        ) from None


class ParallelSweepRunner:
    """Dispatch sweep cells to a process pool; reassemble exact series.

    Cells are partitioned into at most ``jobs`` chunks per dataset via
    ``indices[i::n_chunks]`` — every chunk sees *increasing* peer counts,
    so each worker's private incremental builder grows monotonically just
    like the serial sweep's.  Chunks from all submitted jobs share one
    pool, so a two-dataset sweep keeps every worker busy instead of
    draining dataset barriers.

    Failure semantics are loud by contract: the first failing chunk
    cancels everything still pending and re-raises its
    :class:`SweepCellError` (original worker traceback included); a
    sweep never returns with silently missing series points.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError(f"parallel sweep needs jobs >= 2, got {jobs}")
        self.jobs = jobs

    def run(
        self,
        sweep_jobs: Sequence[SweepJob],
        progress: Callable[[str], None] | None = None,
    ) -> list[SweepResult]:
        """Run every job's cells across the pool; results in job order."""
        started = time.perf_counter()
        results = [
            SweepResult(
                dataset=job.dataset,
                cells=[None] * len(job.peer_counts),  # type: ignore[list-item]
            )
            for job in sweep_jobs
        ]
        finished_at = [started] * len(sweep_jobs)
        tasks: list[tuple[int, tuple[int, ...]]] = []
        for job_index, job in enumerate(sweep_jobs):
            n_cells = len(job.peer_counts)
            n_chunks = min(self.jobs, n_cells)
            for i in range(n_chunks):
                tasks.append((job_index, tuple(range(i, n_cells, n_chunks))))
        if progress is not None:
            progress(
                f"parallel sweep: {len(tasks)} chunks across "
                f"{self.jobs} worker processes"
            )
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_run_sweep_chunk, sweep_jobs[job_index], chunk):
                    job_index
                for job_index, chunk in tasks
            }
            pending = set(futures)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                    for future in done:
                        job_index = futures[future]
                        for index, cell in future.result():
                            results[job_index].cells[index] = cell
                            if progress is not None:
                                progress(
                                    _cell_summary(sweep_jobs[job_index], cell)
                                )
                        finished_at[job_index] = time.perf_counter()
            except BaseException:
                # Loud failure: drop everything not yet running, let the
                # original (traceback-carrying) error propagate.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        for job_index, result in enumerate(results):
            result.wall_seconds = finished_at[job_index] - started
        return results


def sweep(
    dataset: str,
    triples: Sequence[Triple],
    attribute: str,
    strings: Sequence[str],
    peer_counts: Sequence[int] = DEFAULT_PEER_COUNTS,
    config: StoreConfig | None = None,
    repetitions: int = 40,
    strategies: Sequence[SimilarityStrategy] = ALL_STRATEGIES,
    progress: Callable[[str], None] | None = None,
    check_equivalence: bool | None = None,
    memoize_naive: bool = True,
    memoize_gram_scans: bool = True,
    memoize_fetches: bool = True,
    share_verifiers: bool = True,
    naive_sample_rate: float = 0.0,
    jobs: int = 1,
    parallel_fanout: int | None = None,
) -> SweepResult:
    """Run the strategy comparison across peer counts.

    Entry derivation and the data-aware trie sample happen once, up
    front (:class:`PreparedDataset`); each cell's network is then grown
    by an incremental builder, and each cell's workload runs with the
    three cost-transparent accelerations (naive region memo, gram-scan
    memo, shared verifier pool) — each individually disableable so an
    acceleration can be validated against its own unaccelerated
    baseline.  ``check_equivalence`` (default: the ``REPRO_SWEEP_CHECK``
    environment variable) re-builds every cell from scratch and asserts
    the incremental network is identical.  ``naive_sample_rate`` > 0
    opts into the sampled-broadcast estimator for the naive strategy
    (approximate series, flagged in the JSON); the default keeps every
    series exact.

    ``jobs > 1`` dispatches cells to a :class:`ParallelSweepRunner`
    process pool and ``parallel_fanout`` enables the intra-cell thread
    fan-out; both change wall-clock only — every measured series is
    bit-identical to the serial reference (property-tested).

    Including ``SimilarityStrategy.ADAPTIVE`` in ``strategies`` (e.g.
    :data:`~repro.bench.experiment.ALL_WITH_ADAPTIVE`) adds the
    cost-model-driven replay to every cell; it always runs last, so the
    fixed series stay bit-identical to an adaptive-free sweep.
    """
    if check_equivalence is None:
        check_equivalence = sweep_check()
    job = SweepJob.from_dataset(
        dataset,
        triples,
        attribute,
        strings,
        peer_counts=peer_counts,
        config=config,
        repetitions=repetitions,
        strategies=tuple(strategies),
        check_equivalence=check_equivalence,
        memoize_naive=memoize_naive,
        memoize_gram_scans=memoize_gram_scans,
        memoize_fetches=memoize_fetches,
        share_verifiers=share_verifiers,
        naive_sample_rate=naive_sample_rate,
        parallel_fanout=parallel_fanout,
    )
    if jobs > 1:
        return ParallelSweepRunner(jobs).run([job], progress)[0]
    return run_sweep_job(job, progress)
