"""Peer-count sweeps — the x-axis of Figure 1.

A sweep runs one experiment cell per peer count and collects, for every
strategy, the two series the paper plots: total messages and total data
volume of the whole workload.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.storage.triple import Triple
from repro.bench.experiment import (
    ALL_STRATEGIES,
    CellResult,
    PreparedDataset,
    run_cell,
)

#: Default peer counts (log-spaced, scaled down from the paper's
#: 100..100000 so the default run finishes in minutes; see --full).
DEFAULT_PEER_COUNTS = (128, 512, 2048, 8192)

#: The paper's peer counts (log scale 100 .. 100000).
PAPER_PEER_COUNTS = (100, 1_000, 10_000, 100_000)

#: Environment variable that switches benchmarks to paper scale.
FULL_SCALE_ENV = "REPRO_FULL_SCALE"


def full_scale() -> bool:
    """True when the environment requests paper-scale runs."""
    return os.environ.get(FULL_SCALE_ENV, "") not in ("", "0", "false")


@dataclass
class SweepResult:
    """All cells of one dataset sweep."""

    dataset: str
    cells: list[CellResult] = field(default_factory=list)

    def peer_counts(self) -> list[int]:
        return [cell.n_peers for cell in self.cells]

    def message_series(self, strategy: SimilarityStrategy) -> list[int]:
        return [cell.messages(strategy) for cell in self.cells]

    def megabyte_series(self, strategy: SimilarityStrategy) -> list[float]:
        return [cell.megabytes(strategy) for cell in self.cells]


def sweep(
    dataset: str,
    triples: Sequence[Triple],
    attribute: str,
    strings: Sequence[str],
    peer_counts: Sequence[int] = DEFAULT_PEER_COUNTS,
    config: StoreConfig | None = None,
    repetitions: int = 40,
    strategies: Sequence[SimilarityStrategy] = ALL_STRATEGIES,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run the strategy comparison across peer counts.

    Entry derivation and the data-aware trie sample happen once, up
    front (:class:`PreparedDataset`); each cell only re-places the
    prepared entries onto its own trie.
    """
    result = SweepResult(dataset=dataset)
    config = config if config is not None else StoreConfig()
    prepared = PreparedDataset.prepare(triples, config)
    for n_peers in peer_counts:
        if progress is not None:
            progress(f"{dataset}: {n_peers} peers ...")
        cell = run_cell(
            triples,
            attribute,
            strings,
            n_peers,
            config=config,
            repetitions=repetitions,
            strategies=strategies,
            prepared=prepared,
        )
        result.cells.append(cell)
        if progress is not None:
            parts = ", ".join(
                f"{s.value}={cell.messages(s)}" for s in strategies
            )
            progress(f"{dataset}: {n_peers} peers -> messages: {parts}")
    return result
