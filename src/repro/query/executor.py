"""Distributed VQL execution.

The :class:`Executor` walks a :class:`~repro.query.planner.QueryPlan`
step by step, producing variable bindings with the physical operators of
:mod:`repro.query.operators` — every network interaction those operators
perform is charged to the network's message tracer, so a query's cost
report falls out for free.

Execution model (Section 3: "finally generated query plans are included
in messages, which are routed to the processing peers"): one initiating
peer drives the plan; access steps run in the overlay, joins of collected
bindings happen at the initiator.

Rank-aware queries: when the planner promoted a step to ``TOP_N``, the
executor asks the top-N operator for ``offset + limit`` matches — and if
later joins or residual filters eliminate too many rows, it doubles the
fetch and re-runs (adaptive overfetch), so the push-down never loses
results that a full scan would have found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RankFunction
from repro.core.errors import ExecutionError
from repro.overlay.messages import CostReport
from repro.query.ast import (
    CompareOp,
    Comparison,
    Const,
    DistCall,
    SelectQuery,
    SortDirection,
    Term,
    Var,
)
from repro.query.bindings import BindingSet, Row
from repro.query.operators.base import MatchedObject, OperatorContext
from repro.query.operators.exact import scan_attribute, select_equals
from repro.query.operators.range_scan import numeric_similar, select_range
from repro.query.operators.similar import similar
from repro.query.operators.string_range import select_string_range
from repro.query.operators.topn import top_n_numeric, top_n_string_nn
from repro.query.planner import AccessMethod, PlanStep, QueryPlan, plan as build_plan
from repro.query.parser import parse
from repro.similarity.edit_distance import edit_distance, edit_distance_within
from repro.similarity.numeric import Interval
from repro.storage.triple import ValueType, is_numeric

#: Widest numeric interval used for one-sided range predicates.
_NUMERIC_EDGE = 1.7e308

#: Overfetch retries for the top-N push-down before giving up on it.
_TOP_N_RETRIES = 4

#: Hard cap for string NN deepening in ORDER BY ... NN queries.
_NN_MAX_DISTANCE = 5


@dataclass
class QueryResult:
    """Rows, cost, and provenance of one executed query."""

    rows: list[Row]
    plan: QueryPlan
    cost: CostReport
    bindings: BindingSet = field(repr=False, default_factory=BindingSet)

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, variable: str) -> list[ValueType]:
        """All values of one selected variable, in row order."""
        return [row[variable] for row in self.rows]


class Executor:
    """Executes VQL queries against a populated network."""

    def __init__(self, ctx: OperatorContext):
        self.ctx = ctx

    def execute_text(
        self, text: str, initiator_id: int | None = None, catalog=None
    ) -> QueryResult:
        """Parse, plan and execute VQL text."""
        return self.execute(parse(text), initiator_id, catalog)

    def execute(
        self, query: SelectQuery, initiator_id: int | None = None, catalog=None
    ) -> QueryResult:
        """Plan and execute a query AST.

        ``catalog`` (a :class:`~repro.query.statistics.StatisticsCatalog`)
        switches the planner to cost-based ordering; when omitted, the
        context's catalog (installed by
        :meth:`repro.engine.QueryEngine.analyze`) is used.
        """
        if catalog is None:
            catalog = self.ctx.catalog
        query_plan = build_plan(query, catalog)
        if initiator_id is None:
            initiator_id = self.ctx.random_initiator()
        decision_mark = len(self.ctx.decision_log)
        before = self.ctx.network.tracer.snapshot()
        bindings = self._run_with_overfetch(query_plan, initiator_id)
        rows = self._finalize(query, bindings)
        after = self.ctx.network.tracer.snapshot()
        cost = CostReport.from_delta(before, after)
        # Adaptive-mode strategy resolutions taken while this query ran.
        cost.decisions = list(self.ctx.decision_log[decision_mark:])
        return QueryResult(
            rows=rows,
            plan=query_plan,
            cost=cost,
            bindings=bindings,
        )

    # -- plan execution -----------------------------------------------------------

    def _run_with_overfetch(
        self, query_plan: QueryPlan, initiator_id: int
    ) -> BindingSet:
        query = query_plan.query
        needed = (query.limit or 0) + query.offset
        has_top_n = any(s.method is AccessMethod.TOP_N for s in query_plan.steps)
        fetch = max(needed, 1)
        for attempt in range(_TOP_N_RETRIES):
            exhausted: list[bool] = []
            bindings = self._run_plan(query_plan, initiator_id, fetch, exhausted)
            if not has_top_n:
                return bindings
            if len(bindings) >= needed or all(exhausted):
                return bindings
            fetch *= 4
        # Push-down kept starving: fall back to an exhaustive run by
        # treating the TOP_N step as a scan (correct, possibly expensive).
        downgraded = QueryPlan(
            query=query,
            steps=[
                PlanStep(s.pattern, AccessMethod.SCAN, cost_rank=s.cost_rank)
                if s.method is AccessMethod.TOP_N
                else s
                for s in query_plan.steps
            ],
            residual_filters=query_plan.residual_filters,
        )
        return self._run_plan(downgraded, initiator_id, fetch, [])

    def _run_plan(
        self,
        query_plan: QueryPlan,
        initiator_id: int,
        top_n_fetch: int,
        exhausted_out: list[bool],
    ) -> BindingSet:
        bindings = BindingSet.unit()
        pending_filters = list(query_plan.residual_filters)
        for step in query_plan.steps:
            if not bindings:
                return bindings
            bindings = self._execute_step(
                step, bindings, initiator_id, query_plan.query, top_n_fetch,
                exhausted_out,
            )
            bindings, pending_filters = self._apply_ready_filters(
                bindings, pending_filters
            )
        if pending_filters:
            unapplied = ", ".join(str(f) for f in pending_filters)
            raise ExecutionError(f"filters left unapplied: {unapplied}")
        return bindings

    def _apply_ready_filters(
        self, bindings: BindingSet, pending: list[Comparison]
    ) -> tuple[BindingSet, list[Comparison]]:
        bound = bindings.variables()
        still_pending: list[Comparison] = []
        for comparison in pending:
            if comparison.variables() <= bound:
                bindings = bindings.filter(
                    lambda row, c=comparison: _evaluate_filter(c, row)
                )
            else:
                still_pending.append(comparison)
        return bindings, still_pending

    # -- step dispatch ---------------------------------------------------------------

    def _execute_step(
        self,
        step: PlanStep,
        bindings: BindingSet,
        initiator_id: int,
        query: SelectQuery,
        top_n_fetch: int,
        exhausted_out: list[bool],
    ) -> BindingSet:
        method = step.method
        if method is AccessMethod.EXACT:
            produced = self._step_exact(step, initiator_id)
        elif method is AccessMethod.STRING_SIMILARITY:
            produced = self._step_string_similarity(step, initiator_id)
        elif method is AccessMethod.NUMERIC_SIMILARITY:
            produced = self._step_numeric_similarity(step, initiator_id)
        elif method is AccessMethod.SCHEMA_SIMILARITY:
            produced = self._step_schema_similarity(step, initiator_id)
        elif method is AccessMethod.RANGE:
            produced = self._step_range(step, initiator_id)
        elif method is AccessMethod.STRING_RANGE:
            produced = self._step_string_range(step, initiator_id)
        elif method is AccessMethod.SCAN:
            produced = self._step_scan(step, initiator_id)
        elif method is AccessMethod.TOP_N:
            produced = self._step_top_n(
                step, initiator_id, query, top_n_fetch, exhausted_out
            )
        elif method is AccessMethod.OID_JOIN:
            return self._step_oid_join(step, bindings, initiator_id)
        elif method is AccessMethod.SIMJOIN_PROBE:
            return self._step_simjoin_probe(step, bindings, initiator_id)
        else:  # pragma: no cover - enum is closed
            raise ExecutionError(f"unsupported access method {method}")
        return bindings.join(produced)

    # -- independent access steps -------------------------------------------------------

    def _step_exact(self, step: PlanStep, initiator_id: int) -> BindingSet:
        attribute = _const_str(step.pattern.predicate)
        value = step.pattern.object
        assert isinstance(value, Const)
        matches = select_equals(
            self.ctx, attribute, value.value, initiator_id, fetch_full_objects=False
        )
        rows = []
        for match in matches:
            row = _subject_row(step, match.oid)
            if row is not None:
                rows.append(row)
        return BindingSet(rows)

    def _step_string_similarity(self, step: PlanStep, initiator_id: int) -> BindingSet:
        spec = step.similarity
        assert spec is not None and spec.target is not None
        attribute = _const_str(step.pattern.predicate)
        result = similar(
            self.ctx, str(spec.target), attribute, spec.edit_limit, initiator_id
        )
        return self._rows_from_matches(
            step, result.matches, attribute, str(spec.target), spec.edit_limit
        )

    def _step_numeric_similarity(self, step: PlanStep, initiator_id: int) -> BindingSet:
        spec = step.similarity
        assert spec is not None and spec.target is not None
        attribute = _const_str(step.pattern.predicate)
        matches = numeric_similar(
            self.ctx,
            attribute,
            float(spec.target),  # type: ignore[arg-type]
            spec.numeric_limit,
            initiator_id,
            fetch_full_objects=False,
        )
        rows = []
        for match in matches:
            if spec.strict and match.distance >= spec.numeric_limit:
                continue
            row = _subject_row(step, match.oid)
            if row is None:
                continue
            row[_var_name(step.pattern.object)] = _numeric_value(match.matched)
            rows.append(row)
        return BindingSet(rows)

    def _step_schema_similarity(self, step: PlanStep, initiator_id: int) -> BindingSet:
        spec = step.similarity
        assert spec is not None and spec.target is not None
        result = similar(
            self.ctx, str(spec.target), "", spec.edit_limit, initiator_id
        )
        predicate_var = _var_name(step.pattern.predicate)
        object_term = step.pattern.object
        rows: list[Row] = []
        for match in result.matches:
            base = _subject_row(step, match.oid)
            if base is None:
                continue
            for triple in match.triples:
                distance = edit_distance_within(
                    str(spec.target), triple.attribute, spec.edit_limit
                )
                if distance > spec.edit_limit:
                    continue
                row = dict(base)
                row[predicate_var] = triple.attribute
                if isinstance(object_term, Var):
                    row[object_term.name] = triple.value
                elif triple.value != object_term.value:
                    continue
                rows.append(row)
        return BindingSet(rows)

    def _step_range(self, step: PlanStep, initiator_id: int) -> BindingSet:
        spec = step.range
        assert spec is not None
        attribute = _const_str(step.pattern.predicate)
        lo = spec.lower if spec.lower is not None else -_NUMERIC_EDGE
        hi = spec.upper if spec.upper is not None else _NUMERIC_EDGE
        triples = select_range(self.ctx, attribute, Interval(lo, hi), initiator_id)
        rows = []
        for triple in triples:
            if not spec.admits(float(triple.value)):
                continue
            row = _subject_row(step, triple.oid)
            if row is None:
                continue
            row[_var_name(step.pattern.object)] = triple.value
            rows.append(row)
        return BindingSet(rows)

    def _step_string_range(self, step: PlanStep, initiator_id: int) -> BindingSet:
        spec = step.string_range
        assert spec is not None
        attribute = _const_str(step.pattern.predicate)
        lo = spec.lower if spec.lower is not None else ""
        hi = spec.upper if spec.upper is not None else "\x7f"
        triples = select_string_range(
            self.ctx,
            attribute,
            lo,
            hi,
            initiator_id,
            lo_strict=spec.lower_strict,
            hi_strict=spec.upper_strict,
        )
        rows = []
        for triple in triples:
            row = _subject_row(step, triple.oid)
            if row is None:
                continue
            row[_var_name(step.pattern.object)] = triple.value
            rows.append(row)
        return BindingSet(rows)

    def _step_scan(self, step: PlanStep, initiator_id: int) -> BindingSet:
        attribute = _const_str(step.pattern.predicate)
        triples = scan_attribute(self.ctx, attribute, initiator_id)
        rows = []
        for triple in triples:
            row = _subject_row(step, triple.oid)
            if row is None:
                continue
            object_term = step.pattern.object
            if isinstance(object_term, Var):
                row[object_term.name] = triple.value
            elif triple.value != object_term.value:
                continue
            rows.append(row)
        return BindingSet(rows)

    def _step_top_n(
        self,
        step: PlanStep,
        initiator_id: int,
        query: SelectQuery,
        fetch: int,
        exhausted_out: list[bool],
    ) -> BindingSet:
        order = query.order_by
        assert order is not None
        attribute = _const_str(step.pattern.predicate)
        if order.is_nearest_neighbour:
            assert order.nn_target is not None
            target = order.nn_target.value
            if is_numeric(target):
                result = top_n_numeric(
                    self.ctx,
                    attribute,
                    fetch,
                    RankFunction.NN,
                    reference=float(target),
                    initiator_id=initiator_id,
                )
            else:
                result = top_n_string_nn(
                    self.ctx,
                    attribute,
                    str(target),
                    fetch,
                    max_distance=_NN_MAX_DISTANCE,
                    initiator_id=initiator_id,
                )
        else:
            rank = (
                RankFunction.MAX
                if order.direction is SortDirection.DESC
                else RankFunction.MIN
            )
            try:
                result = top_n_numeric(
                    self.ctx, attribute, fetch, rank, initiator_id=initiator_id
                )
            except ExecutionError:
                # MIN/MAX ranking is numeric-only (Algorithm 4); a string
                # attribute falls back to the exhaustive scan, which the
                # finalizer then sorts lexicographically.
                exhausted_out.append(True)
                return self._step_scan(
                    PlanStep(step.pattern, AccessMethod.SCAN), initiator_id
                )
        exhausted_out.append(len(result.matches) < fetch)
        rows = []
        for match in result.matches:
            row = _subject_row(step, match.oid)
            if row is None:
                continue
            value = match.value_of(attribute)
            if value is None:
                value = _numeric_value(match.matched)
            row[_var_name(step.pattern.object)] = value
            rows.append(row)
        return BindingSet(rows)

    # -- dependent (bind-join) steps ------------------------------------------------------

    def _step_oid_join(
        self, step: PlanStep, bindings: BindingSet, initiator_id: int
    ) -> BindingSet:
        subject = step.pattern.subject
        if isinstance(subject, Const):
            oids = [str(subject.value)]
            subject_var = None
        else:
            subject_var = subject.name
            oids = [str(v) for v in bindings.distinct_values(subject_var)]
        objects = self.ctx.fetch_objects(
            oids,
            delegating_peer_id=initiator_id,
            initiator_id=initiator_id,
            phase="oid_join",
        )

        def expand(row: Row):
            oid = str(subject.value) if subject_var is None else str(row[subject_var])
            for triple in objects.get(oid, ()):
                extension = _match_pattern_triple(step, triple, row)
                if extension is not None:
                    yield extension

        return bindings.extend_each(expand)

    def _step_simjoin_probe(
        self, step: PlanStep, bindings: BindingSet, initiator_id: int
    ) -> BindingSet:
        spec = step.similarity
        assert spec is not None and spec.partner_var is not None
        attribute = _const_str(step.pattern.predicate)
        partner = spec.partner_var
        probe_cache: dict[ValueType, list[tuple[str, ValueType]]] = {}
        for value in bindings.distinct_values(partner):
            probe_cache[value] = self._probe_similarity(
                attribute, value, spec, initiator_id
            )

        def expand(row: Row):
            for oid, matched in probe_cache.get(row[partner], ()):
                extension = _subject_row(step, oid)
                if extension is None:
                    continue
                object_term = step.pattern.object
                if isinstance(object_term, Var):
                    extension[object_term.name] = matched
                elif matched != object_term.value:
                    continue
                yield extension

        return bindings.extend_each(expand)

    def _probe_similarity(
        self, attribute: str, value: ValueType, spec, initiator_id: int
    ) -> list[tuple[str, ValueType]]:
        """One similarity probe of the join's right side."""
        pairs: list[tuple[str, ValueType]] = []
        if is_numeric(value):
            matches = numeric_similar(
                self.ctx,
                attribute,
                float(value),
                spec.numeric_limit,
                initiator_id,
                fetch_full_objects=False,
            )
            for match in matches:
                if spec.strict and match.distance >= spec.numeric_limit:
                    continue
                pairs.append((match.oid, _numeric_value(match.matched)))
        else:
            result = similar(
                self.ctx, str(value), attribute, spec.edit_limit, initiator_id
            )
            for match in result.matches:
                for triple in match.triples:
                    if triple.attribute != attribute:
                        continue
                    if not isinstance(triple.value, str):
                        continue
                    if edit_distance_within(
                        str(value), triple.value, spec.edit_limit
                    ) <= spec.edit_limit:
                        pairs.append((match.oid, triple.value))
        return pairs

    # -- helpers -------------------------------------------------------------------------

    def _rows_from_matches(
        self,
        step: PlanStep,
        matches: list[MatchedObject],
        attribute: str,
        target: str,
        limit: int,
    ) -> BindingSet:
        """Rows for a string-similarity step, one per qualifying value."""
        rows: list[Row] = []
        for match in matches:
            base = _subject_row(step, match.oid)
            if base is None:
                continue
            for triple in match.triples:
                if triple.attribute != attribute or not isinstance(triple.value, str):
                    continue
                if edit_distance_within(target, triple.value, limit) > limit:
                    continue
                row = dict(base)
                object_term = step.pattern.object
                if isinstance(object_term, Var):
                    row[object_term.name] = triple.value
                elif triple.value != object_term.value:
                    continue
                rows.append(row)
        return BindingSet(rows)

    # -- finalization ---------------------------------------------------------------------

    def _finalize(self, query: SelectQuery, bindings: BindingSet) -> list[Row]:
        rows = list(bindings)
        order = query.order_by
        if order is not None:
            name = order.variable.name
            if order.is_nearest_neighbour:
                assert order.nn_target is not None
                target = order.nn_target.value
                rows.sort(key=lambda row: (_distance(row[name], target), str(row[name])))
            else:
                reverse = order.direction is SortDirection.DESC
                rows.sort(key=lambda row: _sort_key(row[name]), reverse=reverse)
        if query.offset:
            rows = rows[query.offset :]
        if query.limit is not None:
            rows = rows[: query.limit]
        names = [v.name for v in query.select]
        return [{n: row[n] for n in names} for row in rows]


# -- module-level helpers ---------------------------------------------------------------


def _const_str(term: Term) -> str:
    if not isinstance(term, Const) or not isinstance(term.value, str):
        raise ExecutionError(f"expected a constant attribute, got {term}")
    return term.value


def _var_name(term: Term) -> str:
    if not isinstance(term, Var):
        raise ExecutionError(f"expected a variable, got {term}")
    return term.name


def _subject_row(step: PlanStep, oid: str) -> Row | None:
    """Base row binding the pattern's subject, or None on a const mismatch."""
    subject = step.pattern.subject
    if isinstance(subject, Const):
        return {} if str(subject.value) == oid else None
    return {subject.name: oid}


def _match_pattern_triple(step: PlanStep, triple, row: Row) -> Row | None:
    """Extensions contributed by one object triple for an OID_JOIN step."""
    extension: Row = {}
    predicate = step.pattern.predicate
    if isinstance(predicate, Const):
        if triple.attribute != predicate.value:
            return None
    else:
        bound = row.get(predicate.name)
        if bound is not None:
            if triple.attribute != bound:
                return None
        else:
            extension[predicate.name] = triple.attribute
    object_term = step.pattern.object
    if isinstance(object_term, Const):
        if triple.value != object_term.value:
            return None
    else:
        bound = row.get(object_term.name)
        if bound is not None:
            if triple.value != bound:
                return None
        else:
            extension[object_term.name] = triple.value
    return extension


def _numeric_value(text: str) -> ValueType:
    """Recover the numeric type from a stringified match value."""
    value = float(text)
    return int(value) if value.is_integer() else value


def _distance(a: ValueType, b: ValueType) -> float:
    if is_numeric(a) and is_numeric(b):
        return abs(float(a) - float(b))
    if isinstance(a, str) and isinstance(b, str):
        return float(edit_distance(a, b))
    raise ExecutionError(f"dist() between incompatible types: {a!r} vs {b!r}")


def _sort_key(value: ValueType):
    if is_numeric(value):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def _evaluate_filter(comparison: Comparison, row: Row) -> bool:
    left = _evaluate_operand(comparison.left, row)
    right = _evaluate_operand(comparison.right, row)
    op = comparison.op
    if op is CompareOp.EQ:
        return left == right
    if op is CompareOp.NE:
        return left != right
    if is_numeric(left) and is_numeric(right):
        lf, rf = float(left), float(right)
    elif isinstance(left, str) and isinstance(right, str):
        lf, rf = left, right  # type: ignore[assignment]
    else:
        raise ExecutionError(
            f"cannot compare {left!r} with {right!r} in {comparison}"
        )
    if op is CompareOp.LT:
        return lf < rf
    if op is CompareOp.LE:
        return lf <= rf
    if op is CompareOp.GT:
        return lf > rf
    return lf >= rf


def _evaluate_operand(operand, row: Row) -> ValueType:
    if isinstance(operand, Const):
        return operand.value
    if isinstance(operand, Var):
        return row[operand.name]
    if isinstance(operand, DistCall):
        left = _evaluate_operand(operand.left, row)
        right = _evaluate_operand(operand.right, row)
        return _distance(left, right)
    raise ExecutionError(f"cannot evaluate operand {operand!r}")
