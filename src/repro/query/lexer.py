"""VQL tokenizer.

Splits query text into a flat token stream for the recursive-descent
parser.  The token set mirrors the paper's examples: keywords, variables
(``?name``), identifiers (bare attribute names, possibly namespaced with
``:``), single-quoted strings, numbers, comparison operators and
punctuation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import VQLSyntaxError

KEYWORDS = frozenset(
    {"SELECT", "WHERE", "FILTER", "ORDER", "BY", "ASC", "DESC", "NN", "LIMIT", "OFFSET"}
)

#: Characters allowed inside bare identifiers.  ``:`` supports namespaces
#: (``car:price``), ``_``/``-``/``.`` common attribute spellings.
_IDENT_EXTRA = frozenset(":_-.")


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    VAR = "var"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    OP = "op"  # < <= > >= = !=
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.type.value}:{self.text!r}@{self.position}"


_PUNCT = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
}


def tokenize(text: str) -> list[Token]:
    """Turn VQL text into tokens; raises :class:`VQLSyntaxError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if ch in "<>!=":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(TokenType.OP, ch + "=", i))
                i += 2
            elif ch == "!":
                raise VQLSyntaxError("expected '=' after '!'", i)
            else:
                tokens.append(Token(TokenType.OP, ch, i))
                i += 1
            continue
        if ch == "'":
            tokens.append(_read_string(text, i))
            i += len(tokens[-1].text) + 2 + tokens[-1].text.count("'")
            continue
        if ch.isdigit() or (ch in "+-" and i + 1 < n and text[i + 1].isdigit()):
            token = _read_number(text, i)
            tokens.append(token)
            i += len(token.text)
            continue
        if ch == "?":
            token = _read_var(text, i)
            tokens.append(token)
            i += len(token.text) + 1
            continue
        if ch.isalpha() or ch == "_":
            token = _read_ident(text, i)
            tokens.append(token)
            i += len(token.text)
            continue
        raise VQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> Token:
    """Single-quoted string; a doubled quote ``''`` escapes a quote."""
    i = start + 1
    chars: list[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if i + 1 < len(text) and text[i + 1] == "'":
                chars.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(chars), start)
        chars.append(ch)
        i += 1
    raise VQLSyntaxError("unterminated string literal", start)


def _read_number(text: str, start: int) -> Token:
    i = start
    if text[i] in "+-":
        i += 1
    seen_dot = False
    while i < len(text) and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            # A trailing dot followed by a non-digit belongs to the next token.
            if i + 1 >= len(text) or not text[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    return Token(TokenType.NUMBER, text[start:i], start)


def _read_var(text: str, start: int) -> Token:
    i = start + 1
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    name = text[start + 1 : i]
    if not name:
        raise VQLSyntaxError("expected variable name after '?'", start)
    return Token(TokenType.VAR, name, start)


def _read_ident(text: str, start: int) -> Token:
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] in _IDENT_EXTRA):
        i += 1
    word = text[start:i]
    if word.upper() in KEYWORDS:
        return Token(TokenType.KEYWORD, word.upper(), start)
    return Token(TokenType.IDENT, word, start)
