"""Recursive-descent parser for VQL.

Grammar (conjunctive, matching the paper's examples)::

    query    := SELECT varlist WHERE '{' item+ '}' order? limit? offset?
    varlist  := VAR (',' VAR)*
    item     := pattern | filter
    pattern  := '(' term ',' term ',' term ')'
    filter   := FILTER '(' comparison ')'
    comparison := operand OP operand
    operand  := term | 'dist' '(' term ',' term ')'
    term     := VAR | STRING | NUMBER | IDENT
    order    := ORDER BY VAR (ASC | DESC)?  |  ORDER BY VAR NN literal
    limit    := LIMIT NUMBER
    offset   := OFFSET NUMBER

Bare identifiers in term position are string constants (attribute names
like ``name`` or ``car:price``); the special identifier ``dist`` is only a
function inside FILTER expressions.
"""

from __future__ import annotations

from repro.core.errors import VQLSyntaxError
from repro.query.ast import (
    CompareOp,
    Comparison,
    Const,
    DistCall,
    FilterOperand,
    OrderBy,
    SelectQuery,
    SortDirection,
    Term,
    TriplePattern,
    Var,
)
from repro.query.lexer import Token, TokenType, tokenize


def parse(text: str) -> SelectQuery:
    """Parse VQL text into a :class:`SelectQuery` AST."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, type: TokenType, text: str | None = None) -> Token:
        token = self._current
        if token.type is not type or (text is not None and token.text != text):
            wanted = text if text is not None else type.value
            raise VQLSyntaxError(
                f"expected {wanted!r}, found {token.text!r}", token.position
            )
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        token = self._current
        if token.type is TokenType.KEYWORD and token.text == word:
            self._advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        self._expect(TokenType.KEYWORD, "SELECT")
        select = self._parse_varlist()
        self._expect(TokenType.KEYWORD, "WHERE")
        self._expect(TokenType.LBRACE)
        patterns: list[TriplePattern] = []
        filters: list[Comparison] = []
        while self._current.type is not TokenType.RBRACE:
            if self._accept_keyword("FILTER"):
                self._expect(TokenType.LPAREN)
                filters.append(self._parse_comparison())
                self._expect(TokenType.RPAREN)
            elif self._current.type is TokenType.LPAREN:
                patterns.append(self._parse_pattern())
            else:
                raise VQLSyntaxError(
                    f"expected a triple pattern or FILTER, found "
                    f"{self._current.text!r}",
                    self._current.position,
                )
        self._expect(TokenType.RBRACE)
        order_by = self._parse_order()
        limit = self._parse_count("LIMIT")
        offset = self._parse_count("OFFSET") or 0
        self._expect(TokenType.EOF)
        return SelectQuery(
            select=tuple(select),
            patterns=tuple(patterns),
            filters=tuple(filters),
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_varlist(self) -> list[Var]:
        variables = [self._parse_var()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            variables.append(self._parse_var())
        return variables

    def _parse_var(self) -> Var:
        token = self._expect(TokenType.VAR)
        return Var(token.text)

    def _parse_pattern(self) -> TriplePattern:
        self._expect(TokenType.LPAREN)
        subject = self._parse_term()
        self._expect(TokenType.COMMA)
        predicate = self._parse_term()
        self._expect(TokenType.COMMA)
        object_ = self._parse_term()
        self._expect(TokenType.RPAREN)
        return TriplePattern(subject, predicate, object_)

    def _parse_term(self) -> Term:
        token = self._current
        if token.type is TokenType.VAR:
            self._advance()
            return Var(token.text)
        if token.type is TokenType.STRING:
            self._advance()
            return Const(token.text)
        if token.type is TokenType.NUMBER:
            self._advance()
            return Const(_number(token))
        if token.type is TokenType.IDENT:
            self._advance()
            return Const(token.text)
        raise VQLSyntaxError(
            f"expected a term, found {token.text!r}", token.position
        )

    def _parse_comparison(self) -> Comparison:
        left = self._parse_operand()
        op_token = self._expect(TokenType.OP)
        try:
            op = CompareOp(op_token.text)
        except ValueError:  # pragma: no cover - lexer only emits valid ops
            raise VQLSyntaxError(
                f"unknown operator {op_token.text!r}", op_token.position
            ) from None
        right = self._parse_operand()
        return Comparison(left, op, right)

    def _parse_operand(self) -> FilterOperand:
        token = self._current
        if token.type is TokenType.IDENT and token.text == "dist":
            self._advance()
            self._expect(TokenType.LPAREN)
            left = self._parse_term()
            self._expect(TokenType.COMMA)
            right = self._parse_term()
            self._expect(TokenType.RPAREN)
            return DistCall(left, right)
        return self._parse_term()

    def _parse_order(self) -> OrderBy | None:
        if not self._accept_keyword("ORDER"):
            return None
        self._expect(TokenType.KEYWORD, "BY")
        variable = self._parse_var()
        if self._accept_keyword("NN"):
            token = self._current
            if token.type is TokenType.STRING:
                self._advance()
                return OrderBy(variable, nn_target=Const(token.text))
            if token.type is TokenType.NUMBER:
                self._advance()
                return OrderBy(variable, nn_target=Const(_number(token)))
            raise VQLSyntaxError(
                "NN requires a literal target", token.position
            )
        if self._accept_keyword("DESC"):
            return OrderBy(variable, SortDirection.DESC)
        self._accept_keyword("ASC")
        return OrderBy(variable, SortDirection.ASC)

    def _parse_count(self, keyword: str) -> int | None:
        if not self._accept_keyword(keyword):
            return None
        token = self._expect(TokenType.NUMBER)
        value = _number(token)
        if not isinstance(value, int):
            raise VQLSyntaxError(f"{keyword} requires an integer", token.position)
        return value


def _number(token: Token) -> int | float:
    text = token.text
    if "." in text:
        return float(text)
    return int(text)
