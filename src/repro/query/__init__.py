"""VQL: language, planner, and distributed executor."""

from repro.query.ast import (
    CompareOp,
    Comparison,
    Const,
    DistCall,
    OrderBy,
    SelectQuery,
    SortDirection,
    TriplePattern,
    Var,
)
from repro.query.bindings import BindingSet
from repro.query.executor import Executor, QueryResult
from repro.query.parser import parse
from repro.query.planner import AccessMethod, PlanStep, QueryPlan, plan
from repro.query.statistics import (
    AttributeStatistics,
    StatisticsCatalog,
    collect_statistics,
)

__all__ = [
    "AccessMethod",
    "AttributeStatistics",
    "BindingSet",
    "CompareOp",
    "Comparison",
    "Const",
    "DistCall",
    "Executor",
    "OrderBy",
    "PlanStep",
    "QueryPlan",
    "QueryResult",
    "SelectQuery",
    "SortDirection",
    "StatisticsCatalog",
    "TriplePattern",
    "Var",
    "collect_statistics",
    "parse",
    "plan",
]
