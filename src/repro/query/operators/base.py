"""Shared machinery for physical operators.

An :class:`OperatorContext` bundles everything an operator needs to run
against a network — router, codec, configuration, strategy and RNG — plus
the two helpers every similarity operator ends with:

* :meth:`OperatorContext.fetch_objects` — reconstruct complete objects
  from their oids (the "build complete object o from T'" step of
  Algorithm 2), charging delegation and result messages;
* :class:`MatchedObject` — one result row: the reconstructed object, the
  string/value that matched, and its distance to the query.

The simulator enforces one discipline everywhere: a peer may only consult
*its own* store; any information that crosses peers is charged to the
tracer.  Gram entries deliberately do not expose the full source value to
the gram-owning peer (the paper stores ``(oid, A, q)``, not the value), so
final verification happens at the oid-owning peer, which legitimately
stores the object's complete triples.
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.core.errors import ExecutionError
from repro.overlay.network import PGridNetwork
from repro.overlay.routing import Router
from repro.similarity.filters import FilterConfig
from repro.similarity.kernels import EditKernel
from repro.similarity.verify import BatchVerifier, VerifierPool
from repro.storage.indexing import EntryKind
from repro.storage.triple import Triple, ValueType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overlay.fanout import FanOutExecutor
    from repro.query.cost import StrategyCostModel, StrategyDecision
    from repro.query.operators.naive import NaiveWorkloadMemo
    from repro.query.operators.similar import GramScanMemo
    from repro.query.statistics import StatisticsCatalog

#: Baseline size in bytes of a delegated query description (search string,
#: attribute, distance, query id).  Added to delegation payloads.
QUERY_HEADER_BYTES = 24


@dataclass(frozen=True)
class MatchedObject:
    """One similarity-query result.

    ``matched`` is the string (or attribute name, for schema-level queries)
    that satisfied the predicate; ``distance`` its distance to the query
    string; ``triples`` the complete reconstructed object.
    """

    oid: str
    matched: str
    distance: float
    triples: tuple[Triple, ...]

    def value_of(self, attribute: str) -> ValueType | None:
        """Value of ``attribute`` in this object, or None when absent."""
        for triple in self.triples:
            if triple.attribute == attribute:
                return triple.value
        return None

    def attributes(self) -> list[str]:
        """All attribute names of this object."""
        return sorted({t.attribute for t in self.triples})

    def payload_size(self) -> int:
        """Wire size of the complete object (result accounting)."""
        return sum(t.payload_size() for t in self.triples)


@dataclass
class OperatorContext:
    """Execution context shared by all physical operators."""

    network: PGridNetwork
    strategy: SimilarityStrategy | None = None
    filters: FilterConfig = field(default_factory=FilterConfig)
    rng: random.Random | None = None
    #: Whole-workload memo for the naive broadcast strategy (see
    #: :class:`repro.query.operators.naive.NaiveWorkloadMemo`).  ``None``
    #: disables memoization; message accounting is identical either way.
    naive_memo: "NaiveWorkloadMemo | None" = None
    #: Opt-in sampled-broadcast estimator rate for naive queries: 0 (the
    #: default) runs the exact broadcast; a rate in (0, 1) scans only
    #: ~``rate`` of the region's partitions and extrapolates the cost.
    naive_sample_rate: float = 0.0
    #: Shared verifier pool: operators that build their own
    #: :class:`~repro.similarity.verify.BatchVerifier` draw it from here
    #: instead, so repeated ``(query, d)`` pairs across queries — and
    #: across a benchmark cell's strategy replays — share one DP memo.
    #: Verification is deterministic, so sharing never changes results.
    verifier_pool: VerifierPool | None = None
    #: Edit-distance kernel for verifiers built *without* a pool (a pool
    #: carries its own kernel).  ``None`` resolves the process default
    #: (``REPRO_EDIT_KERNEL``); kernels change wall-clock only, never
    #: match sets, so this never affects results.
    edit_kernel: "EditKernel | str | None" = None
    #: Whole-workload memo for gram-peer candidate scans (see
    #: :class:`repro.query.operators.similar.GramScanMemo`).  ``None``
    #: disables it; like ``naive_memo``, valid only over static stores.
    gram_scan_memo: "GramScanMemo | None" = None
    #: Whole-workload memo for per-oid object reconstruction (see
    #: :class:`FetchObjectsMemo`).  ``None`` disables it; same
    #: static-store contract and version enforcement as the other memos.
    fetch_memo: "FetchObjectsMemo | None" = None
    #: Statistics catalog consulted by the cost-based planner and the
    #: adaptive strategy resolution.  ``None`` keeps both structural.
    catalog: "StatisticsCatalog | None" = None
    #: Cost model resolving ``SimilarityStrategy.ADAPTIVE``; created
    #: lazily on first adaptive query when not injected.
    cost_model: "StrategyCostModel | None" = None
    #: Every adaptive resolution taken through this context, in order.
    #: The executor and the workload runner attach slices of this log to
    #: the corresponding :class:`~repro.overlay.messages.CostReport`.
    decision_log: list = field(default_factory=list)
    #: Intra-query fan-out executor (see
    #: :class:`repro.overlay.fanout.FanOutExecutor`): per-peer delegate
    #: work — region comparisons, gram posting scans, broadcast query
    #: copies — runs on its thread pool with deterministic merging.
    #: ``None`` (the default) keeps the serial reference path; measured
    #: series are bit-identical either way (property-tested).
    fanout: "FanOutExecutor | None" = None

    def __post_init__(self) -> None:
        if self.strategy is None:
            self.strategy = self.network.config.strategy
        if self.rng is None:
            self.rng = random.Random(self.network.config.seed + 2)
        if self.filters is None:  # pragma: no cover - defensive
            self.filters = FilterConfig()

    @property
    def config(self) -> StoreConfig:
        return self.network.config

    @property
    def router(self) -> Router:
        return self.network.router

    @property
    def codec(self):
        return self.network.codec

    def random_initiator(self) -> int:
        """Pick a random online peer to initiate a query."""
        return self.network.random_peer_id(self.rng)

    def make_verifier(self, query: str, d: int) -> BatchVerifier:
        """A verifier for ``(query, d)`` — pooled when a pool is installed.

        The single construction point operators should use: pooled
        verifiers share memos (and the pool's kernel) across queries,
        pool-less ones still honour the context's ``edit_kernel``.
        """
        if self.verifier_pool is not None:
            return self.verifier_pool.get(query, d)
        return BatchVerifier(query, d, kernel=self.edit_kernel)

    # -- adaptive strategy resolution ---------------------------------------------

    def decide_strategy(self, s: str, attribute: str, d: int) -> "StrategyDecision":
        """Resolve ``ADAPTIVE`` for one query and record the decision.

        Builds a structural :class:`~repro.query.cost.StrategyCostModel`
        on first use when none was injected (the no-statistics fallback:
        predictions degrade to region-vs-gram-fan-out comparisons), and
        appends the decision to :attr:`decision_log` so cost reports can
        pick it up.
        """
        if self.cost_model is None:
            from repro.query.cost import StrategyCostModel

            self.cost_model = StrategyCostModel(self.network)
        decision = self.cost_model.choose(s, attribute, d, catalog=self.catalog)
        self.decision_log.append(decision)
        return decision

    # -- object reconstruction ---------------------------------------------------

    def reconstruct_object(
        self, peer, partition_index: int, key: str, oid: str
    ) -> tuple[Triple, ...]:
        """One oid peer's rebuild of a complete object (memoized when set)."""
        if self.fetch_memo is not None:
            return self.fetch_memo.triples_for(peer, partition_index, key, oid)
        return _rebuild_triples(peer, key, oid)

    def fetch_objects(
        self,
        oids: Iterable[str],
        delegating_peer_id: int,
        initiator_id: int,
        phase: str = "oid_lookup",
        query_bytes: int = QUERY_HEADER_BYTES,
        seen_partitions: set[tuple[int, str]] | None = None,
    ) -> dict[str, tuple[Triple, ...]]:
        """Reconstruct complete objects for ``oids``.

        Models the paper's delegated flow: the delegating peer routes one
        batched request to each oid-owning partition (shower-batched), and
        each oid peer returns the requested objects to the *initiator* in
        one result message.

        ``seen_partitions`` (a per-query memo of ``(partition, oid)``
        pairs) suppresses duplicate answers when several gram peers
        delegate the same oid — an oid peer recognizes a query id it has
        already served and stays silent.  Delegation messages themselves
        are still charged (the duplicate request does travel).
        """
        router = self.router
        unique_oids = sorted(set(oids))
        if not unique_oids:
            return {}
        key_to_oid = {self.codec.oid_key(oid): oid for oid in unique_oids}
        if len(key_to_oid) != len(unique_oids):
            raise ExecutionError("oid key collision — increase key_bits")
        answers = router.route_many(
            key_to_oid.keys(), delegating_peer_id, phase=phase
        )
        objects: dict[str, tuple[Triple, ...]] = {}
        by_peer: dict[int, list[str]] = defaultdict(list)
        for key, peer in answers.items():
            by_peer[peer.peer_id].append(key)
        for peer_id, keys in by_peer.items():
            peer = self.network.peer(peer_id)
            if not router.send_delegate(
                delegating_peer_id,
                peer_id,
                query_bytes + sum(len(key_to_oid[k]) for k in keys),
                phase=phase,
            ):
                # Delegation lost beyond retries (degraded mode): the oid
                # peer never learns of the request, so its whole batch of
                # candidates silently drops out of the result.
                router.record_dropped_candidates(len(keys))
                continue
            fresh_triples: list[Triple] = []
            fresh_oids: list[str] = []
            fresh_signatures: list[tuple[int, str]] = []
            for key in keys:
                oid = key_to_oid[key]
                partition = self.network.partition_for(key)
                triples = self.reconstruct_object(
                    peer, partition.index, key, oid
                )
                if not triples:
                    continue
                objects[oid] = triples
                if seen_partitions is not None:
                    signature = (partition.index, oid)
                    if signature in seen_partitions:
                        continue
                    seen_partitions.add(signature)
                    fresh_signatures.append(signature)
                fresh_oids.append(oid)
                fresh_triples.extend(triples)
            if fresh_triples:
                payload = sum(t.payload_size() for t in fresh_triples)
                if not router.send_result(
                    peer_id, initiator_id, payload, phase=phase
                ):
                    # Result message lost: the initiator never receives
                    # this batch.  Un-record it (including the duplicate
                    # suppression marks, so a later delegation of the
                    # same oids can answer) and count the drop.
                    for oid in fresh_oids:
                        objects.pop(oid, None)
                    if seen_partitions is not None:
                        seen_partitions.difference_update(fresh_signatures)
                    router.record_dropped_candidates(len(fresh_oids))
        return objects


def _rebuild_triples(peer, key: str, oid: str) -> tuple[Triple, ...]:
    """The complete-object rebuild an oid peer performs for one request."""
    return tuple(
        sorted(
            {
                e.triple
                for e in peer.store.lookup(key)
                if e.kind is EntryKind.OID and e.triple.oid == oid
            },
            key=lambda t: (t.attribute, str(t.value)),
        )
    )


class FetchObjectsMemo:
    """Whole-workload memo of per-oid object reconstruction.

    Every similarity strategy ends with the same step: oid peers rebuild
    complete objects from their ``key(oid)`` entries (Algorithm 2's
    "build complete object o from T'").  A benchmark workload requests
    the same oids over and over — top-N deepening rounds re-fetch every
    round's survivors, join probes re-fetch shared matches, and the
    q-gram strategies re-fetch per delegating gram peer — so the rebuild
    (a posting lookup plus a sorted dedup) is memoized per
    ``(partition, oid key)`` under the same static-store contract as
    :class:`~repro.query.operators.similar.GramScanMemo`:

    * outcomes are keyed per *partition* (replicas store identical data),
      so hits are independent of which replica answered;
    * every cached rebuild records the scanned store's mutation counter
      (:attr:`LocalDataStore.version
      <repro.storage.datastore.LocalDataStore>`) and recomputes when the
      contacted replica reports any other version — and the owning
      :class:`~repro.engine.QueryEngine` clears the memo outright when
      its network-wide mutation check trips;
    * it is *cost-transparent*: delegation and result messages are
      charged from the reconstructed triples, which are identical cached
      or not, so measured message/byte series do not change (pinned by
      tests).
    """

    def __init__(self, network):
        self.network = network
        self._cache: dict[tuple, tuple[int, tuple[Triple, ...]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def triples_for(
        self, peer, partition_index: int, key: str, oid: str
    ) -> tuple[Triple, ...]:
        """The object stored under ``key``, rebuilt once per partition."""
        signature = (partition_index, key, oid)
        cached = self._cache.get(signature)
        if cached is not None and cached[0] != peer.store.version:
            self.invalidations += 1
            cached = None
        if cached is None:
            self.misses += 1
            cached = (peer.store.version, _rebuild_triples(peer, key, oid))
            self._cache[signature] = cached
        else:
            self.hits += 1
        return cached[1]

    def clear(self) -> None:
        """Drop all cached rebuilds (call after any data mutation)."""
        self._cache.clear()

    def invalidate_partitions(self, partitions: "set[int]") -> int:
        """Drop cached rebuilds of the given partitions only.

        The delta-maintenance path of :class:`~repro.engine.QueryEngine`:
        a write that touched a known set of key partitions invalidates
        exactly those partitions' cached objects, and everything else
        survives.  Returns the number of entries dropped.
        """
        stale = [sig for sig in self._cache if sig[0] in partitions]
        for sig in stale:
            del self._cache[sig]
        self.invalidations += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._cache)


def object_from_triples(triples: Sequence[Triple]) -> dict[str, list[ValueType]]:
    """Group an object's triples into an ``attribute -> values`` mapping."""
    grouped: dict[str, list[ValueType]] = defaultdict(list)
    for triple in triples:
        grouped[triple.attribute].append(triple.value)
    return dict(grouped)
