"""Shared machinery for physical operators.

An :class:`OperatorContext` bundles everything an operator needs to run
against a network — router, codec, configuration, strategy and RNG — plus
the two helpers every similarity operator ends with:

* :meth:`OperatorContext.fetch_objects` — reconstruct complete objects
  from their oids (the "build complete object o from T'" step of
  Algorithm 2), charging delegation and result messages;
* :class:`MatchedObject` — one result row: the reconstructed object, the
  string/value that matched, and its distance to the query.

The simulator enforces one discipline everywhere: a peer may only consult
*its own* store; any information that crosses peers is charged to the
tracer.  Gram entries deliberately do not expose the full source value to
the gram-owning peer (the paper stores ``(oid, A, q)``, not the value), so
final verification happens at the oid-owning peer, which legitimately
stores the object's complete triples.
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.core.errors import ExecutionError
from repro.overlay.network import PGridNetwork
from repro.overlay.routing import Router
from repro.similarity.filters import FilterConfig
from repro.similarity.verify import VerifierPool
from repro.storage.indexing import EntryKind
from repro.storage.triple import Triple, ValueType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.operators.naive import NaiveWorkloadMemo
    from repro.query.operators.similar import GramScanMemo

#: Baseline size in bytes of a delegated query description (search string,
#: attribute, distance, query id).  Added to delegation payloads.
QUERY_HEADER_BYTES = 24


@dataclass(frozen=True)
class MatchedObject:
    """One similarity-query result.

    ``matched`` is the string (or attribute name, for schema-level queries)
    that satisfied the predicate; ``distance`` its distance to the query
    string; ``triples`` the complete reconstructed object.
    """

    oid: str
    matched: str
    distance: float
    triples: tuple[Triple, ...]

    def value_of(self, attribute: str) -> ValueType | None:
        """Value of ``attribute`` in this object, or None when absent."""
        for triple in self.triples:
            if triple.attribute == attribute:
                return triple.value
        return None

    def attributes(self) -> list[str]:
        """All attribute names of this object."""
        return sorted({t.attribute for t in self.triples})

    def payload_size(self) -> int:
        """Wire size of the complete object (result accounting)."""
        return sum(t.payload_size() for t in self.triples)


@dataclass
class OperatorContext:
    """Execution context shared by all physical operators."""

    network: PGridNetwork
    strategy: SimilarityStrategy | None = None
    filters: FilterConfig = field(default_factory=FilterConfig)
    rng: random.Random | None = None
    #: Whole-workload memo for the naive broadcast strategy (see
    #: :class:`repro.query.operators.naive.NaiveWorkloadMemo`).  ``None``
    #: disables memoization; message accounting is identical either way.
    naive_memo: "NaiveWorkloadMemo | None" = None
    #: Opt-in sampled-broadcast estimator rate for naive queries: 0 (the
    #: default) runs the exact broadcast; a rate in (0, 1) scans only
    #: ~``rate`` of the region's partitions and extrapolates the cost.
    naive_sample_rate: float = 0.0
    #: Shared verifier pool: operators that build their own
    #: :class:`~repro.similarity.verify.BatchVerifier` draw it from here
    #: instead, so repeated ``(query, d)`` pairs across queries — and
    #: across a benchmark cell's strategy replays — share one DP memo.
    #: Verification is deterministic, so sharing never changes results.
    verifier_pool: VerifierPool | None = None
    #: Whole-workload memo for gram-peer candidate scans (see
    #: :class:`repro.query.operators.similar.GramScanMemo`).  ``None``
    #: disables it; like ``naive_memo``, valid only over static stores.
    gram_scan_memo: "GramScanMemo | None" = None

    def __post_init__(self) -> None:
        if self.strategy is None:
            self.strategy = self.network.config.strategy
        if self.rng is None:
            self.rng = random.Random(self.network.config.seed + 2)
        if self.filters is None:  # pragma: no cover - defensive
            self.filters = FilterConfig()

    @property
    def config(self) -> StoreConfig:
        return self.network.config

    @property
    def router(self) -> Router:
        return self.network.router

    @property
    def codec(self):
        return self.network.codec

    def random_initiator(self) -> int:
        """Pick a random online peer to initiate a query."""
        return self.network.random_peer_id(self.rng)

    # -- object reconstruction ---------------------------------------------------

    def fetch_objects(
        self,
        oids: Iterable[str],
        delegating_peer_id: int,
        initiator_id: int,
        phase: str = "oid_lookup",
        query_bytes: int = QUERY_HEADER_BYTES,
        seen_partitions: set[tuple[int, str]] | None = None,
    ) -> dict[str, tuple[Triple, ...]]:
        """Reconstruct complete objects for ``oids``.

        Models the paper's delegated flow: the delegating peer routes one
        batched request to each oid-owning partition (shower-batched), and
        each oid peer returns the requested objects to the *initiator* in
        one result message.

        ``seen_partitions`` (a per-query memo of ``(partition, oid)``
        pairs) suppresses duplicate answers when several gram peers
        delegate the same oid — an oid peer recognizes a query id it has
        already served and stays silent.  Delegation messages themselves
        are still charged (the duplicate request does travel).
        """
        router = self.router
        unique_oids = sorted(set(oids))
        if not unique_oids:
            return {}
        key_to_oid = {self.codec.oid_key(oid): oid for oid in unique_oids}
        if len(key_to_oid) != len(unique_oids):
            raise ExecutionError("oid key collision — increase key_bits")
        answers = router.route_many(
            key_to_oid.keys(), delegating_peer_id, phase=phase
        )
        objects: dict[str, tuple[Triple, ...]] = {}
        by_peer: dict[int, list[str]] = defaultdict(list)
        for key, peer in answers.items():
            by_peer[peer.peer_id].append(key)
        for peer_id, keys in by_peer.items():
            peer = self.network.peer(peer_id)
            router.send_delegate(
                delegating_peer_id,
                peer_id,
                query_bytes + sum(len(key_to_oid[k]) for k in keys),
                phase=phase,
            )
            fresh_triples: list[Triple] = []
            for key in keys:
                oid = key_to_oid[key]
                entries = peer.store.lookup(key)
                triples = tuple(
                    sorted(
                        {
                            e.triple
                            for e in entries
                            if e.kind is EntryKind.OID and e.triple.oid == oid
                        },
                        key=lambda t: (t.attribute, str(t.value)),
                    )
                )
                if not triples:
                    continue
                objects[oid] = triples
                partition = self.network.partition_for(key)
                if seen_partitions is not None:
                    signature = (partition.index, oid)
                    if signature in seen_partitions:
                        continue
                    seen_partitions.add(signature)
                fresh_triples.extend(triples)
            if fresh_triples:
                payload = sum(t.payload_size() for t in fresh_triples)
                router.send_result(peer_id, initiator_id, payload, phase=phase)
        return objects


def object_from_triples(triples: Sequence[Triple]) -> dict[str, list[ValueType]]:
    """Group an object's triples into an ``attribute -> values`` mapping."""
    grouped: dict[str, list[ValueType]] = defaultdict(list)
    for triple in triples:
        grouped[triple.attribute].append(triple.value)
    return dict(grouped)
