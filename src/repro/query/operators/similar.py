"""``Similar(s, a, d, p)`` — Algorithm 2, the paper's core contribution.

Returns every object with an attribute-``a`` value (instance level) or an
attribute *name* (schema level, ``a = ""``) within edit distance ``d`` of
the search string ``s``.

Flow (with both optimizations the paper describes in Section 4):

1. the initiating peer decomposes ``s`` into q-grams — all overlapping
   grams (``QGRAM``) or a ``d+1`` non-overlapping q-sample (``QSAMPLE``);
2. the gram lookups are *batched*: every gram-owning partition is
   contacted once (shower-style ``route_many``), not once per gram;
3. each gram peer scans its gram entries, applies the position and length
   filters (line 8) locally, and *delegates* the surviving candidate oids
   to the oid-owning peers;
4. each oid peer rebuilds the complete object from its ``key(oid)``
   entries, runs the final edit-distance verification (line 23 — possible
   remotely because the delegated query carries ``s`` and ``d``), and
   sends true matches straight back to the initiator.

Completeness: a stored string within distance ``d`` always shares at least
one looked-up gram with compatible position/length (count bound for full
gram sets, the pigeonhole argument for q-samples), so no true match is
missed — property-tested against brute force in the test suite.
"""

from __future__ import annotations

import bisect
import threading
from collections import defaultdict
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.query.operators.base import (
    QUERY_HEADER_BYTES,
    MatchedObject,
    OperatorContext,
)
from repro.similarity.verify import BatchVerifier
from repro.storage.indexing import EntryKind, IndexEntry
from repro.storage.qgrams import (
    PositionalQGram,
    guaranteed_complete,
    positional_qgrams,
    qgram_sample,
)


@dataclass
class SimilarResult:
    """Matches plus the operator's internal tallies (for diagnostics)."""

    matches: list[MatchedObject]
    grams_looked_up: int = 0
    candidates_after_filters: int = 0
    candidates_verified: int = 0
    gram_partitions_contacted: int = 0
    duplicate_delegations: int = 0
    extras: dict[str, int] = field(default_factory=dict)


class GramScanMemo:
    """Whole-workload memo of gram-peer candidate scans.

    A gram peer's step-3 work — scan the posting list of one gram key,
    keep entries whose gram text/attribute match, admit those passing
    the position/length filters — is deterministic given the stored data
    and the query gram occurrences, and the filters are *threshold*
    tests: an entry is admitted at distance ``d`` iff ``d >=`` the
    entry's minimal admitting distance (the largest active position/
    length gap, minimized over the query gram's occurrences).  The memo
    therefore caches, per ``(partition, key, occurrences, filters)``
    signature, the posting entries sorted by that minimal distance;
    replaying any query distance is a bisect plus a slice, independent
    of how many postings the filters would have rejected.

    Like :class:`~repro.query.operators.naive.NaiveWorkloadMemo`, this
    is valid only while stores are unchanged (benchmark cells), is
    keyed per partition (replicas store identical data), and is
    *cost-transparent*: delegation/result messages do not depend on how
    candidates were computed, so measured series are bit-identical with
    the memo on or off.  The static-store contract is enforced: every
    cached scan records the store's mutation counter and is recomputed
    when the contacted replica reports any other version.

    Thread-safe for the intra-query fan-out: cache probes, inserts and
    counters are guarded by a lock, while the posting scan itself runs
    outside it (pure and deterministic — a racing duplicate compute is
    benign, and within one fanned-out batch distinct peers carry
    distinct partition signatures, so the hit/miss tallies stay exact).
    """

    def __init__(self, network):
        self.network = network
        self._cache: dict[tuple, tuple[int, list[int], list[str]]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def candidate_oids(
        self,
        peer,
        partition_index: int,
        key: str,
        occurrences: list[PositionalQGram],
        attribute: str,
        schema_level: bool,
        d: int,
        filters,
    ) -> list[str]:
        """Oids this gram peer delegates for one looked-up key at ``d``."""
        signature = (
            partition_index,
            key,
            attribute,
            schema_level,
            tuple((g.gram, g.position, g.source_length) for g in occurrences),
            filters.use_position,
            filters.use_length,
        )
        with self._lock:
            scan = self._cache.get(signature)
            if scan is not None and scan[0] != peer.store.version:
                self.invalidations += 1
                scan = None
            if scan is not None:
                self.hits += 1
        if scan is None:
            scan = self._scan(
                peer, key, occurrences, attribute, schema_level, filters
            )
            with self._lock:
                self.misses += 1
                self._cache[signature] = scan
        __, min_distances, oids = scan
        return oids[: bisect.bisect_right(min_distances, d)]

    def _scan(self, peer, key, occurrences, attribute, schema_level, filters):
        """Postings of ``key`` as (store version, sorted minimal
        distances, aligned oids)."""
        use_position = filters.use_position
        use_length = filters.use_length
        admitted: list[tuple[int, str]] = []
        for entry in peer.store.lookup(key):
            if not _entry_matches(entry, attribute, occurrences[0], schema_level):
                continue
            stored = _entry_gram(entry)
            minimal: int | None = None
            for occurrence in occurrences:
                needed = 0
                if use_position:
                    needed = abs(occurrence.position - stored.position)
                if use_length:
                    gap = abs(occurrence.source_length - stored.source_length)
                    if gap > needed:
                        needed = gap
                if minimal is None or needed < minimal:
                    minimal = needed
            if minimal is not None:
                admitted.append((minimal, entry.triple.oid))
        admitted.sort(key=lambda pair: pair[0])
        return (
            peer.store.version,
            [pair[0] for pair in admitted],
            [pair[1] for pair in admitted],
        )

    def clear(self) -> None:
        """Drop all cached scans (call after any data mutation)."""
        with self._lock:
            self._cache.clear()

    def invalidate_partitions(self, partitions: set[int]) -> int:
        """Drop cached scans of the given partitions only.

        Cache signatures lead with the partition index, so a write mapped
        to its affected key partitions (the engine's delta-maintenance
        path) surgically removes exactly the scans that write could have
        changed.  Returns the number of entries dropped.
        """
        with self._lock:
            stale = [sig for sig in self._cache if sig[0] in partitions]
            for sig in stale:
                del self._cache[sig]
            self.invalidations += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._cache)


def _gram_candidates(
    ctx: OperatorContext,
    peer,
    keys: list[str],
    gram_keys: dict[str, list[PositionalQGram]],
    attribute: str,
    schema_level: bool,
    d: int,
    scan_memo: GramScanMemo | None,
) -> set[str]:
    """One gram peer's step-3 scan: the oids it would delegate at ``d``.

    Pure per-peer work (read-only store scans, no tracer charges, no RNG
    draws) — the unit the intra-query fan-out dispatches to its thread
    pool, and the body the serial reference loop runs inline.
    """
    candidate_oids: set[str] = set()
    partition_index = (
        ctx.network.partition_for(peer.path).index
        if scan_memo is not None
        else -1
    )
    for key in keys:
        occurrences = gram_keys[key]
        if scan_memo is not None:
            candidate_oids.update(
                scan_memo.candidate_oids(
                    peer, partition_index, key, occurrences,
                    attribute, schema_level, d, ctx.filters,
                )
            )
            continue
        for entry in peer.store.lookup(key):
            if not _entry_matches(entry, attribute, occurrences[0], schema_level):
                continue
            stored = _entry_gram(entry)
            if not any(
                ctx.filters.admits(occurrence, stored, d)
                for occurrence in occurrences
            ):
                continue
            candidate_oids.add(entry.triple.oid)
    return candidate_oids


def similar(
    ctx: OperatorContext,
    s: str,
    attribute: str,
    d: int,
    initiator_id: int | None = None,
    strategy: SimilarityStrategy | None = None,
    verifier: BatchVerifier | None = None,
) -> SimilarResult:
    """Run ``Similar(s, a, d)`` from ``initiator_id``.

    ``attribute = ""`` switches to the schema level (the paper's
    ``a == ""`` branch, line 2): candidates are attribute names instead of
    values.  The strategy defaults to the context's configured one; the
    ``NAIVE`` baseline lives in :mod:`repro.query.operators.naive` and is
    dispatched transparently.  Callers running many probes for the same
    query (joins, iterative deepening) can pass a shared ``verifier`` so
    its memo survives across probes; it must be built for ``(s, d)``.
    """
    if d < 0:
        raise ExecutionError(f"similarity distance must be >= 0, got {d}")
    chosen = strategy if strategy is not None else ctx.strategy
    if chosen is SimilarityStrategy.ADAPTIVE:
        # Cost-based resolution: predict each physical strategy's cost,
        # dispatch the cheapest, and record predicted-vs-actual on the
        # decision (picked up by the executor's / workload's CostReport).
        decision = ctx.decide_strategy(s, attribute, d)
        tracer = ctx.network.tracer
        before = tracer.snapshot()
        result = similar(
            ctx, s, attribute, d, initiator_id,
            strategy=decision.chosen, verifier=verifier,
        )
        delta = before.delta(tracer.snapshot())
        decision.record_actual(delta.messages, delta.payload_bytes)
        result.extras["adaptive"] = 1
        return result
    outside_guarantee = not guaranteed_complete(len(s), ctx.config.q, d)
    if chosen is SimilarityStrategy.NAIVE or (
        ctx.config.strict_completeness and outside_guarantee
    ):
        from repro.query.operators.naive import naive_similar

        return naive_similar(ctx, s, attribute, d, initiator_id, verifier=verifier)
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    if verifier is None:
        verifier = ctx.make_verifier(s, d)

    schema_level = attribute == ""
    query_grams = _decompose(s, ctx.config.q, d, chosen)
    gram_keys = _gram_keys(ctx, attribute, query_grams, schema_level)

    # Step 2: batched routing — each gram partition contacted once.
    answers = ctx.router.route_many(gram_keys.keys(), initiator_id, phase="gram_lookup")
    result = SimilarResult(matches=[])
    result.grams_looked_up = len(query_grams)
    contacted: dict[int, list[str]] = defaultdict(list)
    for key, peer in answers.items():
        contacted[peer.peer_id].append(key)
    result.gram_partitions_contacted = len(contacted)

    # Step 3: per gram peer — local filtering, then delegation.  With a
    # workload memo installed, each (partition, key, occurrences) posting
    # scan is computed once and every later distance replays a bisect.
    scan_memo = ctx.gram_scan_memo
    peer_groups = sorted(contacted.items())

    # Fan-out mode: prescan every gram peer's candidates on the thread
    # pool (pure compute, stable peer-id order) before the serial
    # delegate/fetch/verify loop consumes them.  Disabled under an
    # *active* fault plan, where a lost delegation legitimately skips the
    # peer's scan; the serial inline scan is the reference path.
    fanout = ctx.fanout
    if fanout is not None and not ctx.router.faults_active():
        prescanned = fanout.map_ordered(
            lambda group: _gram_candidates(
                ctx, ctx.network.peer(group[0]), group[1], gram_keys,
                attribute, schema_level, d, scan_memo,
            ),
            peer_groups,
        )
    else:
        prescanned = None

    matches: dict[str, MatchedObject] = {}
    seen_partitions: set[tuple[int, str]] = set()
    all_delegated: set[str] = set()
    delegated_total = 0
    for group_index, (peer_id, keys) in enumerate(peer_groups):
        peer = ctx.network.peer(peer_id)
        if not ctx.router.send_delegate(
            initiator_id,
            peer_id,
            QUERY_HEADER_BYTES
            + sum(len(g.gram) for k in keys for g in gram_keys[k]),
            phase="gram_lookup",
        ):
            # Delegation lost beyond retries (degraded mode): this gram
            # peer never scans, so its keys contribute no candidates.
            ctx.router.record_dropped_candidates(len(keys))
            continue
        if prescanned is not None:
            candidate_oids = prescanned[group_index]
        else:
            candidate_oids = _gram_candidates(
                ctx, peer, keys, gram_keys, attribute, schema_level, d,
                scan_memo,
            )
        if not candidate_oids:
            continue
        result.candidates_after_filters += len(candidate_oids)
        delegated_total += len(candidate_oids)
        all_delegated.update(candidate_oids)
        objects = ctx.fetch_objects(
            candidate_oids,
            delegating_peer_id=peer_id,
            initiator_id=initiator_id,
            phase="oid_lookup",
            query_bytes=QUERY_HEADER_BYTES + len(s),
            seen_partitions=seen_partitions,
        )
        # Final verification (line 23), batched: every candidate string of
        # this delegation group goes through one shared-prefix DP pass.
        fresh = [
            (oid, triples)
            for oid, triples in objects.items()
            if oid not in matches
        ]
        verifier.distances(
            [
                candidate
                for __, triples in fresh
                for candidate in _candidate_strings(triples, attribute, schema_level)
            ]
        )
        for oid, triples in fresh:
            match = _verify(verifier, attribute, oid, triples, schema_level)
            result.candidates_verified += 1
            if match is not None:
                matches[oid] = match
    result.duplicate_delegations = delegated_total - len(all_delegated)
    result.matches = sorted(matches.values(), key=lambda m: (m.distance, m.oid))
    return result


def _decompose(
    s: str, q: int, d: int, strategy: SimilarityStrategy
) -> list[PositionalQGram]:
    if strategy is SimilarityStrategy.QGRAM:
        return positional_qgrams(s, q)
    if strategy is SimilarityStrategy.QSAMPLE:
        return qgram_sample(s, q, d)
    raise ExecutionError(f"unsupported gram strategy: {strategy}")


def _gram_keys(
    ctx: OperatorContext,
    attribute: str,
    grams: list[PositionalQGram],
    schema_level: bool,
) -> dict[str, list[PositionalQGram]]:
    """Map DHT keys to the query gram occurrence(s) they look up.

    A gram text occurring at several positions of ``s`` maps to a single
    key but keeps every position: the position filter admits a candidate
    if *any* occurrence is compatible — collapsing to one position could
    wrongly reject a true match and break the no-false-negative guarantee.
    """
    keys: dict[str, list[PositionalQGram]] = defaultdict(list)
    for gram in grams:
        if schema_level:
            key = ctx.codec.schema_gram_key(gram.gram)
        else:
            key = ctx.codec.attr_value_key(attribute, gram.gram)
        keys[key].append(gram)
    return dict(keys)


def _entry_matches(
    entry: IndexEntry,
    attribute: str,
    query_gram: PositionalQGram,
    schema_level: bool,
) -> bool:
    """Does a stored entry belong to this query's gram lookup?

    Composite keys can collide across attributes (the attribute prefix is
    truncated), so gram peers verify the entry's attribute and gram text —
    the paper's peers likewise "compare the queried string to the data
    available locally".
    """
    if schema_level:
        return entry.kind is EntryKind.SCHEMA_GRAM and entry.gram == query_gram.gram
    return (
        entry.kind is EntryKind.INSTANCE_GRAM
        and entry.gram == query_gram.gram
        and entry.triple.attribute == attribute
    )


def _entry_gram(entry: IndexEntry) -> PositionalQGram:
    """Positional gram view of a stored gram entry."""
    return PositionalQGram(entry.gram or "", entry.position, entry.source_length)


def _candidate_strings(
    triples: tuple, attribute: str, schema_level: bool
) -> Iterator[str]:
    """The strings one object submits to final verification, in order."""
    for triple in triples:
        if schema_level:
            yield triple.attribute
        elif triple.attribute == attribute and isinstance(triple.value, str):
            yield triple.value


def _verify(
    verifier: BatchVerifier,
    attribute: str,
    oid: str,
    triples: tuple,
    schema_level: bool,
) -> MatchedObject | None:
    """Final edit-distance verification at the oid peer (line 23)."""
    d = verifier.d
    best: tuple[int, str] | None = None
    for candidate in _candidate_strings(triples, attribute, schema_level):
        distance = verifier.distance(candidate)
        if distance <= d and (best is None or distance < best[0]):
            best = (distance, candidate)
    if best is None:
        return None
    return MatchedObject(oid=oid, matched=best[1], distance=best[0], triples=triples)
