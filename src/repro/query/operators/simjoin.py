"""``SimJoin(ln, rn, d, p)`` — the similarity join of Algorithm 3.

Joins objects whose ``ln`` attribute value is within edit distance ``d``
of some object's ``rn`` value.  Faithful to the paper's first version:
the left set is retrieved with one attribute scan and a separate
similarity selection runs *per left object* ("which should be optimized
in future variants" — the optimization, value-level caching, is available
behind ``cache_values=True``).

Variants:

* ``rn = ""`` — schema-level join: left values are matched against
  attribute *names* (the paper's typo-detection example);
* :func:`anchored_sim_join` — the evaluation workload's form: the left
  side is anchored at a concrete search string (its ``key(ln#s)``
  objects) instead of the whole column, keeping the cost of one query
  comparable to a top-N query (see DESIGN.md §4 on this interpretation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.query.operators.base import MatchedObject, OperatorContext
from repro.query.operators.exact import scan_attribute, select_equals
from repro.query.operators.similar import SimilarResult, similar
from repro.similarity.verify import VerifierPool
from repro.storage.triple import Triple


@dataclass
class JoinPair:
    """One joined pair: the left triple and the right matched object."""

    left: Triple
    right: MatchedObject

    @property
    def distance(self) -> float:
        return self.right.distance


@dataclass
class SimJoinResult:
    """Join output plus per-probe diagnostics."""

    pairs: list[JoinPair]
    left_size: int = 0
    probes: int = 0
    probe_results: list[SimilarResult] = field(default_factory=list)


def sim_join(
    ctx: OperatorContext,
    left_attribute: str,
    right_attribute: str,
    d: int,
    initiator_id: int | None = None,
    strategy: SimilarityStrategy | None = None,
    cache_values: bool = False,
) -> SimJoinResult:
    """Run Algorithm 3 over the full left column.

    ``right_attribute = ""`` performs the schema-level join.  An empty
    ``left_attribute`` (the paper notes it "represents a very expensive
    operation") is rejected here; anchor the left side explicitly instead.
    """
    if not left_attribute:
        raise ExecutionError(
            "unanchored left side is not supported — use anchored_sim_join "
            "or scan the relation explicitly"
        )
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    left = scan_attribute(ctx, left_attribute, initiator_id)
    return _probe_right(
        ctx, left, right_attribute, d, initiator_id, strategy, cache_values
    )


def anchored_sim_join(
    ctx: OperatorContext,
    left_attribute: str,
    search_string: str,
    right_attribute: str,
    d: int,
    initiator_id: int | None = None,
    strategy: SimilarityStrategy | None = None,
) -> SimJoinResult:
    """Workload variant: left side = objects with ``ln = search_string``."""
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    anchored = select_equals(
        ctx, left_attribute, search_string, initiator_id, fetch_full_objects=False
    )
    left = [
        triple
        for match in anchored
        for triple in match.triples
        if triple.attribute == left_attribute
    ]
    return _probe_right(
        ctx, left, right_attribute, d, initiator_id, strategy, cache_values=False
    )


def _probe_right(
    ctx: OperatorContext,
    left: list[Triple],
    right_attribute: str,
    d: int,
    initiator_id: int,
    strategy: SimilarityStrategy | None,
    cache_values: bool,
) -> SimJoinResult:
    """Lines 3–6 of Algorithm 3: one similarity selection per left object."""
    result = SimJoinResult(pairs=[], left_size=len(left))
    cache: dict[str, SimilarResult] = {}
    # Probes for the same left value share one verifier memo even when
    # whole-probe caching (``cache_values``) is off; a context-wide pool
    # extends that sharing across queries.
    verifiers = (
        ctx.verifier_pool if ctx.verifier_pool is not None else VerifierPool()
    )
    for triple in sorted(left, key=lambda t: (t.oid, str(t.value))):
        value = str(triple.value)
        if cache_values and value in cache:
            probe = cache[value]
        else:
            probe = similar(
                ctx,
                value,
                right_attribute,
                d,
                initiator_id,
                strategy=strategy,
                verifier=verifiers.get(value, d),
            )
            result.probes += 1
            result.probe_results.append(probe)
            if cache_values:
                cache[value] = probe
        for match in probe.matches:
            result.pairs.append(JoinPair(left=triple, right=match))
    return result
