"""Range selection — numeric similarity as a range query (Section 4).

``dist(x, v) <= d`` on a numeric attribute maps to the interval
``[v - d, v + d]``, which maps (order-preserving hash) to a composite-key
interval, which the overlay answers with a shower range query.  String
range selections (``lo <= value <= hi`` lexicographically) ride on the
same machinery.
"""

from __future__ import annotations

from repro.core.errors import ExecutionError
from repro.overlay.range_query import range_query
from repro.query.operators.base import MatchedObject, OperatorContext
from repro.similarity.numeric import Interval, absolute_distance
from repro.storage.indexing import EntryKind
from repro.storage.triple import Triple, is_numeric


def select_range(
    ctx: OperatorContext,
    attribute: str,
    interval: Interval,
    initiator_id: int | None = None,
) -> list[Triple]:
    """Triples with numeric ``attribute`` values inside ``interval``.

    The range query is over-inclusive at the key level (truncated hashes),
    so every returned value is re-checked against the interval locally at
    the serving peers.
    """
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    lo_key, hi_key = ctx.codec.attr_value_range(attribute, interval.lo, interval.hi)
    outcome = range_query(
        ctx.router, lo_key, hi_key, initiator_id, phase="range", collect_results=True
    )
    triples = [
        entry.triple
        for entry in outcome.entries
        if entry.kind is EntryKind.ATTR_VALUE
        and entry.triple.attribute == attribute
        and is_numeric(entry.triple.value)
        and interval.contains(float(entry.triple.value))
    ]
    return sorted(triples, key=lambda t: (float(t.value), t.oid))


def numeric_similar(
    ctx: OperatorContext,
    attribute: str,
    center: float,
    distance: float,
    initiator_id: int | None = None,
    fetch_full_objects: bool = True,
) -> list[MatchedObject]:
    """Numeric ``Similar``: values within ``distance`` of ``center``."""
    if distance < 0:
        raise ExecutionError(f"similarity distance must be >= 0, got {distance}")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    triples = select_range(
        ctx, attribute, Interval(center - distance, center + distance), initiator_id
    )
    if not fetch_full_objects:
        return [
            MatchedObject(
                t.oid, str(t.value), absolute_distance(float(t.value), center), (t,)
            )
            for t in triples
        ]
    objects = ctx.fetch_objects(
        {t.oid for t in triples},
        delegating_peer_id=initiator_id,
        initiator_id=initiator_id,
        phase="range",
    )
    matches = [
        MatchedObject(
            t.oid,
            str(t.value),
            absolute_distance(float(t.value), center),
            objects.get(t.oid, (t,)),
        )
        for t in triples
    ]
    return sorted(matches, key=lambda m: (m.distance, m.oid))
