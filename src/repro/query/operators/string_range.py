"""String range and prefix selections.

P-Grid's order-preserving hashing supports "exact and substring search
... and range queries on keys" (Section 2).  On the vertical scheme that
gives two more operators for free:

* :func:`select_string_range` — lexicographic ``lo <= value <= hi`` over
  one attribute, answered by a shower range query over the composite-key
  interval;
* :func:`select_prefix` — all values starting with a prefix (the classic
  P-Grid substring-by-prefix search): the prefix's cover is exactly the
  key interval ``[key(prefix), key(prefix + max_char)]``.

Both re-verify matches at the serving peers (truncated hashes are
over-inclusive, never lossy).
"""

from __future__ import annotations

from repro.core.errors import ExecutionError
from repro.overlay.range_query import range_query
from repro.query.operators.base import OperatorContext
from repro.storage.indexing import EntryKind
from repro.storage.triple import Triple

#: Character sorting above every character the hash alphabet knows —
#: closes a prefix's interval from above.
_TOP_CHAR = "\x7f"


def select_string_range(
    ctx: OperatorContext,
    attribute: str,
    lo: str,
    hi: str,
    initiator_id: int | None = None,
    lo_strict: bool = False,
    hi_strict: bool = False,
) -> list[Triple]:
    """Triples with string values in the lexicographic range ``[lo, hi]``."""
    if lo > hi:
        raise ExecutionError(f"empty string range [{lo!r}, {hi!r}]")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    lo_key, hi_key = ctx.codec.attr_string_range(attribute, lo, hi)
    outcome = range_query(
        ctx.router, lo_key, hi_key, initiator_id, phase="range",
        collect_results=True,
    )
    triples = []
    for entry in outcome.entries:
        if entry.kind is not EntryKind.ATTR_VALUE:
            continue
        if entry.triple.attribute != attribute:
            continue
        value = entry.triple.value
        if not isinstance(value, str):
            continue
        if value < lo or (lo_strict and value == lo):
            continue
        if value > hi or (hi_strict and value == hi):
            continue
        triples.append(entry.triple)
    return sorted(triples, key=lambda t: (str(t.value), t.oid))


def select_prefix(
    ctx: OperatorContext,
    attribute: str,
    prefix: str,
    initiator_id: int | None = None,
) -> list[Triple]:
    """Triples whose string value starts with ``prefix``.

    An empty prefix degenerates to the full attribute scan (every value
    starts with "").
    """
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    if not prefix:
        from repro.query.operators.exact import scan_attribute

        return scan_attribute(ctx, attribute, initiator_id)
    triples = select_string_range(
        ctx, attribute, prefix, prefix + _TOP_CHAR, initiator_id
    )
    return [t for t in triples if str(t.value).startswith(prefix)]
