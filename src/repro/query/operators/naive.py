"""The naive string-similarity baseline (Section 4).

"A naive approach to process string similarity is to send a query to each
peer which is responsible for a part of the strings to be compared.  The
contacted peers then compare the queried string to the data available
locally and send matching results back to the peer having initiated the
query."

Instance level: the strings to be compared are the values of attribute
``a``, i.e. every peer whose partition intersects the ``key(a#·)`` region.
Schema level: attribute names live in *every* stored triple, so the whole
network has to be contacted.

The broadcast itself scales linearly with the number of peers (the region
is a constant fraction of a load-balanced network) — the behaviour
Figure 1 shows for the ``strings`` curves.  After local comparison, the
matching peers return ``(oid, value)`` pairs and the initiator batch-
fetches the complete objects, so the final result is identical in shape
to the q-gram strategies'.
"""

from __future__ import annotations

from repro.core.errors import ExecutionError
from repro.query.operators.base import (
    QUERY_HEADER_BYTES,
    MatchedObject,
    OperatorContext,
)
from repro.query.operators.similar import SimilarResult
from repro.similarity.verify import BatchVerifier
from repro.storage.indexing import EntryKind


def naive_similar(
    ctx: OperatorContext,
    s: str,
    attribute: str,
    d: int,
    initiator_id: int | None = None,
    verifier: BatchVerifier | None = None,
) -> SimilarResult:
    """Run the naive broadcast variant of ``Similar(s, a, d)``."""
    if d < 0:
        raise ExecutionError(f"similarity distance must be >= 0, got {d}")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    if verifier is None:
        verifier = BatchVerifier(s, d)
    schema_level = attribute == ""

    # Broadcast the query into the region holding the compared strings.
    if schema_level:
        region_prefix = ""  # attribute names occur everywhere
    else:
        region_prefix = ctx.codec.attr_prefix(attribute)
    peers = ctx.router.multicast_prefix(
        region_prefix, initiator_id, phase="broadcast"
    )
    # The query string travels with every broadcast message; charge its
    # size once per contacted peer on top of the multicast accounting.
    for peer in peers:
        ctx.router.send_broadcast(
            initiator_id, peer.peer_id, QUERY_HEADER_BYTES + len(s), phase="broadcast"
        )

    # Local comparison at every contacted peer.  The kind view narrows the
    # scan to ``ATTR_VALUE`` entries (each value compared exactly once) —
    # instance level additionally bisects to the attribute's key region —
    # and the batched verifier shares DP work across every repeated value.
    result = SimilarResult(matches=[])
    hits: dict[str, tuple[int, str]] = {}
    local_comparisons = 0
    max_peer_comparisons = 0
    for peer in peers:
        matched_here: list[tuple[str, str, int]] = []
        compared: list[tuple[str, str]] = []
        local_entries = (
            peer.store.entries_of_kind(EntryKind.ATTR_VALUE)
            if schema_level
            else peer.store.entries_of_kind_prefix(
                EntryKind.ATTR_VALUE, region_prefix
            )
        )
        for entry in local_entries:
            candidate = _comparable_string(entry, attribute, schema_level)
            if candidate is None:
                continue
            compared.append((entry.triple.oid, candidate))
        local_comparisons += len(compared)
        distances = verifier.distances(candidate for __, candidate in compared)
        for oid, candidate in compared:
            distance = distances[candidate]
            if distance <= d:
                matched_here.append((oid, candidate, distance))
        max_peer_comparisons = max(max_peer_comparisons, len(compared))
        if matched_here:
            payload = sum(len(oid) + len(value) + 2 for oid, value, __ in matched_here)
            ctx.router.send_result(
                peer.peer_id, initiator_id, payload, phase="broadcast"
            )
            for oid, value, distance in matched_here:
                previous = hits.get(oid)
                if previous is None or distance < previous[0]:
                    hits[oid] = (distance, value)

    # The initiator reconstructs complete objects in one batched pass.
    objects = ctx.fetch_objects(
        hits.keys(),
        delegating_peer_id=initiator_id,
        initiator_id=initiator_id,
        phase="oid_lookup",
    )
    matches = []
    for oid, (distance, value) in hits.items():
        triples = objects.get(oid)
        if triples is None:
            continue
        matches.append(
            MatchedObject(oid=oid, matched=value, distance=distance, triples=triples)
        )
    result.matches = sorted(matches, key=lambda m: (m.distance, m.oid))
    result.candidates_after_filters = len(hits)
    result.candidates_verified = local_comparisons
    result.extras["region_peers"] = len(peers)
    result.extras["max_peer_comparisons"] = max_peer_comparisons
    return result


def _comparable_string(entry, attribute: str, schema_level: bool) -> str | None:
    """The string a naive region peer compares for one stored entry.

    Instance level compares each attribute value exactly once, via the
    ``ATTR_VALUE`` entry.  Schema level compares attribute names, also via
    ``ATTR_VALUE`` entries (every triple has one).
    """
    if entry.kind is not EntryKind.ATTR_VALUE:
        return None
    if schema_level:
        return entry.triple.attribute
    if entry.triple.attribute != attribute:
        return None
    value = entry.triple.value
    return value if isinstance(value, str) else None
