"""The naive string-similarity baseline (Section 4).

"A naive approach to process string similarity is to send a query to each
peer which is responsible for a part of the strings to be compared.  The
contacted peers then compare the queried string to the data available
locally and send matching results back to the peer having initiated the
query."

Instance level: the strings to be compared are the values of attribute
``a``, i.e. every peer whose partition intersects the ``key(a#·)`` region.
Schema level: attribute names live in *every* stored triple, so the whole
network has to be contacted.

The broadcast itself scales linearly with the number of peers (the region
is a constant fraction of a load-balanced network) — the behaviour
Figure 1 shows for the ``strings`` curves.  After local comparison, the
matching peers return ``(oid, value)`` pairs and the initiator batch-
fetches the complete objects, so the final result is identical in shape
to the q-gram strategies'.

Two sweep-scale accelerations live here, both cost-transparent by
construction:

* :class:`NaiveWorkloadMemo` — whole-workload memoization.  A workload
  replays the same ``(s, a, d)`` query many times (repeated search
  strings, iterative-deepening top-N rounds, join probes over equal
  values); the *local comparison outcome* of such a query depends only on
  the stored data, which is identical across a partition's replicas and
  constant during a benchmark cell.  The memo caches that outcome per
  partition and replays it, while the broadcast itself — routed entry,
  shower forwards, per-peer query copies, result returns — is still
  executed and charged for real, so the measured message and byte series
  are bit-identical with the memo on or off (pinned by tests).
* the **sampled-broadcast estimator** (``naive_sample_rate`` on the
  operator context) — opt-in, for paper-scale cells where even *touching*
  10⁵ peers per query dominates.  The structural broadcast cost (routed
  entry, one forward per further partition, one query copy per region
  peer) is charged exactly in O(1) bulk; local comparison runs on a
  deterministic stride sample of the region's partitions and the
  result-return / object-fetch cost is extrapolated from the sample.
  With the rate at 0 (the default) the estimator is bypassed entirely
  and no RNG draw or message differs from the exact path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ExecutionError
from repro.overlay.messages import MessageType
from repro.query.operators.base import (
    QUERY_HEADER_BYTES,
    MatchedObject,
    OperatorContext,
)
from repro.query.operators.similar import SimilarResult
from repro.similarity.verify import BatchVerifier
from repro.storage.indexing import EntryKind


@dataclass(frozen=True)
class RegionComparison:
    """The data-dependent outcome of one naive region's local comparisons.

    Everything here is a function of ``(s, attribute)``, the band, and
    the stored data only — independent of the initiating peer, of which
    replica of a partition was contacted, and of every RNG draw — which
    is exactly what makes it safely memoizable across a workload.

    ``by_partition`` keeps every compared string whose edit distance to
    ``s`` is at most ``band``; the matches for any query distance
    ``d <= band`` are the entries with ``distance <= d``.  Banded DP
    distances are exact within the band, so the filtered view is
    bit-identical to a dedicated ``BatchVerifier(s, d)`` pass.
    """

    #: Largest distance the stored entries are complete and exact for.
    band: int
    #: partition index -> ((oid, value, distance <= band), ...) in store order.
    by_partition: dict[int, tuple[tuple[str, str, int], ...]]
    #: Total strings compared across the region (``candidates_verified``).
    local_comparisons: int
    #: Largest number of comparisons any single peer performed.
    max_peer_comparisons: int
    #: partition index -> store mutation counter of the scanned replica.
    #: Replayed only while the contacted replicas still report these
    #: versions; any mismatch invalidates the cache entry.
    store_versions: dict[int, int]

    def matched_at(self, partition_index: int, d: int) -> list[tuple[str, str, int]]:
        """One partition's matches for a query distance ``d <= band``."""
        entries = self.by_partition.get(partition_index)
        if not entries:
            return []
        if d >= self.band:
            return list(entries)
        return [entry for entry in entries if entry[2] <= d]


class NaiveWorkloadMemo:
    """Whole-workload memo of naive-broadcast comparison outcomes.

    Keyed by ``(s, attribute)`` (plus the sampling stride when the
    estimator is active): one region comparison at ``band =
    max(d, band)`` serves *every* distance up to the band, so a top-N
    query's iterative-deepening rounds (``d = 0, 1, 2, ...`` over the
    same search string) and a join's repeated probes all reuse a single
    region scan.  The default band matches the workload's maximum top-N
    radius.

    Valid only while the network's stores are unchanged — benchmark
    cells satisfy this (bulk load, then a read-only workload) — and the
    contract is *enforced*: every cached outcome records the scanned
    stores' mutation counters (:attr:`LocalDataStore.version
    <repro.storage.datastore.LocalDataStore>`), and a replay whose
    contacted replicas report any other version recomputes instead of
    answering stale.  Replicas of a partition hold identical data, so
    outcomes are cached per *partition*, making hits independent of
    which replica a broadcast happens to contact.
    """

    #: Default distance band (the workload's ``TOP_N_MAX_DISTANCE``).
    DEFAULT_BAND = 5

    def __init__(self, network, band: int = DEFAULT_BAND):
        self.network = network
        self.band = band
        self._cache: dict[tuple, RegionComparison] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, key: tuple, d: int, contacted: list) -> RegionComparison | None:
        """A cached comparison valid for ``d`` and the contacted peers."""
        comparison = self._cache.get(key)
        if comparison is None or comparison.band < d:
            return None
        versions = comparison.store_versions
        for peer, partition_index in contacted:
            if versions.get(partition_index) != peer.store.version:
                del self._cache[key]
                self.invalidations += 1
                return None
        self.hits += 1
        return comparison

    def store(self, key: tuple, comparison: RegionComparison) -> None:
        self.misses += 1
        self._cache[key] = comparison

    def clear(self) -> None:
        """Drop all cached outcomes (call after any data mutation)."""
        self._cache.clear()

    def invalidate_partitions(self, partitions: set[int]) -> int:
        """Drop cached outcomes whose scanned region touches ``partitions``.

        A region comparison records the store version of every partition
        it scanned; a write mapped to its affected partitions invalidates
        exactly the comparisons that covered one of them — comparisons
        over other attributes' regions survive.  Returns the number of
        cached outcomes dropped.
        """
        stale = [
            key
            for key, comparison in self._cache.items()
            if not partitions.isdisjoint(comparison.store_versions)
        ]
        for key in stale:
            del self._cache[key]
        self.invalidations += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._cache)


def naive_similar(
    ctx: OperatorContext,
    s: str,
    attribute: str,
    d: int,
    initiator_id: int | None = None,
    verifier: BatchVerifier | None = None,
) -> SimilarResult:
    """Run the naive broadcast variant of ``Similar(s, a, d)``."""
    if d < 0:
        raise ExecutionError(f"similarity distance must be >= 0, got {d}")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    schema_level = attribute == ""

    # The region holding the compared strings.
    if schema_level:
        region_prefix = ""  # attribute names occur everywhere
    else:
        region_prefix = ctx.codec.attr_prefix(attribute)

    # Under an active fault injector the sampled estimator is bypassed
    # (its extrapolation assumes fault-free structural cost) and every
    # query copy is delivered individually with retry/failover.
    faulty = ctx.router.faults_active()
    rate = ctx.naive_sample_rate
    if 0.0 < rate < 1.0 and not faulty:
        return _sampled_naive_similar(
            ctx, s, attribute, d, initiator_id, verifier, region_prefix,
            schema_level, rate,
        )

    # Broadcast the query into the region (routed entry + shower forwards).
    tracer = ctx.router.tracer
    peers = ctx.router.multicast_prefix(
        region_prefix, initiator_id, phase="broadcast"
    )
    # The query string travels with every broadcast message; charge its
    # size once per contacted peer on top of the multicast accounting.
    if faulty:
        reached = []
        for peer in peers:
            receiver = ctx.router.send_broadcast_failover(
                initiator_id, peer, QUERY_HEADER_BYTES + len(s),
                phase="broadcast",
            )
            if receiver is not None:
                reached.append(receiver)
        peers = reached
    elif tracer.record_log:
        if ctx.fanout is not None:
            ctx.router.send_broadcast_fanout(
                initiator_id,
                peers,
                lambda peer: QUERY_HEADER_BYTES + len(s),
                ctx.fanout,
                phase="broadcast",
            )
        else:
            for peer in peers:
                ctx.router.send_broadcast(
                    initiator_id, peer.peer_id, QUERY_HEADER_BYTES + len(s),
                    phase="broadcast",
                )
    else:
        tracer.send_bulk(
            MessageType.BROADCAST,
            len(peers),
            len(peers) * (QUERY_HEADER_BYTES + len(s)),
            phase="broadcast",
        )

    contacted = _with_partition_indices(ctx, peers, region_prefix)

    # Local comparison at every contacted peer — computed once per
    # (s, a) region when a workload memo is installed (at the memo's
    # band, so every later distance replays it), recomputed otherwise.
    # A partial (degraded) contact list must never seed the region-wide
    # memo, and replaying a healthy outcome would hide the darkness, so
    # the memo is bypassed entirely while faults are active.
    memo = None if faulty else ctx.naive_memo
    memo_key = (s, attribute)
    comparison = (
        memo.lookup(memo_key, d, contacted) if memo is not None else None
    )
    if comparison is None:
        band = max(d, memo.band) if memo is not None else d
        comparison = _compare_region(
            contacted, s, attribute, band, schema_level, region_prefix,
            _region_verifier(ctx, s, d, band, verifier),
            fanout=None if faulty else ctx.fanout,
        )
        if memo is not None:
            memo.store(memo_key, comparison)

    # Matching peers return their (oid, value) pairs to the initiator.
    hits: dict[str, tuple[int, str]] = {}
    for peer, partition_index in contacted:
        matched_here = comparison.matched_at(partition_index, d)
        if not matched_here:
            continue
        payload = sum(len(oid) + len(value) + 2 for oid, value, __ in matched_here)
        if not ctx.router.send_result(
            peer.peer_id, initiator_id, payload, phase="broadcast"
        ):
            # Result return lost beyond retries (degraded mode): this
            # peer's matches never reach the initiator.
            ctx.router.record_dropped_candidates(len(matched_here))
            continue
        for oid, value, distance in matched_here:
            previous = hits.get(oid)
            if previous is None or distance < previous[0]:
                hits[oid] = (distance, value)

    result = _assemble_result(ctx, hits, initiator_id, comparison)
    result.extras["region_peers"] = len(peers)
    return result


def _with_partition_indices(ctx, peers, region_prefix: str) -> list:
    """Pair each contacted peer with its partition's index.

    ``multicast_prefix`` contacts exactly one replica per partition, in
    partition order, so the contacted list aligns with
    ``partitions_under(region_prefix)`` — an O(P) zip instead of one
    oracle bisection per peer.  Falls back to per-peer lookups if the
    alignment assumption ever breaks (defensive; it cannot under the
    current shower dissemination).
    """
    partitions = ctx.network.partitions_under(region_prefix)
    if len(partitions) == len(peers):
        return [
            (peer, partition.index)
            for peer, partition in zip(peers, partitions)
        ]
    partition_for = ctx.network.partition_for
    return [(peer, partition_for(peer.path).index) for peer in peers]


def _region_verifier(
    ctx: OperatorContext,
    s: str,
    d: int,
    band: int,
    verifier: BatchVerifier | None,
) -> BatchVerifier | None:
    """The verifier a region comparison should use.

    A caller-supplied verifier is only valid at its own distance; banded
    memo computes draw a ``(s, band)`` verifier from the context's shared
    pool when one is installed, and build a fresh one (on the context's
    kernel) otherwise.
    """
    if band == d and verifier is not None:
        return verifier
    return ctx.make_verifier(s, band)


def _compare_region(
    contacted: list,
    s: str,
    attribute: str,
    band: int,
    schema_level: bool,
    region_prefix: str,
    verifier: BatchVerifier | None,
    fanout=None,
) -> RegionComparison:
    """Compare ``s`` against every contacted peer's local strings.

    The kind view narrows each scan to ``ATTR_VALUE`` entries (each value
    compared exactly once) — instance level additionally bisects to the
    attribute's key region — and one region-wide pass through the batched
    verifier shares DP work across every repeated value.  ``verifier``,
    when given, must have been built for ``(s, band)``.

    With a :class:`~repro.overlay.fanout.FanOutExecutor` installed, the
    per-peer store scans (pure compute: no tracer charges, no RNG, one
    unit per peer store) run on the thread pool in contacted order; the
    shared verifier pass stays on the caller's thread either way.
    """
    if verifier is None:
        verifier = BatchVerifier(s, band)

    def scan_peer(item) -> tuple[int, int, list[tuple[str, str]]]:
        peer, partition_index = item
        compared: list[tuple[str, str]] = []
        local_entries = (
            peer.store.entries_of_kind(EntryKind.ATTR_VALUE)
            if schema_level
            else peer.store.entries_of_kind_prefix(
                EntryKind.ATTR_VALUE, region_prefix
            )
        )
        for entry in local_entries:
            candidate = _comparable_string(entry, attribute, schema_level)
            if candidate is None:
                continue
            compared.append((entry.triple.oid, candidate))
        return partition_index, peer.store.version, compared

    if fanout is not None:
        scans = fanout.map_ordered(scan_peer, contacted)
    else:
        scans = [scan_peer(item) for item in contacted]

    compared_by_partition: list[tuple[int, list[tuple[str, str]]]] = []
    store_versions: dict[int, int] = {}
    local_comparisons = 0
    max_peer_comparisons = 0
    for partition_index, store_version, compared in scans:
        store_versions[partition_index] = store_version
        local_comparisons += len(compared)
        max_peer_comparisons = max(max_peer_comparisons, len(compared))
        compared_by_partition.append((partition_index, compared))
    distances = verifier.distances(
        candidate
        for __, compared in compared_by_partition
        for __oid, candidate in compared
    )
    by_partition: dict[int, tuple[tuple[str, str, int], ...]] = {}
    for partition_index, compared in compared_by_partition:
        matched_here = tuple(
            (oid, candidate, distances[candidate])
            for oid, candidate in compared
            if distances[candidate] <= band
        )
        if matched_here:
            by_partition[partition_index] = matched_here
    return RegionComparison(
        band=band,
        by_partition=by_partition,
        local_comparisons=local_comparisons,
        max_peer_comparisons=max_peer_comparisons,
        store_versions=store_versions,
    )


def _assemble_result(
    ctx: OperatorContext,
    hits: dict[str, tuple[int, str]],
    initiator_id: int,
    comparison: RegionComparison,
) -> SimilarResult:
    """Batch-fetch complete objects and build the final result."""
    objects = ctx.fetch_objects(
        hits.keys(),
        delegating_peer_id=initiator_id,
        initiator_id=initiator_id,
        phase="oid_lookup",
    )
    matches = []
    for oid, (distance, value) in hits.items():
        triples = objects.get(oid)
        if triples is None:
            continue
        matches.append(
            MatchedObject(oid=oid, matched=value, distance=distance, triples=triples)
        )
    result = SimilarResult(matches=sorted(matches, key=lambda m: (m.distance, m.oid)))
    result.candidates_after_filters = len(hits)
    result.candidates_verified = comparison.local_comparisons
    result.extras["max_peer_comparisons"] = comparison.max_peer_comparisons
    return result


def _sampled_naive_similar(
    ctx: OperatorContext,
    s: str,
    attribute: str,
    d: int,
    initiator_id: int,
    verifier: BatchVerifier | None,
    region_prefix: str,
    schema_level: bool,
    rate: float,
) -> SimilarResult:
    """Opt-in estimator: sample the region instead of scanning all of it.

    The *structural* broadcast cost is exact and charged in O(1): the
    routed walk into the region runs for real, then one ``FORWARD`` per
    additional partition and one query copy per region peer are
    bulk-charged — these counts are fully determined by the region size.
    Local comparison runs only on every ``stride``-th partition (first
    online replica, deterministically — no RNG is consumed beyond the
    entry walk), and the data-dependent cost — result returns and the
    initiator's object fetch — is extrapolated from the sample.  Matches
    returned are those of the sampled partitions only: this mode
    estimates *cost series*, it does not answer queries exactly.
    """
    network = ctx.network
    tracer = ctx.router.tracer
    partitions = network.partitions_under(region_prefix)
    n_region = len(partitions)
    # Routed entry into the region (real routing, real hops).
    ctx.router.route(partitions[0].path, initiator_id, phase="broadcast")
    # Shower dissemination + per-peer query copies, bulk-charged exactly.
    tracer.send_bulk(MessageType.FORWARD, n_region - 1, 0, phase="broadcast")
    tracer.send_bulk(
        MessageType.BROADCAST,
        n_region,
        n_region * (QUERY_HEADER_BYTES + len(s)),
        phase="broadcast",
    )

    stride = max(1, round(1.0 / rate))
    sampled: list = []
    for index in range(0, n_region, stride):
        partition = partitions[index]
        for peer_id in partition.peer_ids:
            peer = network.peer(peer_id)
            if peer.online:
                sampled.append((peer, partition.index))
                break
    n_sampled = max(1, len(sampled))
    scale = n_region / n_sampled

    memo = ctx.naive_memo
    memo_key = (s, attribute, "sampled", stride)
    comparison = (
        memo.lookup(memo_key, d, sampled) if memo is not None else None
    )
    if comparison is None:
        band = max(d, memo.band) if memo is not None else d
        comparison = _compare_region(
            sampled, s, attribute, band, schema_level, region_prefix,
            _region_verifier(ctx, s, d, band, verifier),
            fanout=ctx.fanout,
        )
        if memo is not None:
            memo.store(memo_key, comparison)

    # Result returns, extrapolated from the sampled partitions.
    hits: dict[str, tuple[int, str]] = {}
    matched_partitions = 0
    result_payload = 0
    for __, partition_index in sampled:
        matched_here = comparison.matched_at(partition_index, d)
        if not matched_here:
            continue
        matched_partitions += 1
        result_payload += sum(
            len(oid) + len(value) + 2 for oid, value, __d in matched_here
        )
        for oid, value, distance in matched_here:
            previous = hits.get(oid)
            if previous is None or distance < previous[0]:
                hits[oid] = (distance, value)
    estimated_results = round(matched_partitions * scale)
    tracer.send_bulk(
        MessageType.RESULT,
        estimated_results,
        round(result_payload * scale),
        phase="broadcast",
    )

    # Object reconstruction: run it for real on the sampled hits, then
    # extrapolate the measured cost to the unsampled remainder.
    before = tracer.snapshot()
    result = _assemble_result(ctx, hits, initiator_id, comparison)
    delta = before.delta(tracer.snapshot())
    extra_factor = scale - 1.0
    if extra_factor > 0 and delta.messages:
        extra_bytes = round(delta.payload_bytes * extra_factor)
        for type_name, count in sorted(delta.by_type.items()):
            if count <= 0:
                continue
            extra = round(count * extra_factor)
            tracer.send_bulk(
                MessageType(type_name),
                extra,
                extra_bytes if type_name == MessageType.RESULT.value else 0,
                phase="oid_lookup",
            )

    result.extras["region_peers"] = n_region
    result.extras["sampled"] = 1
    result.extras["sampled_partitions"] = len(sampled)
    result.extras["sample_stride"] = stride
    result.extras["estimated_result_messages"] = estimated_results
    return result


def _comparable_string(entry, attribute: str, schema_level: bool) -> str | None:
    """The string a naive region peer compares for one stored entry.

    Instance level compares each attribute value exactly once, via the
    ``ATTR_VALUE`` entry.  Schema level compares attribute names, also via
    ``ATTR_VALUE`` entries (every triple has one).
    """
    if entry.kind is not EntryKind.ATTR_VALUE:
        return None
    if schema_level:
        return entry.triple.attribute
    if entry.triple.attribute != attribute:
        return None
    value = entry.triple.value
    return value if isinstance(value, str) else None
