"""Physical operators: exact, range, similarity, join, top-N."""

from repro.query.operators.base import (
    MatchedObject,
    OperatorContext,
    object_from_triples,
)
from repro.query.operators.exact import (
    equi_join,
    keyword_lookup,
    lookup_object,
    scan_attribute,
    select_equals,
)
from repro.query.operators.collected import similar_collected
from repro.query.operators.multiattr import (
    StringPredicate,
    euclidean_similar,
    similar_all,
)
from repro.query.operators.naive import naive_similar
from repro.query.operators.range_scan import numeric_similar, select_range
from repro.query.operators.similar import SimilarResult, similar
from repro.query.operators.string_range import select_prefix, select_string_range
from repro.query.operators.simjoin import (
    JoinPair,
    SimJoinResult,
    anchored_sim_join,
    sim_join,
)
from repro.query.operators.topn import (
    TopNResult,
    top_n_numeric,
    top_n_string_nn,
)

__all__ = [
    "JoinPair",
    "MatchedObject",
    "OperatorContext",
    "SimJoinResult",
    "SimilarResult",
    "StringPredicate",
    "TopNResult",
    "anchored_sim_join",
    "equi_join",
    "keyword_lookup",
    "lookup_object",
    "naive_similar",
    "numeric_similar",
    "object_from_triples",
    "scan_attribute",
    "select_equals",
    "select_prefix",
    "select_range",
    "select_string_range",
    "sim_join",
    "similar",
    "similar_all",
    "similar_collected",
    "euclidean_similar",
    "top_n_numeric",
    "top_n_string_nn",
]
