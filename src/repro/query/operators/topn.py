"""Top-N queries — Algorithms 4 and 5.

Numeric top-N (``MIN``/``MAX``/``NN``) probes the overlay with range
queries whose width is estimated from *local data density*: "we calculate
a first range to query based on the locally provided data density (which
is approximately equivalent to the data density on all other peers
because of load balancing)".  When a probe returns fewer than ``N``
objects, the window is re-estimated from the observed density and moved
(``MAX``/``MIN``) or symmetrically enlarged (``NN``) until at least ``N``
objects are found, then sorted and pruned (Algorithm 4 line 14).

String top-N — as the paper notes, only meaningful with ``NN`` — handles
"concrete distances instead of interval start and end points": the edit
distance radius ``d`` plays the role of the interval width and grows by
one per round (iterative deepening over ``Similar``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RankFunction, SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.overlay.messages import MessageType
from repro.query.operators.base import MatchedObject, OperatorContext
from repro.query.operators.range_scan import select_range
from repro.query.operators.similar import SimilarResult, similar
from repro.similarity.numeric import Interval, absolute_distance
from repro.storage.indexing import EntryKind
from repro.storage.triple import is_numeric

#: Upper bound on probing rounds; density re-estimation converges long
#: before this unless the attribute holds fewer than N values.
MAX_ROUNDS = 32


@dataclass
class TopNResult:
    """Ranked matches plus probing diagnostics."""

    matches: list[MatchedObject]
    rounds: int = 0
    probed_intervals: list[tuple[float, float]] = field(default_factory=list)
    probe_results: list[SimilarResult] = field(default_factory=list)

    @property
    def exhausted(self) -> bool:
        """True when probing stopped before finding N matches."""
        return self.rounds >= MAX_ROUNDS


def top_n_numeric(
    ctx: OperatorContext,
    attribute: str,
    n: int,
    rank: RankFunction,
    reference: float = 0.0,
    initiator_id: int | None = None,
    fetch_full_objects: bool = False,
) -> TopNResult:
    """Algorithm 4 on a numeric attribute.

    ``reference`` is the search value for ``NN`` ranking; it is ignored
    for ``MIN``/``MAX`` (those start from the attribute's extremes, which
    the initiator learns from its local slice or one extra probe).  With
    ``fetch_full_objects`` the final N matches are expanded into complete
    objects via batched oid lookups (Algorithm 4 returns oids; callers
    that project other attributes need the expansion).
    """
    if n < 1:
        raise ExecutionError(f"top-N needs N >= 1, got {n}")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    if rank is RankFunction.NN:
        result = _top_n_nn(ctx, attribute, n, reference, initiator_id)
    else:
        result = _top_n_extreme(ctx, attribute, n, rank, initiator_id)
    if fetch_full_objects and result.matches:
        objects = ctx.fetch_objects(
            [m.oid for m in result.matches],
            delegating_peer_id=initiator_id,
            initiator_id=initiator_id,
            phase="topn",
        )
        result.matches = [
            MatchedObject(m.oid, m.matched, m.distance, objects.get(m.oid, m.triples))
            for m in result.matches
        ]
    return result


def _probe_region_values(
    ctx: OperatorContext,
    attribute: str,
    initiator_id: int,
    from_top: bool = False,
) -> list[float]:
    """Route into the attribute's key region and find a peer with values.

    The region can span several partitions (the data-aware trie splits
    deeper than the attribute prefix), and skew can leave some of them
    without values of this attribute, so after the routed entry the probe
    walks neighbouring partitions — one charged ``FORWARD`` each — until
    it finds a non-empty slice.  ``from_top`` walks the region downwards
    (for ``MAX`` extremes) instead of upwards.
    """
    prefix = ctx.codec.attr_prefix(attribute)
    partitions = ctx.network.partitions_under(prefix)
    ordered = list(reversed(partitions)) if from_top else partitions
    entry_peer = ctx.router.route(ordered[0].path, initiator_id, phase="topn")
    previous = entry_peer
    for partition in ordered:
        if partition.contains(previous.peer_id):
            peer = previous
        else:
            peer = ctx.network.peer(partition.peer_ids[0])
            ctx.router.tracer.send(
                MessageType.FORWARD, previous.peer_id, peer.peer_id, phase="topn"
            )
            previous = peer
        values = _local_values(peer, attribute)
        if values:
            # The probe returns a density summary, not the raw values.
            ctx.router.send_result(peer.peer_id, initiator_id, 24, phase="topn")
            return values
    raise ExecutionError(f"attribute {attribute!r} holds no numeric values")


def _local_density(
    ctx: OperatorContext, attribute: str, initiator_id: int
) -> tuple[float, float]:
    """Lines 1–3: estimate values-per-unit density and the value spread.

    Uses the initiating peer's local slice of the attribute; when the
    initiator stores none of it, a routed probe (charged) asks peers
    inside the attribute's region — the paper's "we can initiate a proper
    query".  Returns ``(density, local_range_width)``.
    """
    peer = ctx.network.peer(initiator_id)
    values = _local_values(peer, attribute)
    if not values:
        values = _probe_region_values(ctx, attribute, initiator_id)
    spread = max(values) - min(values)
    if spread <= 0:
        spread = max(abs(values[0]), 1.0) * 1e-6
    return len(values) / spread, spread


def _local_values(peer, attribute: str) -> list[float]:
    return [
        float(entry.triple.value)
        for entry in peer.store.entries_of_kind(EntryKind.ATTR_VALUE)
        if entry.triple.attribute == attribute and is_numeric(entry.triple.value)
    ]


def _attribute_extreme(
    ctx: OperatorContext, attribute: str, rank: RankFunction, initiator_id: int
) -> float:
    """Largest (MAX) or smallest (MIN) stored value of the attribute.

    The order-preserving hash puts the extreme values on the region's
    boundary partitions, so the probe enters the region at the right end
    and walks inward until it finds values (Algorithm 4 line 5's "if this
    is not stored locally we can initiate a proper query").
    """
    values = _probe_region_values(
        ctx, attribute, initiator_id, from_top=rank is RankFunction.MAX
    )
    return max(values) if rank is RankFunction.MAX else min(values)


def _top_n_extreme(
    ctx: OperatorContext,
    attribute: str,
    n: int,
    rank: RankFunction,
    initiator_id: int | None,
) -> TopNResult:
    """MAX/MIN ranking: slide a density-sized window inward from the extreme."""
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    density, __ = _local_density(ctx, attribute, initiator_id)
    extreme = _attribute_extreme(ctx, attribute, rank, initiator_id)
    window = max(n / density, 1e-9)

    result = TopNResult(matches=[])
    collected: dict[str, MatchedObject] = {}
    if rank is RankFunction.MAX:
        hi = extreme
        lo = hi - window
    else:
        lo = extreme
        hi = lo + window
    while len(collected) < n and result.rounds < MAX_ROUNDS:
        result.rounds += 1
        result.probed_intervals.append((lo, hi))
        triples = select_range(ctx, attribute, Interval(lo, hi), initiator_id)
        for triple in triples:
            collected.setdefault(
                triple.oid,
                MatchedObject(
                    triple.oid, str(triple.value), float(triple.value), (triple,)
                ),
            )
        # Line 11: re-estimate the window from the observed density.
        observed = len(triples) / (hi - lo) if triples else density / 2
        missing = n - len(collected)
        if missing <= 0:
            break
        window = max(missing / max(observed, 1e-12), window)
        if rank is RankFunction.MAX:
            hi = lo
            lo = hi - window
        else:
            lo = hi
            hi = lo + window
    reverse = rank is RankFunction.MAX
    ranked = sorted(
        collected.values(), key=lambda m: (m.distance, m.oid), reverse=reverse
    )
    result.matches = ranked[:n]
    return result


def _top_n_nn(
    ctx: OperatorContext,
    attribute: str,
    n: int,
    reference: float,
    initiator_id: int | None,
) -> TopNResult:
    """NN ranking: grow a symmetric interval around the search value."""
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    density, __ = _local_density(ctx, attribute, initiator_id)
    window = max(n / density, 1e-9)

    result = TopNResult(matches=[])
    collected: dict[str, MatchedObject] = {}
    lo = reference - window / 2
    hi = reference + window / 2
    while result.rounds < MAX_ROUNDS:
        result.rounds += 1
        result.probed_intervals.append((lo, hi))
        triples = select_range(ctx, attribute, Interval(lo, hi), initiator_id)
        for triple in triples:
            collected.setdefault(
                triple.oid,
                MatchedObject(
                    triple.oid,
                    str(triple.value),
                    absolute_distance(float(triple.value), reference),
                    (triple,),
                ),
            )
        if len(collected) >= n:
            # All candidates at distance <= the covered radius are in; the
            # N nearest of them are final once the radius covers them.
            radius = min(reference - lo, hi - reference)
            ranked = sorted(collected.values(), key=lambda m: (m.distance, m.oid))
            if ranked[n - 1].distance <= radius:
                result.matches = ranked[:n]
                return result
        observed = len(triples) / (hi - lo) if triples else density / 2
        missing = max(n - len(collected), 1)
        growth = max(missing / max(observed, 1e-12), window / 2)
        lo -= growth / 2
        hi += growth / 2
    result.matches = sorted(collected.values(), key=lambda m: (m.distance, m.oid))[:n]
    return result


def top_n_string_nn(
    ctx: OperatorContext,
    attribute: str,
    search: str,
    n: int,
    max_distance: int = 5,
    initiator_id: int | None = None,
    strategy: SimilarityStrategy | None = None,
) -> TopNResult:
    """String nearest-neighbour top-N via iterative deepening on ``d``.

    Round ``i`` runs ``Similar(search, attribute, d=i)``; the radius grows
    until at least ``n`` matches exist or ``max_distance`` is reached —
    the paper's "handle concrete distances instead of interval start and
    end points".  Matches are ranked by edit distance (the ``ORDER BY ?a
    NN 'x'`` semantics), ties broken by oid.
    """
    if n < 1:
        raise ExecutionError(f"top-N needs N >= 1, got {n}")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    result = TopNResult(matches=[])
    best: dict[str, MatchedObject] = {}
    for d in range(max_distance + 1):
        result.rounds += 1
        probe = similar(ctx, search, attribute, d, initiator_id, strategy=strategy)
        result.probe_results.append(probe)
        for match in probe.matches:
            previous = best.get(match.oid)
            if previous is None or match.distance < previous.distance:
                best[match.oid] = match
        if len(best) >= n:
            break
    result.matches = sorted(best.values(), key=lambda m: (m.distance, m.oid))[:n]
    return result
