"""Multi-attribute similarity queries (Section 4, opening paragraph).

"Queries on multiple attributes can be handled, for instance, by
processing separate sub-queries and intersecting the results" — this
module implements exactly that composition:

* :func:`similar_all` — conjunctive multi-attribute string similarity:
  one ``Similar`` sub-query per (attribute, search string, d) predicate,
  intersected on oid;
* :func:`euclidean_similar` — multi-attribute numeric similarity under
  the Euclidean distance: the ball is covered by one range sub-query per
  dimension (its bounding box), intersected, then the exact Euclidean
  distance is verified on the surviving candidates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.config import SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.query.operators.base import MatchedObject, OperatorContext
from repro.query.operators.range_scan import select_range
from repro.query.operators.similar import similar
from repro.similarity.numeric import euclidean_box, euclidean_distance


@dataclass(frozen=True)
class StringPredicate:
    """One instance-level predicate: ``dist(attribute, search) <= d``."""

    attribute: str
    search: str
    d: int


def similar_all(
    ctx: OperatorContext,
    predicates: Sequence[StringPredicate],
    initiator_id: int | None = None,
    strategy: SimilarityStrategy | None = None,
) -> list[MatchedObject]:
    """Objects satisfying *all* string-similarity predicates.

    Sub-queries run in ascending selectivity order (smallest ``d`` first)
    so the intersection shrinks early; each sub-query is a full
    ``Similar`` and its cost is charged normally.  Returned matches carry
    the first predicate's matched value and distance.
    """
    if not predicates:
        raise ExecutionError("similar_all needs at least one predicate")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    ordered = sorted(predicates, key=lambda p: (p.d, p.attribute))
    surviving: dict[str, MatchedObject] | None = None
    for predicate in ordered:
        result = similar(
            ctx,
            predicate.search,
            predicate.attribute,
            predicate.d,
            initiator_id,
            strategy=strategy,
        )
        found = {m.oid: m for m in result.matches}
        if surviving is None:
            surviving = found
        else:
            surviving = {
                oid: match for oid, match in surviving.items() if oid in found
            }
        if not surviving:
            return []
    assert surviving is not None
    return sorted(surviving.values(), key=lambda m: (m.distance, m.oid))


def euclidean_similar(
    ctx: OperatorContext,
    attributes: Sequence[str],
    center: Sequence[float],
    distance: float,
    initiator_id: int | None = None,
) -> list[MatchedObject]:
    """Objects whose attribute vector lies within Euclidean ``distance``.

    One range sub-query per dimension covers the ball's bounding box;
    candidates present in every dimension are fetched and the exact
    Euclidean distance is verified — the box is over-inclusive, never
    lossy (see :func:`repro.similarity.numeric.euclidean_box`).
    """
    if len(attributes) != len(center):
        raise ExecutionError(
            f"{len(attributes)} attributes vs {len(center)}-dimensional center"
        )
    if not attributes:
        raise ExecutionError("euclidean_similar needs at least one attribute")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    box = euclidean_box(center, distance)
    candidate_values: dict[str, dict[str, float]] = {}
    for attribute, interval in zip(attributes, box):
        triples = select_range(ctx, attribute, interval, initiator_id)
        dimension_hits = {t.oid: float(t.value) for t in triples}
        if not candidate_values:
            candidate_values = {
                oid: {attribute: value} for oid, value in dimension_hits.items()
            }
        else:
            candidate_values = {
                oid: {**values, attribute: dimension_hits[oid]}
                for oid, values in candidate_values.items()
                if oid in dimension_hits
            }
        if not candidate_values:
            return []

    objects = ctx.fetch_objects(
        candidate_values.keys(),
        delegating_peer_id=initiator_id,
        initiator_id=initiator_id,
        phase="range",
    )
    matches = []
    for oid, values in candidate_values.items():
        vector = [values[a] for a in attributes]
        actual = euclidean_distance(vector, center)
        if actual <= distance:
            matches.append(
                MatchedObject(
                    oid=oid,
                    matched=",".join(str(v) for v in vector),
                    distance=actual,
                    triples=objects.get(oid, ()),
                )
            )
    return sorted(matches, key=lambda m: (m.distance, m.oid))
