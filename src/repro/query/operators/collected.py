"""The *collected* variant of Algorithm 2 — no delegation, count filter.

This is the algorithm as literally printed in the paper, before the two
optimizations Section 4 describes ("the pictured algorithm omits two
implemented optimization steps"):

1. gram peers return their matching gram entries to the *initiator*
   instead of delegating to the oid peers;
2. the initiator applies the position/length filters — and, because it
   now sees hits for *all* query grams of a candidate at once, it can
   additionally apply the Gravano **count filter** (a candidate must share
   at least ``max(|s1|,|s2|) - 1 - (d-1)·q`` grams), which the delegated
   flow cannot;
3. the initiator batch-fetches the surviving candidates' complete objects
   and verifies the edit distance locally (line 23 at ``p``).

The trade-off, measured by ``benchmarks/test_ablation_delegation.py``:
collected pays to ship every gram hit to the initiator but prunes
candidates globally; delegated never ships raw gram hits but cannot count
across gram peers.  The count filter only strengthens the full-gram-set
strategy — a q-sample deliberately drops grams, so hit counts prove
nothing there and the filter is skipped (the paper's same observation).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.config import SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.query.operators.base import QUERY_HEADER_BYTES, OperatorContext
from repro.query.operators.similar import (
    SimilarResult,
    _candidate_strings,
    _decompose,
    _entry_gram,
    _entry_matches,
    _gram_keys,
    _verify,
)
from repro.similarity.filters import CountFilter
from repro.similarity.verify import BatchVerifier
from repro.storage.qgrams import count_filter_threshold


def similar_collected(
    ctx: OperatorContext,
    s: str,
    attribute: str,
    d: int,
    initiator_id: int | None = None,
    strategy: SimilarityStrategy | None = None,
    use_count_filter: bool = True,
) -> SimilarResult:
    """Run the collected (non-delegated) ``Similar(s, a, d)``."""
    if d < 0:
        raise ExecutionError(f"similarity distance must be >= 0, got {d}")
    chosen = strategy if strategy is not None else ctx.strategy
    if chosen is SimilarityStrategy.ADAPTIVE:
        # Same cost-based resolution as ``similar``: dispatch the
        # cheapest predicted strategy and record predicted-vs-actual on
        # the decision.
        decision = ctx.decide_strategy(s, attribute, d)
        tracer = ctx.network.tracer
        before = tracer.snapshot()
        result = similar_collected(
            ctx, s, attribute, d, initiator_id,
            strategy=decision.chosen, use_count_filter=use_count_filter,
        )
        delta = before.delta(tracer.snapshot())
        decision.record_actual(delta.messages, delta.payload_bytes)
        result.extras["adaptive"] = 1
        return result
    if chosen is SimilarityStrategy.NAIVE:
        from repro.query.operators.naive import naive_similar

        return naive_similar(ctx, s, attribute, d, initiator_id)
    if initiator_id is None:
        initiator_id = ctx.random_initiator()

    schema_level = attribute == ""
    query_grams = _decompose(s, ctx.config.q, d, chosen)
    gram_keys = _gram_keys(ctx, attribute, query_grams, schema_level)

    answers = ctx.router.route_many(gram_keys.keys(), initiator_id, phase="gram_lookup")
    result = SimilarResult(matches=[])
    result.grams_looked_up = len(query_grams)
    contacted: dict[int, list[str]] = defaultdict(list)
    for key, peer in answers.items():
        contacted[peer.peer_id].append(key)
    result.gram_partitions_contacted = len(contacted)

    # Step 1: gram peers return raw (filtered) gram hits to the initiator.
    counter = CountFilter(len(s), ctx.config.q, d)
    hit_oids: set[str] = set()
    for peer_id, keys in sorted(contacted.items()):
        peer = ctx.network.peer(peer_id)
        if not ctx.router.send_delegate(
            initiator_id,
            peer_id,
            QUERY_HEADER_BYTES
            + sum(len(g.gram) for k in keys for g in gram_keys[k]),
            phase="gram_lookup",
        ):
            # Delegation lost beyond retries (degraded mode): this gram
            # peer never scans its keys.
            ctx.router.record_dropped_candidates(len(keys))
            continue
        returned: list[tuple[str, int]] = []
        payload = 0
        for key in keys:
            occurrences = gram_keys[key]
            for entry in peer.store.lookup(key):
                if not _entry_matches(entry, attribute, occurrences[0], schema_level):
                    continue
                stored = _entry_gram(entry)
                if not any(
                    ctx.filters.admits(occurrence, stored, d)
                    for occurrence in occurrences
                ):
                    continue
                returned.append((entry.triple.oid, entry.source_length))
                payload += entry.payload_size()
        if returned:
            if not ctx.router.send_result(
                peer_id, initiator_id, payload, phase="gram_lookup"
            ):
                # The hit list never reaches the initiator: its gram
                # observations are lost to the count filter as well.
                ctx.router.record_dropped_candidates(len(returned))
                continue
            for oid, source_length in returned:
                counter.observe(oid, source_length)
                hit_oids.add(oid)

    # Step 2: the initiator's global count filter (full gram sets only).
    if use_count_filter and chosen is SimilarityStrategy.QGRAM:
        candidates = set(counter.admitted())
    else:
        candidates = hit_oids
    result.candidates_after_filters = len(candidates)
    result.extras["count_filter_pruned"] = len(hit_oids) - len(candidates)

    # Step 3: fetch complete objects, verify at the initiator.
    objects = ctx.fetch_objects(
        candidates,
        delegating_peer_id=initiator_id,
        initiator_id=initiator_id,
        phase="oid_lookup",
    )
    verifier = BatchVerifier(s, d, kernel=ctx.edit_kernel)
    verifier.distances(
        [
            candidate
            for triples in objects.values()
            for candidate in _candidate_strings(triples, attribute, schema_level)
        ]
    )
    matches = []
    for oid, triples in objects.items():
        result.candidates_verified += 1
        match = _verify(verifier, attribute, oid, triples, schema_level)
        if match is not None:
            matches.append(match)
    result.matches = sorted(matches, key=lambda m: (m.distance, m.oid))
    return result


def count_filter_applicable(query_length: int, q: int, d: int) -> bool:
    """True when the count bound can prune anything for this query."""
    return count_filter_threshold(query_length, query_length, q, d) > 1
