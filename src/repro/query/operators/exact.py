"""Exact-match operators — lookups and joins over the vertical scheme.

These are the "already implemented and evaluated" operations the paper
builds on ([10], Section 3): object lookup via ``key(oid)``, selection via
``key(A#v)``, keyword lookup via ``key(v)``, attribute scans via the
attribute prefix, and exact equi-joins between triple sets.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.query.operators.base import MatchedObject, OperatorContext
from repro.storage.indexing import EntryKind
from repro.storage.triple import Triple, ValueType


def lookup_object(
    ctx: OperatorContext, oid: str, initiator_id: int | None = None
) -> tuple[Triple, ...]:
    """Fetch the complete object stored under ``key(oid)``."""
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    objects = ctx.fetch_objects(
        [oid], delegating_peer_id=initiator_id, initiator_id=initiator_id,
        phase="exact",
    )
    return objects.get(oid, ())


def select_equals(
    ctx: OperatorContext,
    attribute: str,
    value: ValueType,
    initiator_id: int | None = None,
    fetch_full_objects: bool = True,
) -> list[MatchedObject]:
    """Selection ``attribute = value`` via one routed ``key(A#v)`` lookup.

    Composite keys can collide (truncated hashes), so the answering peer
    verifies attribute and value before returning anything.
    """
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    key = ctx.codec.attr_value_key(attribute, value)
    entries, peer = ctx.router.retrieve(key, initiator_id, phase="exact")
    hits = [
        entry.triple
        for entry in entries
        if entry.kind is EntryKind.ATTR_VALUE
        and entry.triple.attribute == attribute
        and entry.triple.value == value
    ]
    if hits:
        payload = sum(t.payload_size() for t in hits)
        if not ctx.router.send_result(
            peer.peer_id, initiator_id, payload, phase="exact"
        ):
            ctx.router.record_dropped_candidates(len(hits))
            hits = []
    if not fetch_full_objects:
        return [
            MatchedObject(t.oid, str(t.value), 0.0, (t,)) for t in hits
        ]
    objects = ctx.fetch_objects(
        {t.oid for t in hits},
        delegating_peer_id=peer.peer_id,
        initiator_id=initiator_id,
        phase="exact",
    )
    return sorted(
        (
            MatchedObject(t.oid, str(t.value), 0.0, objects.get(t.oid, (t,)))
            for t in hits
        ),
        key=lambda m: m.oid,
    )


def keyword_lookup(
    ctx: OperatorContext, value: ValueType, initiator_id: int | None = None
) -> list[Triple]:
    """Keyword query "any attribute = value" via ``key(v)``."""
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    key = ctx.codec.value_key(value)
    entries, peer = ctx.router.retrieve(key, initiator_id, phase="exact")
    hits = [
        entry.triple
        for entry in entries
        if entry.kind is EntryKind.VALUE and entry.triple.value == value
    ]
    if hits:
        payload = sum(t.payload_size() for t in hits)
        if not ctx.router.send_result(
            peer.peer_id, initiator_id, payload, phase="exact"
        ):
            ctx.router.record_dropped_candidates(len(hits))
            hits = []
    return sorted(hits, key=lambda t: (t.oid, t.attribute))


def scan_attribute(
    ctx: OperatorContext, attribute: str, initiator_id: int | None = None
) -> list[Triple]:
    """All triples of one attribute: multicast over the attribute region.

    Charges one result message per contributing peer — this is the
    expensive full-scan fallback the planner avoids whenever it can.
    """
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    prefix = ctx.codec.attr_prefix(attribute)
    peers = ctx.router.multicast_prefix(prefix, initiator_id, phase="scan")
    triples: list[Triple] = []
    for peer in peers:
        local = [
            entry.triple
            for entry in peer.store.prefix_scan(prefix)
            if entry.kind is EntryKind.ATTR_VALUE
            and entry.triple.attribute == attribute
        ]
        if local:
            payload = sum(t.payload_size() for t in local)
            if not ctx.router.send_result(
                peer.peer_id, initiator_id, payload, phase="scan"
            ):
                ctx.router.record_dropped_candidates(len(local))
                continue
            triples.extend(local)
    return sorted(triples, key=lambda t: (t.oid, str(t.value)))


def equi_join(
    left: Sequence[Triple], right: Sequence[Triple]
) -> list[tuple[Triple, Triple]]:
    """Local exact join on triple values (executed at the initiator).

    Joining *collected* triple sets is a local operation; the network cost
    was already paid when the inputs were retrieved.
    """
    by_value: dict[ValueType, list[Triple]] = defaultdict(list)
    for triple in right:
        by_value[triple.value].append(triple)
    pairs: list[tuple[Triple, Triple]] = []
    for triple in left:
        for partner in by_value.get(triple.value, ()):
            pairs.append((triple, partner))
    return pairs
