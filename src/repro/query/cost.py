"""Cost-based strategy selection — the paper's deferred "ongoing work".

Section 6 leaves the naive-vs-q-gram choice open: "which of these two
approaches, or any other, more sophisticated, strategy, is used is a
choice depending on cost optimizations, which is part of our ongoing
work".  :mod:`repro.query.statistics` already collects the selectivity
summaries that remark calls for; this module consumes them:

* :class:`StrategyCostModel` predicts, for one ``Similar(s, a, d)``
  query, the **messages**, **payload bytes** and **latency** each
  physical strategy would spend — from the overlay's structure (region
  size, expected routing depth), the collected
  :class:`~repro.query.statistics.StatisticsCatalog`, and the latency
  constants of :mod:`repro.bench.latency`;
* :meth:`StrategyCostModel.choose` resolves
  ``SimilarityStrategy.ADAPTIVE`` into a concrete strategy and returns a
  :class:`StrategyDecision` recording every prediction; the operator
  fills in the measured cost after running, so predicted-vs-actual
  accuracy is inspectable on every
  :class:`~repro.overlay.messages.CostReport`.

The model is deliberately *coarse*: closed-form expectations over a
balanced trie (``0.5·log2`` routing walks, balls-into-bins partition
fan-out), not a simulation.  What the adaptive mode needs is the
*ordering* of the strategies and the crossover point where the naive
broadcast's Θ(region) cost overtakes the q-gram strategies' logarithmic
lookups — which these formulas capture by construction.  Without a
catalog (or for attributes never analyzed) all data-dependent terms fall
back to zero and the decision degrades to the structural comparison:
region size versus gram fan-out, still a sane default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.storage.qgrams import positional_qgrams, qgram_sample

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.bench.latency import LatencyModel
    from repro.overlay.network import PGridNetwork
    from repro.query.statistics import StatisticsCatalog

#: Strategies the adaptive mode chooses among, in tie-break order
#: (cheapest-first expectation at scale; ties resolve to the earliest).
CANDIDATE_STRATEGIES = (
    SimilarityStrategy.QSAMPLE,
    SimilarityStrategy.QGRAM,
    SimilarityStrategy.NAIVE,
)

#: Fixed per-message header charged by delegations (mirrors
#: ``repro.query.operators.base.QUERY_HEADER_BYTES`` without importing
#: the operator layer).
QUERY_HEADER_BYTES = 24

#: Assumed wire size of an oid string (the workloads mint ``w:0042``-ish).
OID_BYTES = 8

#: Fixed per-triple overhead assumed when estimating reconstructed-object
#: payloads (attribute name + framing around the value).
TRIPLE_OVERHEAD_BYTES = 16

#: Triples per object assumed when no better information exists.
TRIPLES_PER_OBJECT = 2.0


@dataclass(frozen=True)
class CostPrediction:
    """Predicted cost of one query under one physical strategy."""

    strategy: SimilarityStrategy
    messages: float
    payload_bytes: float
    latency_ms: float

    def as_dict(self) -> dict[str, float]:
        """JSON-ready view (used by bench reports and the shell)."""
        return {
            "messages": round(self.messages, 1),
            "payload_bytes": round(self.payload_bytes, 1),
            "latency_ms": round(self.latency_ms, 2),
        }


@dataclass
class StrategyDecision:
    """One adaptive resolution: what was predicted, chosen, and measured.

    Created by :meth:`StrategyCostModel.choose` when a query runs in
    ``ADAPTIVE`` mode; the similarity operator fills ``actual_messages``
    / ``actual_payload_bytes`` from the tracer delta of the dispatched
    run, and the executor / workload runner attaches the finished
    decision to the query's :class:`~repro.overlay.messages.CostReport`.
    """

    search: str
    attribute: str
    d: int
    chosen: SimilarityStrategy
    predictions: dict[str, CostPrediction] = field(default_factory=dict)
    actual_messages: int | None = None
    actual_payload_bytes: int | None = None

    @property
    def predicted(self) -> CostPrediction:
        """The prediction for the chosen strategy."""
        return self.predictions[self.chosen.value]

    def record_actual(self, messages: int, payload_bytes: int) -> None:
        """Fill in the measured cost of the dispatched run."""
        self.actual_messages = messages
        self.actual_payload_bytes = payload_bytes

    def summary(self) -> str:
        """One-line human-readable form (shell / smoke output)."""
        predicted = self.predicted
        actual = (
            f"{self.actual_messages}"
            if self.actual_messages is not None
            else "?"
        )
        return (
            f"Similar({self.search!r}, {self.attribute!r}, d={self.d}) -> "
            f"{self.chosen.value} "
            f"(predicted {predicted.messages:.0f} msgs, actual {actual})"
        )


class StrategyCostModel:
    """Per-strategy cost predictions over one network.

    The model is stateless apart from the network handle and the latency
    constants; the statistics catalog is passed per call so a freshly
    ``analyze``-d catalog is always the one consulted.
    """

    def __init__(
        self,
        network: "PGridNetwork",
        latency_model: "LatencyModel | None" = None,
    ):
        self.network = network
        if latency_model is None:
            from repro.bench.latency import LatencyModel

            latency_model = LatencyModel()
        self.latency_model = latency_model

    # -- structural expectations -----------------------------------------------

    def _route_hops(self) -> float:
        """Expected ROUTE messages of one routed walk (Section 2)."""
        return 0.5 * math.log2(max(2, self.network.n_partitions))

    def _region_size(self, attribute: str) -> int:
        """Partitions holding the attribute's values (all, for schema level)."""
        if attribute == "":
            return self.network.n_partitions
        prefix = self.network.codec.attr_prefix(attribute)
        return max(1, len(self.network.partitions_under(prefix)))

    def _reachable_fraction(self, attribute: str) -> float:
        """Fraction of the attribute's region partitions with a live replica.

        The replica-aware leg of the model: under churn, a partition with
        every replica offline contributes neither broadcast targets nor
        rows, so region sizes and row counts scale by this fraction.  On
        a healthy network (the common case, checked with one short-
        circuiting scan) the fraction is exactly 1.0 and every prediction
        stays bit-identical to the churn-unaware model.
        """
        if all(peer.online for peer in self.network.peers):
            return 1.0
        if attribute == "":
            partitions = self.network.partitions
        else:
            prefix = self.network.codec.attr_prefix(attribute)
            partitions = self.network.partitions_under(prefix)
        if not partitions:
            return 1.0
        live = sum(
            1
            for partition in partitions
            if any(
                self.network.peer(peer_id).online
                for peer_id in partition.peer_ids
            )
        )
        return live / len(partitions)

    @staticmethod
    def _distinct_partitions(partitions: int, keys: float) -> float:
        """Expected distinct partitions hit by ``keys`` uniform keys."""
        if partitions <= 0 or keys <= 0:
            return 0.0
        return partitions * (1.0 - (1.0 - 1.0 / partitions) ** keys)

    def _fetch_messages(self, objects: float) -> float:
        """Expected messages of one batched ``fetch_objects`` round."""
        if objects <= 0:
            return 0.0
        oid_partitions = self._distinct_partitions(
            self.network.n_partitions, objects
        )
        # route_many entry walk + forwards, one delegate and one result
        # return per contacted oid partition.
        return self._route_hops() + 3.0 * oid_partitions - 1.0

    # -- per-strategy predictions ------------------------------------------------

    def predict(
        self,
        s: str,
        attribute: str,
        d: int,
        strategy: SimilarityStrategy,
        catalog: "StatisticsCatalog | None" = None,
    ) -> CostPrediction:
        """Predicted cost of ``Similar(s, attribute, d)`` under ``strategy``."""
        stats = catalog.get(attribute) if catalog is not None else None
        if strategy is SimilarityStrategy.NAIVE:
            return self._predict_naive(s, attribute, d, stats)
        if strategy in (SimilarityStrategy.QGRAM, SimilarityStrategy.QSAMPLE):
            return self._predict_gram(s, attribute, d, strategy, stats)
        raise ExecutionError(f"cannot predict cost of strategy {strategy}")

    def predict_all(
        self,
        s: str,
        attribute: str,
        d: int,
        catalog: "StatisticsCatalog | None" = None,
    ) -> dict[str, CostPrediction]:
        """Predictions for every candidate strategy, keyed by value."""
        return {
            strategy.value: self.predict(s, attribute, d, strategy, catalog)
            for strategy in CANDIDATE_STRATEGIES
        }

    def choose(
        self,
        s: str,
        attribute: str,
        d: int,
        catalog: "StatisticsCatalog | None" = None,
    ) -> StrategyDecision:
        """Resolve ``ADAPTIVE`` into the cheapest predicted strategy."""
        predictions = self.predict_all(s, attribute, d, catalog)
        chosen = min(
            CANDIDATE_STRATEGIES,
            key=lambda strategy: (
                predictions[strategy.value].messages,
                predictions[strategy.value].payload_bytes,
            ),
        )
        return StrategyDecision(
            search=s,
            attribute=attribute,
            d=d,
            chosen=chosen,
            predictions=predictions,
        )

    # -- internals ----------------------------------------------------------------

    def _expected_matches(self, stats, d: int) -> float:
        return stats.estimate_similarity_rows(d) if stats is not None else 0.0

    def _object_bytes(self, stats) -> float:
        """Assumed payload of one reconstructed object."""
        mean_len = (
            stats.mean_string_length if stats is not None else 8.0
        ) or 8.0
        return TRIPLES_PER_OBJECT * (mean_len + TRIPLE_OVERHEAD_BYTES)

    def _predict_naive(self, s, attribute, d, stats) -> CostPrediction:
        region = self._region_size(attribute)
        matches = self._expected_matches(stats, d)
        reach = self._reachable_fraction(attribute)
        if reach < 1.0:
            # Dark partitions receive no query copy and return no rows.
            region = max(1, round(region * reach))
            matches *= reach
        hops = self._route_hops()
        # Routed entry, shower forwards, one query copy per region peer,
        # one result return per matching partition, then the initiator's
        # batched object fetch.
        messages = (
            hops
            + (region - 1)
            + region
            + min(region, matches)
            + self._fetch_messages(matches)
        )
        payload = (
            region * (QUERY_HEADER_BYTES + len(s))
            + matches * (OID_BYTES + self._mean_value_len(stats, s) + 2)
            + matches * self._object_bytes(stats)
        )
        # Replica-aware rows: only reachable partitions' rows take part.
        rows = (stats.row_count if stats is not None else 0) * reach
        per_peer = rows / region if region else 0.0
        latency = (
            self.latency_model.network_time_ms(
                self.network.n_partitions, math.ceil(math.log2(max(2, region)))
            )
            + self.latency_model.compute_time_ms(int(per_peer))
        )
        return CostPrediction(
            SimilarityStrategy.NAIVE, messages, payload, latency
        )

    def _predict_gram(self, s, attribute, d, strategy, stats) -> CostPrediction:
        q = self.network.config.q
        if strategy is SimilarityStrategy.QSAMPLE:
            grams = qgram_sample(s, q, d)
        else:
            grams = positional_qgrams(s, q)
        gram_keys = len({gram.gram for gram in grams})
        region = self._region_size(attribute)
        gram_partitions = max(
            1.0, self._distinct_partitions(region, gram_keys)
        )
        postings = stats.estimate_gram_postings() if stats is not None else 0.0
        candidates = gram_keys * postings * self._filter_selectivity(stats, s, d, q)
        if stats is not None:
            candidates = min(candidates, float(stats.row_count))
        matches = self._expected_matches(stats, d)
        reach = self._reachable_fraction(attribute)
        if reach < 1.0:
            # Unreachable gram partitions are skipped (degraded mode) and
            # contribute no postings; scale the fan-out and the
            # data-dependent terms by the live fraction.
            gram_partitions = max(1.0, gram_partitions * reach)
            candidates *= reach
            matches *= reach

        hops = self._route_hops()
        # Batched gram lookups: entry walk + forwards + one delegation per
        # contacted gram partition.
        messages = hops + 2.0 * gram_partitions - 1.0
        payload = gram_partitions * (
            QUERY_HEADER_BYTES + sum(len(gram.gram) for gram in grams)
        )
        if candidates > 0:
            delegating = min(gram_partitions, candidates)
            oid_partitions = self._distinct_partitions(
                self.network.n_partitions, candidates
            )
            # Each delegating gram peer runs one batched walk; delegation
            # messages are (gram peer, oid partition) pairs; only fresh
            # partitions answer.
            delegations = min(candidates, delegating * oid_partitions)
            messages += delegating * hops + delegations + oid_partitions
            payload += delegations * (QUERY_HEADER_BYTES + len(s) + OID_BYTES)
            payload += min(candidates, max(matches, 1.0)) * self._object_bytes(
                stats
            )
        dissemination = math.ceil(math.log2(max(2, gram_partitions))) + 1
        per_peer = candidates / gram_partitions if gram_partitions else 0.0
        latency = (
            self.latency_model.network_time_ms(
                self.network.n_partitions, dissemination
            )
            + self.latency_model.compute_time_ms(math.ceil(per_peer))
        )
        return CostPrediction(strategy, messages, payload, latency)

    @staticmethod
    def _mean_value_len(stats, s: str) -> float:
        if stats is not None and stats.mean_string_length:
            return stats.mean_string_length
        return float(len(s))

    @staticmethod
    def _filter_selectivity(stats, s: str, d: int, q: int) -> float:
        """Fraction of a gram key's postings the position/length filters admit.

        Both filters are ``|gap| <= d`` windows: position over the
        extended string's ``L + q - 1`` gram slots, length over the value
        lengths.  Modelled as one shared window of width ``2d + 1`` over
        the positional slots — coarse, but monotone in ``d`` and
        vanishing for long values, which is what separates filtered gram
        scans from the naive everything-compares regime.
        """
        mean_len = StrategyCostModel._mean_value_len(stats, s)
        slots = max(1.0, mean_len + q - 1)
        return min(1.0, (2.0 * d + 1.0) / slots)
