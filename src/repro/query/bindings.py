"""Variable bindings — the executor's working representation.

A :class:`BindingSet` is a bag of rows, each row a ``variable -> value``
mapping.  Joins between binding sets are local hash joins at the query
initiator: the network cost of *producing* the rows was already charged by
the operators, combining them is free (Section 3: intermediate results are
materialized at processing peers / the initiator).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Iterator, Mapping

from repro.storage.triple import ValueType

Row = dict[str, ValueType]


class BindingSet:
    """An ordered bag of variable-binding rows."""

    def __init__(self, rows: Iterable[Mapping[str, ValueType]] | None = None):
        self.rows: list[Row] = [dict(r) for r in rows] if rows is not None else []

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @classmethod
    def unit(cls) -> "BindingSet":
        """The join identity: a single empty row."""
        return cls([{}])

    def variables(self) -> set[str]:
        """Variables bound in at least one row (uniform by construction)."""
        return set(self.rows[0]) if self.rows else set()

    def distinct_values(self, variable: str) -> list[ValueType]:
        """Sorted distinct values of one variable across all rows."""
        values = {row[variable] for row in self.rows if variable in row}
        return sorted(values, key=lambda v: (str(type(v)), str(v)))

    def filter(self, predicate: Callable[[Row], bool]) -> "BindingSet":
        """Rows satisfying ``predicate``."""
        return BindingSet(row for row in self.rows if predicate(row))

    def project(self, variables: Iterable[str]) -> "BindingSet":
        """Keep only the given variables (duplicates preserved)."""
        names = list(variables)
        return BindingSet({v: row[v] for v in names if v in row} for row in self.rows)

    def join(self, other: "BindingSet") -> "BindingSet":
        """Natural hash join on the shared variables.

        With no shared variables this degenerates to a cross product —
        the planner orders steps to avoid that, but correctness does not
        depend on it.
        """
        shared = sorted(self.variables() & other.variables())
        if not shared:
            return BindingSet(
                {**left, **right} for left in self.rows for right in other.rows
            )
        index: dict[tuple, list[Row]] = defaultdict(list)
        for row in other.rows:
            index[tuple(row[v] for v in shared)].append(row)
        joined: list[Row] = []
        for left in self.rows:
            key = tuple(left[v] for v in shared)
            for right in index.get(key, ()):
                joined.append({**left, **right})
        return BindingSet(joined)

    def extend_each(
        self,
        expander: Callable[[Row], Iterable[Mapping[str, ValueType]]],
    ) -> "BindingSet":
        """Bind-join: expand every row by the extensions ``expander`` yields.

        Rows with no extension are dropped (inner-join semantics).
        """
        result: list[Row] = []
        for row in self.rows:
            for extension in expander(row):
                result.append({**row, **extension})
        return BindingSet(result)

    def deduplicate(self) -> "BindingSet":
        """Remove duplicate rows (order of first occurrence preserved)."""
        seen: set[tuple] = set()
        unique: list[Row] = []
        for row in self.rows:
            signature = tuple(sorted(row.items()))
            if signature not in seen:
                seen.add(signature)
                unique.append(row)
        return BindingSet(unique)
