"""Query planner — pattern ordering and similarity push-down.

The paper scopes planning out ("we focus on physical operators, not on
issues of query formulation and planning"), so this planner is a
straightforward, correct heuristic layer that

1. classifies every triple pattern into a physical **access method**,
   consuming the FILTER predicates it can push down (similarity, range);
2. orders the steps greedily by estimated selectivity, preferring steps
   whose variables are already bound (bind-joins over cross products);
3. recognizes the rank-aware shape ``ORDER BY ... LIMIT n`` and marks it
   for the top-N operator when it is safe (see the executor's adaptive
   overfetch loop for how correctness is preserved under later joins).

Everything left over — filters that no access method consumed — becomes a
*residual* predicate evaluated at the initiator as soon as its variables
are bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import PlanningError
from repro.query.ast import (
    CompareOp,
    Comparison,
    Const,
    DistCall,
    SelectQuery,
    TriplePattern,
    Var,
)
from repro.storage.triple import is_numeric


class AccessMethod(enum.Enum):
    """Physical access path for one triple pattern."""

    EXACT = "exact"  # predicate + object constants -> key(A#v)
    STRING_SIMILARITY = "string_similarity"  # dist(?v, 'c') pushed down
    NUMERIC_SIMILARITY = "numeric_similarity"  # dist(?v, n) pushed down
    SCHEMA_SIMILARITY = "schema_similarity"  # dist(?a, 'c') on predicate var
    RANGE = "range"  # numeric comparison pushed down
    STRING_RANGE = "string_range"  # lexicographic comparison pushed down
    TOP_N = "top_n"  # rank-aware: ORDER BY + LIMIT push-down
    SIMJOIN_PROBE = "simjoin_probe"  # dist(?v, ?w), ?w bound earlier
    OID_JOIN = "oid_join"  # subject bound earlier -> key(oid)
    SCAN = "scan"  # attribute scan (fallback)


@dataclass
class SimilaritySpec:
    """A pushed-down ``dist(x, y) < d`` predicate."""

    target: object  # constant search value, or None for SIMJOIN_PROBE
    partner_var: str | None  # other variable for SIMJOIN_PROBE
    max_distance: float
    strict: bool  # True for '<', False for '<='

    @property
    def edit_limit(self) -> int:
        """Integer edit-distance bound implied by the predicate.

        ``dist < d`` over integer edit distances means ``dist <= d - 1``
        (the paper's ``dist(?n,'BMW') < 2`` admits distance 0 and 1).
        """
        limit = self.max_distance - 1 if self.strict else self.max_distance
        return max(0, int(limit))

    @property
    def numeric_limit(self) -> float:
        """Distance bound for continuous (numeric) values."""
        return float(self.max_distance)


@dataclass
class RangeSpec:
    """A pushed-down numeric comparison ``?v op c`` (conjunction thereof)."""

    lower: float | None = None
    upper: float | None = None
    lower_strict: bool = False
    upper_strict: bool = False

    def admits(self, value: float) -> bool:
        if self.lower is not None:
            if value < self.lower or (self.lower_strict and value == self.lower):
                return False
        if self.upper is not None:
            if value > self.upper or (self.upper_strict and value == self.upper):
                return False
        return True


@dataclass
class StringRangeSpec:
    """A pushed-down lexicographic comparison conjunction on strings."""

    lower: str | None = None
    upper: str | None = None
    lower_strict: bool = False
    upper_strict: bool = False

    def admits(self, value: str) -> bool:
        if self.lower is not None:
            if value < self.lower or (self.lower_strict and value == self.lower):
                return False
        if self.upper is not None:
            if value > self.upper or (self.upper_strict and value == self.upper):
                return False
        return True


@dataclass
class PlanStep:
    """One executable step: a pattern with its access method and payload."""

    pattern: TriplePattern
    method: AccessMethod
    similarity: SimilaritySpec | None = None
    range: RangeSpec | None = None
    string_range: StringRangeSpec | None = None
    consumed_filters: tuple[Comparison, ...] = ()
    cost_rank: int = 0
    estimated_rows: float | None = None


@dataclass
class QueryPlan:
    """Ordered steps plus residual filters and the final modifiers."""

    query: SelectQuery
    steps: list[PlanStep]
    residual_filters: tuple[Comparison, ...]

    def explain(self) -> str:
        """Human-readable plan, one line per step."""
        lines = []
        for i, step in enumerate(self.steps, start=1):
            parts = []
            if step.similarity is not None:
                if step.similarity.partner_var is not None:
                    parts.append(f"probe=?{step.similarity.partner_var}")
                else:
                    parts.append(f"target={step.similarity.target!r}")
                parts.append(f"d<={step.similarity.edit_limit}")
            if step.range is not None:
                parts.append(f"range=({step.range.lower}, {step.range.upper})")
            if step.estimated_rows is not None:
                parts.append(f"~{step.estimated_rows:.0f} rows")
            detail = (" " + " ".join(parts)) if parts else ""
            lines.append(f"{i}. {step.method.value}{detail}  {step.pattern}")
        for residual in self.residual_filters:
            lines.append(f"   residual: {residual}")
        return "\n".join(lines)


#: Cost ranks used by the greedy ordering (lower runs earlier).
_COST = {
    AccessMethod.EXACT: 0,
    AccessMethod.OID_JOIN: 1,
    AccessMethod.TOP_N: 1,
    AccessMethod.STRING_SIMILARITY: 2,
    AccessMethod.NUMERIC_SIMILARITY: 2,
    AccessMethod.RANGE: 3,
    AccessMethod.STRING_RANGE: 3,
    AccessMethod.SCHEMA_SIMILARITY: 3,
    AccessMethod.SIMJOIN_PROBE: 3,
    AccessMethod.SCAN: 6,
}

#: Penalty added when a step shares no variable with what is bound so far
#: (cross products are legal but should run last).
_CROSS_PRODUCT_PENALTY = 10


def plan(query: SelectQuery, catalog=None) -> QueryPlan:
    """Build an executable plan for ``query``.

    With a :class:`~repro.query.statistics.StatisticsCatalog` holding at
    least one attribute summary, step ordering uses estimated result
    cardinalities instead of the static method ranks — the cost-based
    mode the paper leaves as ongoing work.  An empty catalog (fresh
    engine, ``analyze`` not yet run) behaves exactly like no catalog.
    """
    remaining_filters = list(query.filters)
    annotated: list[PlanStep] = []
    use_estimates = catalog is not None and catalog.by_attribute
    for pattern in query.patterns:
        step, used = _classify(pattern, remaining_filters, query)
        for comparison in used:
            remaining_filters.remove(comparison)
        if use_estimates:
            step.estimated_rows = _estimate_rows(step, catalog)
        annotated.append(step)

    ordered, reinstated = _order_steps(annotated)
    _promote_top_n(ordered, query)
    return QueryPlan(
        query=query,
        steps=ordered,
        residual_filters=tuple(remaining_filters + reinstated),
    )


def _classify(
    pattern: TriplePattern,
    filters: list[Comparison],
    query: SelectQuery,
) -> tuple[PlanStep, list[Comparison]]:
    """Pick the best access method for one pattern, consuming filters."""
    predicate = pattern.predicate
    object_ = pattern.object

    # Schema level: variable predicate with a dist() filter on it.
    if isinstance(predicate, Var):
        spec, used = _find_similarity(predicate.name, filters)
        if spec is not None and spec.partner_var is None:
            return (
                PlanStep(
                    pattern,
                    AccessMethod.SCHEMA_SIMILARITY,
                    similarity=spec,
                    consumed_filters=tuple(used),
                    cost_rank=_COST[AccessMethod.SCHEMA_SIMILARITY],
                ),
                used,
            )
        # Variable predicate without a similarity anchor: only reachable
        # through the subject (oid join); otherwise unplannable.
        return (
            PlanStep(
                pattern,
                AccessMethod.OID_JOIN,
                cost_rank=_COST[AccessMethod.OID_JOIN],
            ),
            [],
        )

    if not isinstance(predicate, Const) or not isinstance(predicate.value, str):
        raise PlanningError(f"pattern {pattern} has a non-string predicate")

    # Constant object: exact lookup.
    if isinstance(object_, Const):
        return (
            PlanStep(pattern, AccessMethod.EXACT, cost_rank=_COST[AccessMethod.EXACT]),
            [],
        )

    # Variable object: look for pushable predicates on it.
    spec, used = _find_similarity(object_.name, filters)
    if spec is not None:
        if spec.partner_var is not None:
            method = AccessMethod.SIMJOIN_PROBE
        elif is_numeric(spec.target):
            method = AccessMethod.NUMERIC_SIMILARITY
        else:
            method = AccessMethod.STRING_SIMILARITY
        return (
            PlanStep(
                pattern,
                method,
                similarity=spec,
                consumed_filters=tuple(used),
                cost_rank=_COST[method],
            ),
            used,
        )
    range_spec, used = _find_range(object_.name, filters)
    if range_spec is not None:
        return (
            PlanStep(
                pattern,
                AccessMethod.RANGE,
                range=range_spec,
                consumed_filters=tuple(used),
                cost_rank=_COST[AccessMethod.RANGE],
            ),
            used,
        )
    string_spec, used = _find_string_range(object_.name, filters)
    if string_spec is not None:
        return (
            PlanStep(
                pattern,
                AccessMethod.STRING_RANGE,
                string_range=string_spec,
                consumed_filters=tuple(used),
                cost_rank=_COST[AccessMethod.STRING_RANGE],
            ),
            used,
        )
    return (
        PlanStep(pattern, AccessMethod.SCAN, cost_rank=_COST[AccessMethod.SCAN]),
        [],
    )


def _find_similarity(
    variable: str, filters: list[Comparison]
) -> tuple[SimilaritySpec | None, list[Comparison]]:
    """First pushable ``dist(?variable, x) < d`` filter, if any."""
    for comparison in filters:
        if not comparison.is_distance_predicate():
            continue
        dist = comparison.left
        assert isinstance(dist, DistCall)
        if not isinstance(comparison.right, Const):
            continue
        bound = comparison.right.value
        if not is_numeric(bound):
            continue
        sides = (dist.left, dist.right)
        names = [t.name for t in sides if isinstance(t, Var)]
        if variable not in names:
            continue
        strict = comparison.op is CompareOp.LT
        if len(names) == 2:
            partner = names[0] if names[1] == variable else names[1]
            spec = SimilaritySpec(
                target=None,
                partner_var=partner,
                max_distance=float(bound),
                strict=strict,
            )
            return spec, [comparison]
        constant = next(t for t in sides if isinstance(t, Const))
        spec = SimilaritySpec(
            target=constant.value,
            partner_var=None,
            max_distance=float(bound),
            strict=strict,
        )
        return spec, [comparison]
    return None, []


def _find_range(
    variable: str, filters: list[Comparison]
) -> tuple[RangeSpec | None, list[Comparison]]:
    """Conjunction of numeric comparisons on ``variable``, if any."""
    spec = RangeSpec()
    used: list[Comparison] = []
    for comparison in filters:
        bound, op = _variable_comparison(variable, comparison)
        if bound is None:
            continue
        if op in (CompareOp.LT, CompareOp.LE):
            if spec.upper is None or bound < spec.upper:
                spec.upper = bound
                spec.upper_strict = op is CompareOp.LT
        elif op in (CompareOp.GT, CompareOp.GE):
            if spec.lower is None or bound > spec.lower:
                spec.lower = bound
                spec.lower_strict = op is CompareOp.GT
        elif op is CompareOp.EQ:
            spec.lower = spec.upper = bound
            spec.lower_strict = spec.upper_strict = False
        else:
            continue
        used.append(comparison)
    if not used:
        return None, []
    return spec, used


def _find_string_range(
    variable: str, filters: list[Comparison]
) -> tuple[StringRangeSpec | None, list[Comparison]]:
    """Conjunction of lexicographic comparisons on ``variable``, if any."""
    spec = StringRangeSpec()
    used: list[Comparison] = []
    for comparison in filters:
        bound, op = _string_comparison(variable, comparison)
        if bound is None:
            continue
        if op in (CompareOp.LT, CompareOp.LE):
            if spec.upper is None or bound < spec.upper:
                spec.upper = bound
                spec.upper_strict = op is CompareOp.LT
        elif op in (CompareOp.GT, CompareOp.GE):
            if spec.lower is None or bound > spec.lower:
                spec.lower = bound
                spec.lower_strict = op is CompareOp.GT
        elif op is CompareOp.EQ:
            spec.lower = spec.upper = bound
            spec.lower_strict = spec.upper_strict = False
        else:
            continue
        used.append(comparison)
    if not used:
        return None, []
    return spec, used


def _string_comparison(
    variable: str, comparison: Comparison
) -> tuple[str | None, CompareOp | None]:
    """Normalize ``?v op 'c'`` / ``'c' op ?v`` to bound-on-variable form."""
    left, right = comparison.left, comparison.right
    flipped = {
        CompareOp.LT: CompareOp.GT,
        CompareOp.LE: CompareOp.GE,
        CompareOp.GT: CompareOp.LT,
        CompareOp.GE: CompareOp.LE,
        CompareOp.EQ: CompareOp.EQ,
        CompareOp.NE: CompareOp.NE,
    }
    if (
        isinstance(left, Var)
        and left.name == variable
        and isinstance(right, Const)
        and isinstance(right.value, str)
    ):
        return right.value, comparison.op
    if (
        isinstance(right, Var)
        and right.name == variable
        and isinstance(left, Const)
        and isinstance(left.value, str)
    ):
        return left.value, flipped[comparison.op]
    return None, None


def _variable_comparison(
    variable: str, comparison: Comparison
) -> tuple[float | None, CompareOp | None]:
    """Normalize ``?v op c`` / ``c op ?v`` to bound-on-variable form."""
    left, right = comparison.left, comparison.right
    if (
        isinstance(left, Var)
        and left.name == variable
        and isinstance(right, Const)
        and is_numeric(right.value)
    ):
        return float(right.value), comparison.op
    if (
        isinstance(right, Var)
        and right.name == variable
        and isinstance(left, Const)
        and is_numeric(left.value)
    ):
        flipped = {
            CompareOp.LT: CompareOp.GT,
            CompareOp.LE: CompareOp.GE,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GE: CompareOp.LE,
            CompareOp.EQ: CompareOp.EQ,
            CompareOp.NE: CompareOp.NE,
        }
        return float(left.value), flipped[comparison.op]
    return None, None


def _order_steps(steps: list[PlanStep]) -> tuple[list[PlanStep], list[Comparison]]:
    """Greedy selectivity ordering with bound-variable preference.

    Repeatedly pick the cheapest *executable* step: ``OID_JOIN`` needs its
    subject variable bound, ``SIMJOIN_PROBE`` its partner variable.  Steps
    sharing variables with the bound set get priority over cross products.

    Returns the ordered steps plus any filters that were pushed down at
    classification time but *reinstated* as residuals because their step
    was rewritten to a cheaper bind-join (the filter still has to run).
    """
    pending = list(steps)
    ordered: list[PlanStep] = []
    reinstated: list[Comparison] = []
    bound: set[str] = set()
    while pending:
        # A scan or range step whose subject is already bound is better
        # served by a batched oid lookup — rewrite before picking.  A
        # rewritten range step hands its comparisons back as residuals.
        for index, step in enumerate(pending):
            subject = step.pattern.subject
            if not (isinstance(subject, Var) and subject.name in bound):
                continue
            if step.method in (
                AccessMethod.SCAN,
                AccessMethod.RANGE,
                AccessMethod.STRING_RANGE,
            ):
                reinstated.extend(step.consumed_filters)
                pending[index] = PlanStep(
                    step.pattern,
                    AccessMethod.OID_JOIN,
                    cost_rank=_COST[AccessMethod.OID_JOIN],
                    estimated_rows=(
                        1.0 if step.estimated_rows is not None else None
                    ),
                )
        best_index = None
        best_score = None
        for index, step in enumerate(pending):
            if not _executable(step, bound):
                continue
            if step.estimated_rows is not None:
                # Cost-based: prefer the smallest estimated cardinality.
                score = step.estimated_rows
                if ordered and not (step.pattern.variables() & bound):
                    score += 1e12
            else:
                score = float(step.cost_rank)
                if ordered and not (step.pattern.variables() & bound):
                    score += _CROSS_PRODUCT_PENALTY
            if best_score is None or score < best_score:
                best_index = index
                best_score = score
        if best_index is None:
            # Remaining steps are all blocked; a pattern whose subject can
            # never be bound falls back to a scan of its predicate.
            step = pending[0]
            fallback = _unblock(step)
            if fallback is None:
                raise PlanningError(
                    f"pattern {step.pattern} cannot be planned: no access path"
                )
            pending[0] = fallback
            continue
        step = pending.pop(best_index)
        ordered.append(step)
        bound |= step.pattern.variables()
    return ordered, reinstated


def _estimate_rows(step: PlanStep, catalog) -> float:
    """Estimated output cardinality of one step under a catalog.

    Attributes absent from the catalog fall back to method-shaped default
    guesses so mixed plans still order sensibly.
    """
    predicate = step.pattern.predicate
    stats = None
    if isinstance(predicate, Const) and isinstance(predicate.value, str):
        stats = catalog.get(predicate.value)
    method = step.method
    if method is AccessMethod.EXACT:
        return stats.estimate_equality_rows() if stats else 1.0
    if method is AccessMethod.OID_JOIN:
        return 1.0  # one object per bound oid
    if method in (AccessMethod.STRING_SIMILARITY, AccessMethod.SIMJOIN_PROBE):
        assert step.similarity is not None
        d = step.similarity.edit_limit
        return stats.estimate_similarity_rows(d) if stats else 10.0 * (d + 1)
    if method is AccessMethod.NUMERIC_SIMILARITY:
        assert step.similarity is not None
        if stats and step.similarity.target is not None:
            center = float(step.similarity.target)  # type: ignore[arg-type]
            radius = step.similarity.numeric_limit
            return stats.estimate_range_rows(center - radius, center + radius)
        return 50.0
    if method is AccessMethod.RANGE:
        assert step.range is not None
        if stats:
            lo = step.range.lower if step.range.lower is not None else -1e308
            hi = step.range.upper if step.range.upper is not None else 1e308
            return stats.estimate_range_rows(lo, hi)
        return 100.0
    if method is AccessMethod.STRING_RANGE:
        return float(stats.row_count) / 4 if stats else 250.0
    if method is AccessMethod.TOP_N:
        return 25.0
    if method is AccessMethod.SCHEMA_SIMILARITY:
        return 200.0
    # SCAN: the whole attribute.
    return float(stats.row_count) if stats else 10_000.0


def _executable(step: PlanStep, bound: set[str]) -> bool:
    if step.method is AccessMethod.OID_JOIN:
        subject = step.pattern.subject
        return isinstance(subject, Const) or (
            isinstance(subject, Var) and subject.name in bound
        )
    if step.method is AccessMethod.SIMJOIN_PROBE:
        assert step.similarity is not None
        return step.similarity.partner_var in bound
    return True


def _unblock(step: PlanStep) -> PlanStep | None:
    """Fallback access for a blocked step (no bindable subject/partner)."""
    if isinstance(step.pattern.predicate, Const):
        return PlanStep(
            step.pattern, AccessMethod.SCAN, cost_rank=_COST[AccessMethod.SCAN]
        )
    return None


def _promote_top_n(steps: list[PlanStep], query: SelectQuery) -> None:
    """Mark the rank-aware shape for top-N push-down.

    Applies when the query has ``ORDER BY ?v ... LIMIT n`` and ``?v`` is
    the object of a const-predicate pattern currently planned as a plain
    SCAN — i.e. nothing more selective was available.  For ``NN`` the
    target literal rides along in the similarity spec; for ``ASC``/``DESC``
    the executor maps it onto ``MIN``/``MAX`` ranking (Algorithm 4).  The
    executor's overfetch loop keeps the push-down correct when later
    joins or residual filters drop rows.
    """
    order = query.order_by
    if order is None or query.limit is None:
        return
    for index, step in enumerate(steps):
        if step.method is not AccessMethod.SCAN:
            continue
        object_ = step.pattern.object
        if not isinstance(object_, Var) or object_.name != order.variable.name:
            continue
        if not isinstance(step.pattern.predicate, Const):
            continue
        similarity = None
        if order.is_nearest_neighbour:
            assert order.nn_target is not None
            similarity = SimilaritySpec(
                target=order.nn_target.value,
                partner_var=None,
                max_distance=float("inf"),
                strict=False,
            )
        steps[index] = PlanStep(
            step.pattern,
            AccessMethod.TOP_N,
            similarity=similarity,
            cost_rank=_COST[AccessMethod.TOP_N],
        )
        return
