"""VQL abstract syntax — the Vertical Query Language of Section 3.

VQL borrows SPARQL's surface syntax (SELECT–WHERE over triple patterns)
but none of its graph semantics: patterns range over the vertical triple
store, all conditions are conjunctive, and similarity is expressed with
the ``dist()`` function inside ``FILTER`` clauses.  ``ORDER BY ?v NN
'target'`` asks for nearest-neighbour ranking, and ``LIMIT``/``OFFSET``
complete the rank-aware forms.

The AST is deliberately small and immutable; the planner pattern-matches
on it directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import QueryError
from repro.storage.triple import ValueType


# -- terms ---------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A query variable, written ``?name``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Const:
    """A constant term: string, int or float."""

    value: ValueType

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


Term = Var | Const


@dataclass(frozen=True)
class TriplePattern:
    """One ``(subject, predicate, object)`` pattern.

    Any position may be a variable; a variable predicate is what enables
    schema-level queries (``(?d, ?a, ?id)`` in the paper's third example).
    """

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> set[str]:
        return {
            term.name
            for term in (self.subject, self.predicate, self.object)
            if isinstance(term, Var)
        }

    def __str__(self) -> str:
        return f"({self.subject},{self.predicate},{self.object})"


# -- filter expressions -----------------------------------------------------------


class CompareOp(enum.Enum):
    """Comparison operators allowed in FILTER expressions."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="


@dataclass(frozen=True)
class DistCall:
    """``dist(a, b)`` — edit distance for strings, |a-b| for numbers."""

    left: Term
    right: Term

    def variables(self) -> set[str]:
        return {t.name for t in (self.left, self.right) if isinstance(t, Var)}

    def __str__(self) -> str:
        return f"dist({self.left},{self.right})"


FilterOperand = Term | DistCall


@dataclass(frozen=True)
class Comparison:
    """One FILTER condition: ``operand op operand``."""

    left: FilterOperand
    op: CompareOp
    right: FilterOperand

    def variables(self) -> set[str]:
        result: set[str] = set()
        for operand in (self.left, self.right):
            if isinstance(operand, Var):
                result.add(operand.name)
            elif isinstance(operand, DistCall):
                result |= operand.variables()
        return result

    def is_distance_predicate(self) -> bool:
        """True for the canonical similarity shape ``dist(x, y) < d``."""
        return isinstance(self.left, DistCall) and self.op in (
            CompareOp.LT,
            CompareOp.LE,
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


# -- ordering ----------------------------------------------------------------------


class SortDirection(enum.Enum):
    ASC = "ASC"
    DESC = "DESC"


@dataclass(frozen=True)
class OrderBy:
    """``ORDER BY ?v [ASC|DESC]`` or ``ORDER BY ?v NN <const>``."""

    variable: Var
    direction: SortDirection = SortDirection.ASC
    nn_target: Const | None = None

    @property
    def is_nearest_neighbour(self) -> bool:
        return self.nn_target is not None

    def __str__(self) -> str:
        if self.nn_target is not None:
            return f"ORDER BY {self.variable} NN {self.nn_target}"
        return f"ORDER BY {self.variable} {self.direction.value}"


# -- the query ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelectQuery:
    """A complete VQL SELECT query."""

    select: tuple[Var, ...]
    patterns: tuple[TriplePattern, ...]
    filters: tuple[Comparison, ...] = ()
    order_by: OrderBy | None = None
    limit: int | None = None
    offset: int = 0

    def __post_init__(self) -> None:
        if not self.select:
            raise QueryError("SELECT clause must name at least one variable")
        if not self.patterns:
            raise QueryError("WHERE clause must contain at least one pattern")
        bound = self.pattern_variables()
        unknown = [v.name for v in self.select if v.name not in bound]
        if unknown:
            raise QueryError(
                f"selected variables not bound by any pattern: {unknown}"
            )
        for comparison in self.filters:
            loose = comparison.variables() - bound
            if loose:
                raise QueryError(
                    f"filter {comparison} uses unbound variables: {sorted(loose)}"
                )
        if self.order_by is not None and self.order_by.variable.name not in bound:
            raise QueryError(
                f"ORDER BY variable {self.order_by.variable} is unbound"
            )
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"LIMIT must be >= 0, got {self.limit}")
        if self.offset < 0:
            raise QueryError(f"OFFSET must be >= 0, got {self.offset}")

    def pattern_variables(self) -> set[str]:
        """All variable names bound by the WHERE patterns."""
        names: set[str] = set()
        for pattern in self.patterns:
            names |= pattern.variables()
        return names

    def __str__(self) -> str:
        parts = ["SELECT " + ",".join(str(v) for v in self.select)]
        body = " ".join(str(p) for p in self.patterns)
        body += "".join(f" FILTER ({f})" for f in self.filters)
        parts.append("WHERE { " + body + " }")
        if self.order_by is not None:
            parts.append(str(self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)
