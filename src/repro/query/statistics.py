"""Attribute statistics and selectivity estimation.

The paper defers cost-based optimization ("which of these two approaches,
or any other, more sophisticated, strategy, is used is a choice depending
on cost optimizations, which is part of our ongoing work").  This module
implements that ongoing work in its natural P-Grid form:

* :class:`AttributeStatistics` — per-attribute summaries: row count,
  distinct values, numeric min/max and an equi-width histogram, mean
  string length;
* :class:`StatisticsCatalog` — collected by *sampling the overlay*: the
  collector routes into an attribute's key region, asks a few partitions
  for their local summaries (cheap, charged messages), and extrapolates
  by the sampled fraction — the same local-density idea Algorithm 4 uses
  for its first range estimate, generalized;
* selectivity estimators used by the cost-based planner: expected rows
  for exact lookups, ranges, and similarity predicates.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.errors import QueryError
from repro.query.operators.base import OperatorContext
from repro.storage.indexing import EntryKind
from repro.storage.triple import is_numeric

#: Histogram buckets for numeric attributes.
HISTOGRAM_BUCKETS = 16


@dataclass
class AttributeStatistics:
    """Summary of one attribute's stored values."""

    attribute: str
    row_count: int = 0
    distinct_estimate: int = 0
    numeric_min: float | None = None
    numeric_max: float | None = None
    histogram: list[int] = field(default_factory=list)
    mean_string_length: float = 0.0
    string_rows: int = 0
    numeric_rows: int = 0
    #: Stored instance-gram entries for this attribute (extrapolated like
    #: ``row_count``) and the distinct gram texts seen — the cost model's
    #: handle on q-gram posting-list lengths.
    gram_rows: int = 0
    distinct_gram_estimate: int = 0

    @property
    def is_numeric(self) -> bool:
        return self.numeric_rows >= self.string_rows

    # -- selectivity estimators ---------------------------------------------------

    def estimate_equality_rows(self) -> float:
        """Expected rows for ``attribute = v`` (uniform over distinct)."""
        if self.distinct_estimate <= 0:
            return 0.0
        return self.row_count / self.distinct_estimate

    def estimate_range_rows(self, lo: float, hi: float) -> float:
        """Expected rows for ``lo <= attribute <= hi`` via the histogram."""
        if (
            self.numeric_min is None
            or self.numeric_max is None
            or not self.histogram
        ):
            return float(self.row_count)
        if hi < self.numeric_min or lo > self.numeric_max:
            return 0.0
        span = self.numeric_max - self.numeric_min
        if span <= 0:
            return float(self.numeric_rows)
        width = span / len(self.histogram)
        rows = 0.0
        for index, bucket in enumerate(self.histogram):
            b_lo = self.numeric_min + index * width
            b_hi = b_lo + width
            overlap = min(hi, b_hi) - max(lo, b_lo)
            if overlap <= 0:
                continue
            rows += bucket * min(1.0, overlap / width)
        return rows

    def estimate_gram_postings(self) -> float:
        """Expected posting-list length of one instance-gram key.

        Gram entries spread over the distinct gram texts of the
        attribute's values; with no gram statistics the estimate falls
        back to zero, which keeps the cost model purely structural.
        """
        if self.distinct_gram_estimate <= 0:
            return 0.0
        return self.gram_rows / self.distinct_gram_estimate

    # -- delta maintenance --------------------------------------------------------

    def apply_value_delta(self, value, sign: int, q: int, count_grams: bool) -> None:
        """Patch this summary for one inserted (``sign=+1``) or deleted
        (``sign=-1``) triple value.

        Counts (rows, numeric/string split, gram rows, the string-length
        mean) are maintained exactly for the applied delta; the *sampled*
        parts of the summary degrade gracefully instead of being
        recomputed: the distinct estimates stay put (a single write
        rarely moves them, and they only feed orderings), inserts expand
        numeric min/max and the matching histogram bucket, and deletes
        leave min/max alone (shrinking them would need a rescan) while
        decrementing the bucket.  The result is a catalog that tracks
        mutation direction without re-sampling the overlay — the
        wholesale alternative the delta-maintenance arc replaces.
        """
        self.row_count = max(0, self.row_count + sign)
        if is_numeric(value):
            v = float(value)
            self.numeric_rows = max(0, self.numeric_rows + sign)
            if sign > 0:
                if self.numeric_min is None or v < self.numeric_min:
                    self.numeric_min = v
                if self.numeric_max is None or v > self.numeric_max:
                    self.numeric_max = v
            if (
                self.histogram
                and self.numeric_min is not None
                and self.numeric_max is not None
            ):
                span = self.numeric_max - self.numeric_min
                if span > 0 and self.numeric_min <= v <= self.numeric_max:
                    index = min(
                        len(self.histogram) - 1,
                        int((v - self.numeric_min) / span * len(self.histogram)),
                    )
                    self.histogram[index] = max(0, self.histogram[index] + sign)
        else:
            text = str(value)
            previous_rows = self.string_rows
            self.string_rows = max(0, self.string_rows + sign)
            if self.string_rows > 0:
                self.mean_string_length = max(
                    0.0,
                    (self.mean_string_length * previous_rows + sign * len(text))
                    / self.string_rows,
                )
            else:
                self.mean_string_length = 0.0
            if count_grams:
                # ``len + q - 1`` extended grams per string value (see
                # ``repro.storage.qgrams.positional_qgrams``).
                self.gram_rows = max(0, self.gram_rows + sign * (len(text) + q - 1))

    def estimate_similarity_rows(self, d: int) -> float:
        """Expected rows within edit distance ``d`` of a random string.

        A crude but monotone model: a ball of radius ``d`` in edit space
        over strings of mean length ``L`` covers roughly ``(c·L)^d``
        strings out of ``Σ^L`` — which collapses, for estimation purposes,
        to ``equality_rows · growth^d`` with an empirical per-edit growth
        factor.  What the planner needs is the *ordering* (d=1 before
        d=3, similarity before scan), which this provides.
        """
        growth = max(4.0, 1.5 * max(self.mean_string_length, 1.0))
        return min(
            float(self.row_count), self.estimate_equality_rows() * growth**d
        )


@dataclass
class StatisticsCatalog:
    """Per-attribute statistics, keyed by qualified attribute name."""

    by_attribute: dict[str, AttributeStatistics] = field(default_factory=dict)
    sampled_fraction: float = 1.0

    def get(self, attribute: str) -> AttributeStatistics | None:
        return self.by_attribute.get(attribute)

    def attributes(self) -> list[str]:
        return sorted(self.by_attribute)

    def apply_triples_delta(self, triples, sign: int, config) -> int:
        """Patch per-attribute summaries for an applied write.

        Called by the engine's explicit write path with the exact triples
        it inserted (``sign=+1``) or deleted (``sign=-1``); only
        attributes that have been ``analyze``-d carry summaries and are
        patched — writes to never-analyzed attributes cost nothing here.
        Returns the number of triples that patched a summary.
        """
        if sign not in (-1, 1):
            raise QueryError(f"delta sign must be +1 or -1, got {sign}")
        patched = 0
        count_grams = config.index_instance_grams
        for triple in triples:
            stats = self.by_attribute.get(triple.attribute)
            if stats is None:
                continue
            stats.apply_value_delta(triple.value, sign, config.q, count_grams)
            patched += 1
        return patched


def collect_statistics(
    ctx: OperatorContext,
    attributes: Sequence[str],
    sample_partitions: int = 4,
    initiator_id: int | None = None,
) -> StatisticsCatalog:
    """Sample the overlay and build a catalog for ``attributes``.

    For each attribute the collector contacts up to ``sample_partitions``
    evenly spaced partitions of the attribute's key region (one routed
    walk plus forwards, plus one summary-sized result message each) and
    extrapolates counts by the sampled fraction of the region.
    """
    if sample_partitions < 1:
        raise QueryError("need at least one sampled partition")
    if initiator_id is None:
        initiator_id = ctx.random_initiator()
    catalog = StatisticsCatalog()
    for attribute in attributes:
        catalog.by_attribute[attribute] = _collect_one(
            ctx, attribute, sample_partitions, initiator_id
        )
    return catalog


def _collect_one(
    ctx: OperatorContext,
    attribute: str,
    sample_partitions: int,
    initiator_id: int,
) -> AttributeStatistics:
    network = ctx.network
    prefix = ctx.codec.attr_prefix(attribute)
    region = network.partitions_under(prefix)
    step = max(1, len(region) // sample_partitions)
    sampled = region[::step][:sample_partitions]
    fraction = len(sampled) / len(region) if region else 1.0

    stats = AttributeStatistics(attribute=attribute)
    values_numeric: list[float] = []
    lengths: list[int] = []
    distinct: set = set()
    distinct_grams: set = set()
    gram_rows = 0
    entry_peer = ctx.router.route(sampled[0].path, initiator_id, phase="stats")
    previous = entry_peer
    for partition in sampled:
        if partition.contains(previous.peer_id):
            peer = previous
        else:
            peer = network.peer(partition.peer_ids[0])
            from repro.overlay.messages import MessageType

            network.tracer.send(
                MessageType.FORWARD, previous.peer_id, peer.peer_id, phase="stats"
            )
            previous = peer
        local = 0
        for entry in peer.store.prefix_scan(prefix):
            if entry.triple.attribute != attribute:
                continue
            if entry.kind is EntryKind.INSTANCE_GRAM:
                gram_rows += 1
                distinct_grams.add(entry.gram)
                continue
            if entry.kind is not EntryKind.ATTR_VALUE:
                continue
            local += 1
            value = entry.triple.value
            distinct.add(value)
            if is_numeric(value):
                values_numeric.append(float(value))
            else:
                lengths.append(len(str(value)))
        # One fixed-size summary per sampled partition travels back.
        ctx.router.send_result(peer.peer_id, initiator_id, 64, phase="stats")
        stats.row_count += local

    scale = 1.0 / fraction if fraction > 0 else 1.0
    stats.row_count = int(round(stats.row_count * scale))
    stats.distinct_estimate = max(1, int(round(len(distinct) * scale)))
    stats.gram_rows = int(round(gram_rows * scale))
    # Gram entries are keyed by gram text, so disjoint partitions hold
    # disjoint gram sets and the distinct count extrapolates linearly —
    # exactly like ``gram_rows``.  Keeping the raw sampled count instead
    # would divide a region-wide numerator by a few-partitions
    # denominator and overstate posting lists by orders of magnitude
    # (pushing the cost model toward naive broadcasts).  The resulting
    # postings estimate is the within-sample rows-per-gram ratio, which
    # is frequency-weighted — the right weighting for grams of query
    # strings drawn from the stored corpus.
    stats.distinct_gram_estimate = max(1, int(round(len(distinct_grams) * scale)))
    stats.numeric_rows = int(round(len(values_numeric) * scale))
    stats.string_rows = int(round(len(lengths) * scale))
    if values_numeric:
        stats.numeric_min = min(values_numeric)
        stats.numeric_max = max(values_numeric)
        stats.histogram = _build_histogram(
            values_numeric, stats.numeric_min, stats.numeric_max, scale
        )
    if lengths:
        stats.mean_string_length = sum(lengths) / len(lengths)
    return stats


def _build_histogram(
    values: list[float], lo: float, hi: float, scale: float
) -> list[int]:
    buckets = [0.0] * HISTOGRAM_BUCKETS
    span = hi - lo
    if span <= 0:
        buckets[0] = len(values)
    else:
        for value in values:
            index = min(
                HISTOGRAM_BUCKETS - 1, int((value - lo) / span * HISTOGRAM_BUCKETS)
            )
            buckets[index] += 1
    return [int(math.ceil(b * scale)) for b in buckets]
