"""The unified query facade: :class:`QueryEngine`.

One object owns everything a query needs — the network, the statistics
catalog, the planner/executor pair, the whole-workload memos
(:class:`~repro.query.operators.naive.NaiveWorkloadMemo`,
:class:`~repro.query.operators.similar.GramScanMemo`,
:class:`~repro.query.operators.base.FetchObjectsMemo`), the shared
:class:`~repro.similarity.verify.VerifierPool`, and the cost model that
resolves ``SimilarityStrategy.ADAPTIVE`` — so every entry point (the
shell, the examples, the benchmark harness, library users) gets the same
wiring instead of hand-assembling an
:class:`~repro.query.operators.base.OperatorContext`.

Typical use::

    from repro import QueryEngine, StoreConfig, Triple

    engine = QueryEngine.build(
        n_peers=256,
        triples=my_triples,
        config=StoreConfig(seed=7),
        strategy="adaptive",
    )
    engine.analyze(["car:name"])             # feed the cost model
    result = engine.query(
        "SELECT ?n WHERE { (?o,car:name,?n) FILTER (dist(?n,'BMW') < 2) }"
    )
    for decision in result.cost.decisions:   # what adaptive mode picked
        print(decision.summary())

Memo validity — the static-store contract — is *enforced* here: the
engine snapshots the network-wide mutation token (the sum of every
:class:`~repro.storage.datastore.LocalDataStore` mutation counter) and
re-checks it on every recorded operation; any change drops all memos at
once.  The memos additionally carry per-entry version checks, so even a
mutation slipping between checks can never replay stale data.

:class:`repro.core.store.VerticalStore` — the facade of earlier PRs —
subclasses this engine, adding only the record/relation insert helpers,
so existing code keeps working unchanged.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from contextlib import contextmanager

from dataclasses import dataclass, field

from repro.core.config import RankFunction, SimilarityStrategy, StoreConfig
from repro.core.errors import ConfigError
from repro.core.stats import QueryStats
from repro.overlay.churn import ChurnController, ChurnReport
from repro.overlay.fanout import FanOutExecutor
from repro.overlay.faults import FaultInjector, FaultMode, FaultPlan, RetryPolicy
from repro.overlay.messages import CostReport, MessageTracer
from repro.overlay.network import PGridNetwork
from repro.query.cost import StrategyCostModel, StrategyDecision
from repro.query.executor import Executor, QueryResult
from repro.query.operators.base import (
    FetchObjectsMemo,
    MatchedObject,
    OperatorContext,
)
from repro.query.operators.exact import (
    keyword_lookup,
    lookup_object,
    select_equals,
)
from repro.query.operators.naive import NaiveWorkloadMemo
from repro.query.operators.range_scan import numeric_similar
from repro.query.operators.similar import GramScanMemo, SimilarResult, similar
from repro.query.operators.simjoin import SimJoinResult, anchored_sim_join, sim_join
from repro.query.operators.topn import TopNResult, top_n_numeric, top_n_string_nn
from repro.similarity.filters import FilterConfig
from repro.similarity.kernels import EditKernel, resolve_kernel
from repro.similarity.verify import DEFAULT_POOL_LIMIT, VerifierPool
from repro.storage.triple import Triple, ValueType

if True:  # deferred import target for type checkers
    from typing import TYPE_CHECKING

    if TYPE_CHECKING:  # pragma: no cover
        from repro.bench.latency import LatencyModel
        from repro.query.statistics import StatisticsCatalog


@dataclass
class RecoveryReport:
    """What one :meth:`QueryEngine.recover` call did.

    ``divergent_partitions`` lists the partitions anti-entropy repair had
    to touch (replicas that missed writes while offline); exactly these
    partitions' memo entries were invalidated — zero divergence means
    zero invalidation.
    """

    recovered_peers: int = 0
    divergent_partitions: list[int] = field(default_factory=list)
    entries_copied: int = 0

    @property
    def data_changed(self) -> bool:
        return bool(self.divergent_partitions)


class QueryEngine:
    """Query processing over one populated network, fully wired.

    Parameters
    ----------
    network:
        The overlay to query.
    strategy:
        Default similarity strategy (enum, name string, or ``None`` for
        the network config's; ``"adaptive"`` turns on cost-based
        selection).
    catalog:
        A pre-collected statistics catalog; usually left ``None`` and
        filled via :meth:`analyze`.
    latency_model:
        Cost constants for the latency leg of predictions.
    memoize:
        Master switch for the three whole-workload memos; the
        ``memoize_*`` keywords override it individually (the benchmark
        ablations need that).
    share_verifiers:
        Install a shared :class:`~repro.similarity.verify.VerifierPool`.
    edit_kernel:
        Edit-distance kernel for the final verification step — an
        :class:`~repro.similarity.kernels.EditKernel` instance, a name
        (``"auto"``/``"reference"``/``"myers"``), or ``None`` for the
        process default (the strictly-parsed ``REPRO_EDIT_KERNEL``
        environment variable, falling back to ``auto`` = Myers
        bit-parallel with the numpy prefilter when importable).
        Kernels change wall-clock only; every match set and measured
        message/byte series is kernel-independent.
    verifier_pool_limit:
        Bound on live verifiers in the shared pool (LRU eviction beyond
        it); ``None`` keeps the pool default.  Distance memos are
        store-independent, so eviction is always safe.
    naive_sample_rate:
        Default sampled-broadcast estimator rate for contexts built by
        this engine (0 = exact).
    parallel_fanout:
        Thread count (>= 2) for the intra-query fan-out: per-peer
        delegate work (gram-peer candidate scans, naive region
        comparisons, broadcast query copies) runs on a
        :class:`~repro.overlay.fanout.FanOutExecutor` owned by this
        engine, with charges merged deterministically so every measured
        series stays bit-identical to the serial reference path.
        ``None``/``0``/``1`` (the default) keeps everything serial.
        Engines with a fan-out installed should be :meth:`close`\\ d (or
        used as context managers) to release the pool's threads.
    memo_maintenance:
        What a mutation routed through the engine's write path
        (:meth:`insert`, :meth:`delete`, :meth:`recover`) does to the
        workload memos and statistics: ``"delta"`` (the default)
        invalidates only the affected key partitions' memo entries and
        patches the statistics catalog in place; ``"drop"`` reproduces
        the pre-delta behaviour (every memo cleared wholesale, catalog
        untouched) — kept for the mutation benchmark's baseline arm.
        Out-of-band store changes (anything mutating a peer's store
        without going through the engine) still trip
        :meth:`check_mutations` and drop everything, in both modes.
    """

    #: Valid ``memo_maintenance`` modes.
    MEMO_MAINTENANCE_MODES = ("delta", "drop")

    def __init__(
        self,
        network: PGridNetwork,
        strategy: SimilarityStrategy | str | None = None,
        catalog: "StatisticsCatalog | None" = None,
        latency_model: "LatencyModel | None" = None,
        memoize: bool = True,
        memoize_naive: bool | None = None,
        memoize_gram_scans: bool | None = None,
        memoize_fetches: bool | None = None,
        share_verifiers: bool = True,
        naive_sample_rate: float = 0.0,
        parallel_fanout: int | None = None,
        memo_maintenance: str = "delta",
        edit_kernel: EditKernel | str | None = None,
        verifier_pool_limit: int | None = None,
    ):
        self.network = network
        self.config = network.config
        if memo_maintenance not in self.MEMO_MAINTENANCE_MODES:
            raise ConfigError(
                f"memo_maintenance must be one of "
                f"{self.MEMO_MAINTENANCE_MODES}, got {memo_maintenance!r}"
            )
        self.memo_maintenance = memo_maintenance
        self._churn: ChurnController | None = None
        if isinstance(strategy, str):
            strategy = SimilarityStrategy.from_name(strategy)

        def flag(override: bool | None) -> bool:
            return memoize if override is None else override

        self.naive_memo = (
            NaiveWorkloadMemo(network) if flag(memoize_naive) else None
        )
        self.gram_scan_memo = (
            GramScanMemo(network) if flag(memoize_gram_scans) else None
        )
        self.fetch_memo = (
            FetchObjectsMemo(network) if flag(memoize_fetches) else None
        )
        self.edit_kernel = resolve_kernel(edit_kernel)
        self.verifier_pool = (
            VerifierPool(
                kernel=self.edit_kernel,
                max_verifiers=(
                    verifier_pool_limit
                    if verifier_pool_limit is not None
                    else DEFAULT_POOL_LIMIT
                ),
            )
            if share_verifiers
            else None
        )
        self.fanout = (
            FanOutExecutor(parallel_fanout)
            if parallel_fanout is not None and parallel_fanout > 1
            else None
        )
        self.cost_model = StrategyCostModel(network, latency_model)
        self.naive_sample_rate = naive_sample_rate
        self._filters = FilterConfig(
            use_position=self.config.enable_position_filter,
            use_length=self.config.enable_length_filter,
        )
        self._mutation_token = network.store_version_token()
        if catalog is None:
            # Start with an empty catalog object (not None) so every
            # context derived from this engine — including ones created
            # before the first ``analyze`` — shares the same instance
            # and sees later statistics; ``analyze`` merges in place.
            from repro.query.statistics import StatisticsCatalog

            catalog = StatisticsCatalog()
        self.ctx = self.context(
            strategy=strategy if strategy is not None else self.config.strategy,
            rng=random.Random(self.config.seed + 3),
            catalog=catalog,
        )
        self.executor = Executor(self.ctx)
        self.stats = QueryStats()

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        n_peers: int,
        triples: Sequence[Triple] = (),
        config: StoreConfig | None = None,
        strategy: SimilarityStrategy | str | None = None,
        **engine_options,
    ) -> "QueryEngine":
        """Build a network sized for ``triples``, bulk-load, and wrap it.

        The trie is balanced against the actual index-entry keys the data
        will produce (P-Grid's load balancing), then the entries are
        placed.  Use :meth:`insert` afterwards for incremental additions.
        """
        config = config if config is not None else StoreConfig()
        tracer = MessageTracer()
        probe = PGridNetwork(1, config, tracer=MessageTracer())
        sample_keys = [
            entry.key for entry in probe.entry_factory.entries_for_all(triples)
        ]
        network = PGridNetwork(n_peers, config, sample_keys=sample_keys, tracer=tracer)
        if triples:
            network.insert_triples(triples)
        return cls(network, strategy=strategy, **engine_options)

    # -- context wiring ------------------------------------------------------------

    def context(
        self,
        strategy: SimilarityStrategy | str | None = None,
        rng: random.Random | None = None,
        naive_sample_rate: float | None = None,
        catalog: "StatisticsCatalog | None" = None,
    ) -> OperatorContext:
        """A fresh :class:`OperatorContext` sharing this engine's wiring.

        Benchmark replays build one context per strategy; each shares the
        engine's memos, verifier pool, cost model and catalog, while the
        RNG defaults to the same fresh seed an unwired context would use
        (bit-identical series with the pre-engine harness).
        """
        if isinstance(strategy, str):
            strategy = SimilarityStrategy.from_name(strategy)
        if catalog is None:
            primary = getattr(self, "ctx", None)
            catalog = primary.catalog if primary is not None else None
        return OperatorContext(
            self.network,
            strategy=strategy,
            filters=self._filters,
            rng=rng,
            naive_memo=self.naive_memo,
            naive_sample_rate=(
                self.naive_sample_rate
                if naive_sample_rate is None
                else naive_sample_rate
            ),
            verifier_pool=self.verifier_pool,
            edit_kernel=self.edit_kernel,
            gram_scan_memo=self.gram_scan_memo,
            fetch_memo=self.fetch_memo,
            catalog=catalog,
            cost_model=self.cost_model,
            fanout=self.fanout,
        )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release owned resources (the fan-out thread pool); idempotent.

        Engines without a fan-out installed hold no threads, so calling
        this is optional for them — but harness code that may enable
        ``parallel_fanout`` should always close (or use ``with``).
        """
        if self.fanout is not None:
            self.fanout.shutdown()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- memo lifecycle -----------------------------------------------------------

    def check_mutations(self) -> bool:
        """Drop all workload memos if any peer's store changed.

        Compares the network-wide mutation token
        (:meth:`~repro.overlay.network.PGridNetwork.store_version_token`)
        against the last reading; called automatically by every recorded
        operation and by :meth:`insert`.  Returns True when memos were
        cleared.
        """
        token = self.network.store_version_token()
        if token == self._mutation_token:
            return False
        self._mutation_token = token
        self.clear_memos()
        return True

    def clear_memos(self) -> None:
        """Unconditionally drop every whole-workload memo."""
        for memo in (self.naive_memo, self.gram_scan_memo, self.fetch_memo):
            if memo is not None:
                memo.clear()

    # -- transport faults --------------------------------------------------------------

    def install_faults(
        self,
        plan: FaultPlan,
        policy: RetryPolicy | None = None,
        mode: FaultMode | str | None = None,
    ) -> FaultInjector:
        """Put a seeded :class:`FaultPlan` on the network's delivery path.

        ``policy`` tunes retry/backoff/failover (defaults to
        :class:`RetryPolicy`); ``mode`` optionally switches
        :attr:`fault_mode` in the same call.  A no-op plan leaves every
        measured series bit-identical (the injector stays inactive).
        """
        injector = self.network.install_faults(plan, policy)
        if mode is not None:
            self.fault_mode = mode
        return injector

    def clear_faults(self) -> None:
        """Return to the healthy, fault-free transport."""
        self.network.clear_faults()

    @property
    def fault_mode(self) -> str:
        """``"strict"`` (raise on dark partitions) or ``"degraded"``.

        Degraded semantics: when retries and replica failover are
        exhausted, operators return partial results and the query's
        :class:`~repro.overlay.messages.CostReport` carries a
        :class:`~repro.overlay.faults.Completeness` record (covered
        key-space fraction, dark partitions, dropped candidates) instead
        of the operation raising.
        """
        return self.network.fault_mode.value

    @fault_mode.setter
    def fault_mode(self, value: FaultMode | str) -> None:
        self.network.fault_mode = FaultMode.from_name(value)

    # -- data management --------------------------------------------------------------

    def insert(self, triples: Iterable[Triple], respect_online: bool = False) -> int:
        """Index and place triples; returns the number of entries stored.

        The explicit write path: the per-mutation effect is mapped to the
        affected key partitions, and — in ``"delta"`` maintenance mode —
        only those partitions' memo entries are invalidated while the
        statistics catalog is patched in place (``"drop"`` mode clears
        every memo wholesale instead).  ``respect_online`` skips offline
        replicas — the churn setting, where inserting while a replica is
        down leaves it divergent until anti-entropy repair
        (:meth:`recover`).
        """
        triples = list(triples)
        entries = list(self.network.entry_factory.entries_for_all(triples))
        applied, affected = self.network.apply_entries(
            entries, respect_online=respect_online
        )
        self._note_write(affected)
        self._patch_statistics(triples, sign=+1)
        return applied

    def delete(self, triples: Iterable[Triple], respect_online: bool = False) -> int:
        """Remove triples' index entries; returns entries actually removed.

        The inverse of :meth:`insert`: callers pass the exact triples to
        retract, every index entry they induced is removed from the
        responsible partitions' (optionally only online) replicas, and
        memo/statistics maintenance follows the same partition-scoped
        delta path.  Deleting triples that were never stored is a no-op
        that invalidates nothing.
        """
        triples = list(triples)
        entries = list(self.network.entry_factory.entries_for_all(triples))
        applied, affected = self.network.apply_entries(
            entries, respect_online=respect_online, remove=True
        )
        self._note_write(affected)
        if applied:
            self._patch_statistics(triples, sign=-1)
        return applied

    # -- churn ------------------------------------------------------------------------

    @property
    def churn(self) -> ChurnController:
        """The engine-owned churn driver (created lazily, seeded)."""
        if self._churn is None:
            self._churn = ChurnController(
                self.network, seed=self.config.seed + 29
            )
        return self._churn

    def fail_peers(
        self, peer_ids: Sequence[int], protect_partitions: bool = False
    ) -> ChurnReport:
        """Take specific peers offline through the engine.

        Going offline changes no store, so no memo entry or statistic is
        touched — partition-keyed memos stay valid because replicas hold
        identical data and cached entries carry per-store version checks.
        This is the churn half of the write path: stores can no longer
        change behind the engine's back, and peer failure/recovery is
        explicit instead of reaching into the network.
        """
        return self.churn.fail_peers(
            list(peer_ids), protect_partitions=protect_partitions
        )

    def fail_fraction(
        self, fraction: float, protect_partitions: bool = True
    ) -> ChurnReport:
        """Take a random fraction of peers offline through the engine."""
        return self.churn.fail_fraction(
            fraction, protect_partitions=protect_partitions
        )

    def recover(
        self, repair: bool = True, charge_messages: bool = False
    ) -> "RecoveryReport":
        """Bring every offline peer back; optionally run anti-entropy.

        Recovery alone changes no store.  With ``repair`` (the default)
        the engine audits replica consistency and repairs each divergent
        partition (writes missed while a replica was down), then
        invalidates exactly the repaired partitions' memo entries — a
        fail/recover cycle with zero net data change leaves every memo
        intact, where the old wholesale path dropped them all.
        ``charge_messages`` prices the anti-entropy traffic on the tracer
        under the ``repair`` phase.
        """
        from repro.overlay.replication import audit_replicas, repair_partition

        recovered = self.churn.recover_all()
        report = RecoveryReport(recovered_peers=recovered)
        if not repair:
            return report
        audit = audit_replicas(self.network)
        report.divergent_partitions = list(audit.divergent_partitions)
        for partition_index in audit.divergent_partitions:
            report.entries_copied += repair_partition(
                self.network, partition_index, charge_messages=charge_messages
            )
        if report.divergent_partitions:
            self._note_write(set(report.divergent_partitions))
        return report

    # -- write-path maintenance ---------------------------------------------------------

    def _note_write(self, affected: set[int]) -> None:
        """Apply one engine-routed write's memo effect.

        Re-reads the network mutation token (so :meth:`check_mutations`
        does not later mistake this write for an out-of-band one), then
        invalidates per the maintenance mode: only ``affected``
        partitions' memo entries in ``"delta"`` mode, everything in
        ``"drop"`` mode.
        """
        self._mutation_token = self.network.store_version_token()
        if not affected:
            return
        if self.memo_maintenance == "drop":
            self.clear_memos()
            return
        for memo in (self.naive_memo, self.gram_scan_memo, self.fetch_memo):
            if memo is not None:
                memo.invalidate_partitions(affected)

    def _patch_statistics(self, triples: Sequence[Triple], sign: int) -> None:
        """Delta-maintain the statistics catalog for an applied write."""
        catalog = self.ctx.catalog
        if catalog is not None and catalog.by_attribute:
            catalog.apply_triples_delta(triples, sign, self.config)

    # -- VQL ----------------------------------------------------------------------------

    def query(self, text: str, initiator_id: int | None = None) -> QueryResult:
        """Parse, plan and execute a VQL query; records its cost.

        When :meth:`analyze` has been run, plans are ordered by estimated
        cardinalities from the collected statistics, and adaptive-mode
        strategy decisions (with predicted and measured cost) ride on
        ``result.cost.decisions``.
        """
        self.check_mutations()
        session = self._begin_fault_session()
        verifier_before = self._verifier_snapshot()
        result = self.executor.execute_text(text, initiator_id)
        result.cost.verifier = self._verifier_delta(verifier_before)
        if session is not None:
            result.cost.completeness = session.completeness()
        self._last_cost = result.cost
        self.stats.record(result.cost)
        return result

    def analyze(
        self,
        attributes: Sequence[str],
        sample_partitions: int = 4,
    ) -> "StatisticsCatalog":
        """Collect overlay statistics for ``attributes`` (cost charged).

        The catalog is retained on the engine's context and consulted by
        both the cost-based planner and the adaptive strategy selection.
        Repeated calls merge: each attribute keeps its latest summary.
        """
        from repro.query.statistics import collect_statistics

        with self.recorded():
            collected = collect_statistics(
                self.ctx, attributes, sample_partitions
            )
        if self.ctx.catalog is None:
            self.ctx.catalog = collected
        else:
            # Merge in place: contexts handed out before this call share
            # the catalog object by reference and must see the update.
            self.ctx.catalog.by_attribute.update(collected.by_attribute)
        return self.ctx.catalog

    def explain(self, text: str) -> str:
        """The physical plan VQL text would execute, without running it."""
        from repro.query.parser import parse
        from repro.query.planner import plan

        return plan(parse(text), self.ctx.catalog).explain()

    # -- cost model access -------------------------------------------------------------

    def predict_similar(
        self, search: str, attribute: str, d: int
    ) -> dict[str, "object"]:
        """Per-strategy cost predictions for one similarity query."""
        return self.cost_model.predict_all(
            search, attribute, d, catalog=self.ctx.catalog
        )

    def last_decisions(self) -> list[StrategyDecision]:
        """Adaptive decisions of the most recent recorded operation."""
        return list(self._last_cost.decisions)

    # -- direct operator access ------------------------------------------------------------

    def similar(
        self,
        search: str,
        attribute: str,
        d: int,
        strategy: SimilarityStrategy | str | None = None,
    ) -> SimilarResult:
        """``Similar(s, a, d)`` — instance level; ``attribute=''`` for schema."""
        if isinstance(strategy, str):
            strategy = SimilarityStrategy.from_name(strategy)
        with self.recorded():
            return similar(self.ctx, search, attribute, d, strategy=strategy)

    def similar_numeric(
        self, attribute: str, center: float, distance: float
    ) -> list[MatchedObject]:
        """Numeric similarity: values within ``distance`` of ``center``."""
        with self.recorded():
            return numeric_similar(self.ctx, attribute, center, distance)

    def sim_join(
        self, left_attribute: str, right_attribute: str, d: int, **kwargs
    ) -> SimJoinResult:
        """``SimJoin(ln, rn, d)`` over the full left column (Algorithm 3)."""
        with self.recorded():
            return sim_join(self.ctx, left_attribute, right_attribute, d, **kwargs)

    def sim_join_anchored(
        self, left_attribute: str, search: str, right_attribute: str, d: int
    ) -> SimJoinResult:
        """The evaluation workload's anchored similarity join."""
        with self.recorded():
            return anchored_sim_join(
                self.ctx, left_attribute, search, right_attribute, d
            )

    def top_n(
        self,
        attribute: str,
        n: int,
        rank: RankFunction | str = RankFunction.NN,
        reference: float = 0.0,
    ) -> TopNResult:
        """Numeric top-N (Algorithm 4) with MIN/MAX/NN ranking."""
        if isinstance(rank, str):
            rank = RankFunction(rank.upper())
        with self.recorded():
            return top_n_numeric(
                self.ctx, attribute, n, rank, reference, fetch_full_objects=True
            )

    def top_n_string(
        self, attribute: str, search: str, n: int, max_distance: int = 5
    ) -> TopNResult:
        """String nearest-neighbour top-N (iterative deepening)."""
        with self.recorded():
            return top_n_string_nn(self.ctx, attribute, search, n, max_distance)

    def lookup(self, oid: str) -> tuple[Triple, ...]:
        """Fetch the complete object stored under ``key(oid)``."""
        with self.recorded():
            return lookup_object(self.ctx, oid)

    def select(self, attribute: str, value: ValueType) -> list[MatchedObject]:
        """Exact selection ``attribute = value``."""
        with self.recorded():
            return select_equals(self.ctx, attribute, value)

    def keyword(self, value: ValueType) -> list[Triple]:
        """Keyword query: triples with ``value`` under any attribute."""
        with self.recorded():
            return keyword_lookup(self.ctx, value)

    # -- introspection -------------------------------------------------------------------------

    @property
    def n_peers(self) -> int:
        return self.network.n_peers

    @property
    def store_version(self) -> int:
        """The network-wide store mutation token, as currently stored.

        Monotone: every store write anywhere bumps it.  The service layer
        exposes it so clients can tell which store state an answer (or a
        ``/stats`` reading) reflects.
        """
        return self.network.store_version_token()

    def memo_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/invalidation counters of every installed memo."""
        stats: dict[str, dict[str, int]] = {}
        for name, memo in (
            ("naive", self.naive_memo),
            ("gram_scan", self.gram_scan_memo),
            ("fetch", self.fetch_memo),
        ):
            if memo is None:
                continue
            stats[name] = {
                "hits": memo.hits,
                "misses": memo.misses,
                "invalidations": memo.invalidations,
                "entries": len(memo),
            }
        return stats

    def verifier_stats(self) -> dict[str, object]:
        """Kernel identity plus shared-pool counters (``/stats`` payload).

        Engines built with ``share_verifiers=False`` still report the
        kernel; pool traffic and kernel counters need the shared pool.
        """
        if self.verifier_pool is None:
            return {"kernel": self.edit_kernel.name, "shared_pool": False}
        return {"shared_pool": True, **self.verifier_pool.stats()}

    def _verifier_snapshot(self) -> dict[str, int] | None:
        pool = self.verifier_pool
        return pool.counters.as_dict() if pool is not None else None

    def _verifier_delta(
        self, before: dict[str, int] | None
    ) -> dict[str, object] | None:
        """Kernel-counter delta for one recorded operation, or ``None``."""
        if before is None:
            return None
        after = self.verifier_pool.counters.as_dict()
        delta: dict[str, object] = {
            key: after[key] - before[key] for key in after
        }
        delta["kernel"] = self.verifier_pool.kernel.name
        return delta

    @property
    def catalog(self) -> "StatisticsCatalog | None":
        """The statistics catalog consulted by planner and cost model."""
        return self.ctx.catalog

    @catalog.setter
    def catalog(self, value: "StatisticsCatalog | None") -> None:
        self.ctx.catalog = value

    def last_cost(self) -> CostReport:
        """Cost of the most recent recorded operation."""
        return self._last_cost

    @contextmanager
    def recorded(self):
        """Charge the wrapped operation's message delta to ``stats``.

        Also re-checks the mutation token (memo validity) and attaches
        any adaptive decisions taken during the operation to the
        resulting :class:`CostReport`.  Public so composite flows built
        from raw operator calls — the service layer's streaming top-N
        runs its deepening rounds against ``engine.ctx`` directly — can
        account as *one* recorded operation (one :meth:`last_cost`
        delta, one fault session, one ``stats`` entry).
        """
        self.check_mutations()
        session = self._begin_fault_session()
        before = self.network.tracer.snapshot()
        verifier_before = self._verifier_snapshot()
        decision_mark = len(self.ctx.decision_log)
        try:
            yield
        finally:
            after = self.network.tracer.snapshot()
            cost = CostReport.from_delta(before, after)
            cost.decisions = list(self.ctx.decision_log[decision_mark:])
            cost.verifier = self._verifier_delta(verifier_before)
            if session is not None:
                cost.completeness = session.completeness()
            self._last_cost = cost
            self.stats.record(cost)

    def _begin_fault_session(self):
        """Fresh per-query fault bookkeeping, or None on a healthy network."""
        injector = self.network.fault_injector
        if injector is None or not injector.active:
            return None
        return injector.begin_session()

    _last_cost: CostReport = CostReport(messages=0, payload_bytes=0)
