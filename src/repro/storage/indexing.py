"""Index-entry generation — the paper's multi-key insertion scheme.

Each triple ``(oid, A, v)`` is inserted into the DHT several times
(Sections 3 and 4):

=================  =====================  ==================================
entry kind         DHT key                supports
=================  =====================  ==================================
``OID``            ``key(oid)``           object lookups / row reconstruction
``ATTR_VALUE``     ``key(A#v)``           selections ``A op v``, range scans
``VALUE``          ``key(v)``             keyword queries "any attribute = v"
``INSTANCE_GRAM``  ``key(A#g)`` per gram  instance-level string similarity
                   ``g`` of ``v``
``SCHEMA_GRAM``    ``key(g)`` per gram    schema-level similarity on
                   ``g`` of ``A``         attribute names
=================  =====================  ==================================

Gram entries carry the gram's position and source-string length so the
executor can apply Algorithm 2's position/length filters *at the remote
peer*, before any candidate travels over the network.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import StoreConfig
from repro.storage.qgrams import qgram_tuples
from repro.storage.triple import Triple, is_numeric

if TYPE_CHECKING:  # pragma: no cover - layering: storage must not import overlay
    from repro.overlay.hashing import CompositeKeyCodec


class EntryKind(enum.Enum):
    """Which index family an entry belongs to."""

    OID = "oid"
    ATTR_VALUE = "attr_value"
    VALUE = "value"
    INSTANCE_GRAM = "instance_gram"
    SCHEMA_GRAM = "schema_gram"


@dataclass(frozen=True, slots=True)
class IndexEntry:
    """One stored ``key -> payload`` fact.

    ``gram``/``position``/``source_length`` are only populated for the two
    gram kinds; for the others they are ``None``/0 and ignored.
    """

    key: str
    kind: EntryKind
    triple: Triple
    gram: str | None = None
    position: int = 0
    source_length: int = 0

    def payload_size(self) -> int:
        """Approximate wire size in bytes (data-volume accounting)."""
        size = self.triple.payload_size() + 1
        if self.gram is not None:
            size += len(self.gram) + 2
        return size


class EntryFactory:
    """Generates every index entry a triple induces under a configuration.

    The factory is where the storage scheme's knobs live: value/gram
    families can be disabled (``StoreConfig.index_*``) for the storage
    ablations, and the q-gram length follows ``config.q``.
    """

    def __init__(self, config: StoreConfig, codec: "CompositeKeyCodec"):
        self.config = config
        self.codec = codec

    def entries_for(self, triple: Triple) -> Iterator[IndexEntry]:
        """Yield all index entries for one triple."""
        codec = self.codec
        config = self.config
        yield IndexEntry(codec.oid_key(triple.oid), EntryKind.OID, triple)
        yield IndexEntry(
            codec.attr_value_key(triple.attribute, triple.value),
            EntryKind.ATTR_VALUE,
            triple,
        )
        if config.index_values:
            yield IndexEntry(codec.value_key(triple.value), EntryKind.VALUE, triple)
        if config.index_instance_grams and not is_numeric(triple.value):
            value = str(triple.value)
            source_length = len(value)
            for gram, position in qgram_tuples(value, config.q):
                yield IndexEntry(
                    codec.attr_value_key(triple.attribute, gram),
                    EntryKind.INSTANCE_GRAM,
                    triple,
                    gram=gram,
                    position=position,
                    source_length=source_length,
                )
        if config.index_schema_grams:
            source_length = len(triple.attribute)
            for gram, position in qgram_tuples(triple.attribute, config.q):
                yield IndexEntry(
                    codec.schema_gram_key(gram),
                    EntryKind.SCHEMA_GRAM,
                    triple,
                    gram=gram,
                    position=position,
                    source_length=source_length,
                )

    def entries_for_all(self, triples: Iterable[Triple]) -> Iterator[IndexEntry]:
        """Yield all index entries for a collection of triples."""
        for triple in triples:
            yield from self.entries_for(triple)

    def storage_amplification(self, triples: Iterable[Triple]) -> float:
        """Entries stored per input triple — the scheme's storage overhead.

        The paper accepts this overhead as "negligible on modern computers";
        the number quantifies it for a given dataset.
        """
        triple_count = 0
        entry_count = 0
        for triple in triples:
            triple_count += 1
            entry_count += sum(1 for __ in self.entries_for(triple))
        if triple_count == 0:
            return 0.0
        return entry_count / triple_count
