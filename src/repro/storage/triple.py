"""Vertical triples — the unit of storage (Section 3 of the paper).

A horizontal tuple ``(oid, v1, ..., vn)`` of relation ``R(A1, ..., An)`` is
decomposed into ``n`` triples ``(oid, A1, v1) ... (oid, An, vn)``.  Attribute
names may carry a namespace prefix (``ns:attr``) to distinguish relations;
null values are simply not represented.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.core.errors import StorageError

#: Separator between a namespace and a local attribute name.
NAMESPACE_SEPARATOR = ":"

#: Python types accepted as triple values.
ValueType = str | int | float


def check_value(value: object) -> ValueType:
    """Validate a triple value; returns it unchanged.

    Booleans are rejected (they would silently coerce to 0/1 and break
    range semantics); everything else must be a string or a real number.
    """
    if isinstance(value, bool) or not isinstance(value, (str, int, float)):
        raise StorageError(f"unsupported triple value: {value!r}")
    if isinstance(value, float) and value != value:  # NaN
        raise StorageError("NaN is not a valid triple value")
    return value


def is_numeric(value: object) -> bool:
    """True for int/float triple values (bool excluded)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True, slots=True)
class Triple:
    """One ``(oid, attribute, value)`` fact.

    Instances are immutable and hashable, so result sets can be deduplicated
    with plain ``set`` operations.  Attribute names are interned — a dataset
    has few distinct attributes but millions of triples.
    """

    oid: str
    attribute: str
    value: ValueType

    def __post_init__(self) -> None:
        if not self.oid:
            raise StorageError("triple oid must be non-empty")
        if not self.attribute:
            raise StorageError("triple attribute must be non-empty")
        check_value(self.value)
        object.__setattr__(self, "attribute", sys.intern(self.attribute))

    @property
    def namespace(self) -> str:
        """Namespace prefix of the attribute, or '' if unqualified."""
        head, sep, __ = self.attribute.partition(NAMESPACE_SEPARATOR)
        return head if sep else ""

    @property
    def local_name(self) -> str:
        """Attribute name without its namespace prefix."""
        __, sep, tail = self.attribute.partition(NAMESPACE_SEPARATOR)
        return tail if sep else self.attribute

    def component(self, index: int) -> ValueType:
        """The paper's ``xi(t, i)`` accessor: 1 = oid, 2 = attribute, 3 = value."""
        if index == 1:
            return self.oid
        if index == 2:
            return self.attribute
        if index == 3:
            return self.value
        raise StorageError(f"triple component index must be 1..3, got {index}")

    def payload_size(self) -> int:
        """Approximate wire size in bytes (for data-volume accounting)."""
        value = self.value
        value_size = len(value) if isinstance(value, str) else 8
        return len(self.oid) + len(self.attribute) + value_size + 3

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"({self.oid}, {self.attribute}, {self.value!r})"


def make_oid(namespace: str, serial: int) -> str:
    """Build a URI-style object identifier, e.g. ``car:000042``."""
    if not namespace:
        raise StorageError("oid namespace must be non-empty")
    return f"{namespace}{NAMESPACE_SEPARATOR}{serial:06d}"
