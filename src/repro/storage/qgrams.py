"""Positional q-grams and q-samples (Section 4, after Gravano et al. [7]).

Following Gravano et al., strings are *extended* before decomposition:
``q - 1`` copies of a begin marker are prepended and ``q - 1`` copies of an
end marker appended, so a string of length ``n`` yields ``n + q - 1``
overlapping grams (at least ``q - 1 + 1`` even for the empty string).  The
markers are control characters that cannot occur in real data.

This extension is what makes the paper's count bound exact: one edit
operation destroys at most ``q`` of the extended grams, so two strings
within edit distance ``d`` share at least

    ``max(|s1|, |s2|) - 1 - (d - 1) * q``

extended q-grams — the formula quoted in Section 4.  (A non-positive bound
means the filter is vacuous; see :mod:`repro.similarity.filters` for how
operators deal with that regime.)

Two decompositions are provided:

* :func:`positional_qgrams` — all overlapping extended grams with their
  starting positions (the *qgram* strategy);
* :func:`qgram_sample` — ``d + 1`` non-overlapping grams taken every q-th
  position (the *qsample* strategy, after Schallehn et al. [11]): cheaper
  to look up because ``d`` edits can destroy at most ``d`` of ``d + 1``
  disjoint grams, so at least one sampled gram survives in any true match.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.errors import StorageError

#: Begin-of-string marker used for gram extension ('#' in Gravano et al.).
BEGIN_PAD = "\x01"

#: End-of-string marker used for gram extension ('$' in Gravano et al.).
END_PAD = "\x02"


@dataclass(frozen=True, slots=True)
class PositionalQGram:
    """A q-gram together with where it came from.

    ``position`` is the gram's starting offset in the *extended* source
    string; ``source_length`` the length of the original (unextended)
    string.  Both feed the position and length filters of Algorithm 2,
    line 8.
    """

    gram: str
    position: int
    source_length: int


def extend(text: str, q: int) -> str:
    """The extended form: ``(q-1) * BEGIN + text + (q-1) * END``."""
    if q < 1:
        raise StorageError(f"q must be >= 1, got {q}")
    pad = q - 1
    return BEGIN_PAD * pad + text + END_PAD * pad


def positional_qgrams(text: str, q: int) -> list[PositionalQGram]:
    """All overlapping positional q-grams of the extended string.

    A string of length ``n`` yields exactly ``n + q - 1`` grams.
    """
    source_length = len(text)
    return [
        PositionalQGram(gram, position, source_length)
        for gram, position in qgram_tuples(text, q)
    ]


def qgram_tuples(text: str, q: int) -> list[tuple[str, int]]:
    """All overlapping extended q-grams as plain ``(gram, position)`` tuples.

    The hot-path form of :func:`positional_qgrams`: index builds and
    operators that decompose thousands of strings per query pay for a
    :class:`PositionalQGram` allocation per gram otherwise.  The source
    length is ``len(text)`` and needs no per-gram copy.
    """
    extended = extend(text, q)
    return [(extended[i : i + q], i) for i in range(len(extended) - q + 1)]


def qgram_sample(text: str, q: int, d: int) -> list[PositionalQGram]:
    """A q-sample: ``d + 1`` non-overlapping grams, every q-th position.

    Processes the extended string left to right, taking grams at positions
    ``0, q, 2q, ...`` (the paper's "starting from each qth position").
    When the string is too short to supply ``d + 1`` disjoint grams — the
    paper's "if s is long enough" proviso — the pigeonhole guarantee
    breaks, so this function *falls back to the full overlapping set*,
    which for such short strings is barely larger than the sample anyway.
    """
    if d < 0:
        raise StorageError(f"d must be >= 0, got {d}")
    extended = extend(text, q)
    wanted = d + 1
    if len(extended) < q * wanted:
        return positional_qgrams(text, q)
    source_length = len(text)
    sample: list[PositionalQGram] = []
    position = 0
    while position + q <= len(extended) and len(sample) < wanted:
        sample.append(PositionalQGram(extended[position : position + q], position, source_length))
        position += q
    return sample


def qgram_set(text: str, q: int) -> set[str]:
    """The plain (unpositioned) extended q-gram set of ``text``."""
    return {gram for gram, __ in qgram_tuples(text, q)}


def count_filter_threshold(len_a: int, len_b: int, q: int, d: int) -> int:
    """Minimum shared extended q-grams for strings within distance ``d``.

    The paper's bound: ``max(|s1|, |s2|) - 1 - (d - 1) * q``.  A
    non-positive threshold means the count filter cannot prune anything
    (and gram lookups alone cannot guarantee completeness).
    """
    return max(len_a, len_b) - 1 - (d - 1) * q


def guaranteed_complete(query_length: int, q: int, d: int) -> bool:
    """Can gram lookups for this query guarantee zero false negatives?

    True when every candidate within distance ``d`` must share at least
    one extended gram: the bound above is ``>= 1`` for all candidate
    lengths exactly when ``query_length >= 2 + (d - 1) * q`` (candidates
    can only raise the ``max``).
    """
    return count_filter_threshold(query_length, 0, q, d) >= 1


def shared_gram_count(a: str, b: str, q: int) -> int:
    """Number of extended q-grams (multiset) shared by two strings."""
    grams_a = Counter(gram for gram, __ in qgram_tuples(a, q))
    grams_b = Counter(gram for gram, __ in qgram_tuples(b, q))
    return sum((grams_a & grams_b).values())
