"""Vertical triple storage: triples, schemas, q-grams, index entries."""

from repro.storage.datastore import LocalDataStore
from repro.storage.indexing import EntryFactory, EntryKind, IndexEntry
from repro.storage.qgrams import (
    PositionalQGram,
    count_filter_threshold,
    extend,
    guaranteed_complete,
    positional_qgrams,
    qgram_sample,
    qgram_set,
)
from repro.storage.schema import RelationSchema, record_to_triples, rows_to_triples
from repro.storage.triple import Triple, make_oid

__all__ = [
    "EntryFactory",
    "EntryKind",
    "IndexEntry",
    "LocalDataStore",
    "PositionalQGram",
    "RelationSchema",
    "Triple",
    "count_filter_threshold",
    "extend",
    "guaranteed_complete",
    "make_oid",
    "positional_qgrams",
    "qgram_sample",
    "qgram_set",
    "record_to_triples",
    "rows_to_triples",
]
