"""Relation schemas and the horizontal → vertical decomposition.

Users *may* describe their data with a :class:`RelationSchema` — but never
have to: the storage is self-describing (Section 3), so any dict-shaped
record can be decomposed into triples directly with :func:`record_to_triples`.
Schemas exist for convenience (validation, consistent namespaces) and for
the examples, where the car/dealer relations of the paper's Section 3 are
declared explicitly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.errors import SchemaError
from repro.storage.triple import (
    NAMESPACE_SEPARATOR,
    Triple,
    ValueType,
    check_value,
    make_oid,
)


def qualify(namespace: str, attribute: str) -> str:
    """Qualify ``attribute`` with ``namespace`` unless already qualified."""
    if not attribute:
        raise SchemaError("attribute name must be non-empty")
    if NAMESPACE_SEPARATOR in attribute or not namespace:
        return attribute
    return f"{namespace}{NAMESPACE_SEPARATOR}{attribute}"


def record_to_triples(
    oid: str, record: Mapping[str, ValueType], namespace: str = ""
) -> list[Triple]:
    """Decompose one dict-shaped record into vertical triples.

    ``None`` values are skipped — null values are not represented (Section
    3).  Attribute names are namespace-qualified when a namespace is given.
    """
    triples: list[Triple] = []
    for attribute, value in record.items():
        if value is None:
            continue
        triples.append(Triple(oid, qualify(namespace, attribute), check_value(value)))
    return triples


@dataclass(frozen=True)
class RelationSchema:
    """A named relation with a declared attribute list.

    The schema is *advisory*: users can extend tuples with extra attributes
    (``strict=False``, the default) exactly as the paper's vertical scheme
    allows — "users can extend the schema to their needs by simply adding
    new triples".
    """

    name: str
    attributes: tuple[str, ...]
    strict: bool = False
    _attribute_set: frozenset[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} declares no attributes")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attributes")
        object.__setattr__(self, "_attribute_set", frozenset(self.attributes))

    def qualified(self, attribute: str) -> str:
        """Namespace-qualified name of ``attribute``."""
        return qualify(self.name, attribute)

    def tuple_to_triples(
        self, oid: str, values: Mapping[str, ValueType]
    ) -> list[Triple]:
        """Decompose one horizontal tuple into triples.

        In strict mode, attributes outside the declared list raise
        :class:`SchemaError`; otherwise they are stored as given (schema
        extension).
        """
        if self.strict:
            unknown = set(values) - self._attribute_set
            if unknown:
                raise SchemaError(
                    f"relation {self.name!r} does not declare: {sorted(unknown)}"
                )
        return record_to_triples(oid, values, namespace=self.name)

    def make_oid(self, serial: int) -> str:
        """Mint an oid in this relation's namespace."""
        return make_oid(self.name, serial)


def rows_to_triples(
    schema: RelationSchema, rows: Iterable[Mapping[str, ValueType]]
) -> list[Triple]:
    """Decompose an iterable of rows, minting sequential oids."""
    triples: list[Triple] = []
    for serial, row in enumerate(rows):
        triples.extend(schema.tuple_to_triples(schema.make_oid(serial), row))
    return triples
