"""Per-peer local datastore — the ``delta(p)`` of the paper.

Each peer stores the index entries whose key falls inside its key-space
partition.  The store keeps entries sorted by key so that the three access
patterns the operators need are all cheap:

* exact-key lookup (``Retrieve``, Algorithm 1 line 2);
* prefix scan (attribute scans, schema-level gram scans);
* integer range scan (range queries / numeric similarity).

Implementation: a list of ``(key, entry)`` kept sorted with ``bisect``.
Bulk loading appends then sorts once; incremental inserts use
``insort``-style insertion.  A small dirty flag avoids resorting on every
read after a bulk load.

On top of the sorted lists the store maintains three lazy secondary
structures, built on first use and kept consistent across mutations:

* a **postings map** ``key -> [entries]`` that turns exact-key lookups
  (the gram-lookup hot path of Algorithm 2) into one dict probe instead
  of a double bisect plus slice;
* **kind views** — per-:class:`EntryKind` entry lists in key order, so
  kind-restricted scans stop filtering the whole store;
* a **cached payload total** maintained incrementally, so data-volume
  accounting stops re-summing every entry.

The sorted lists stay the single source of truth; :meth:`lookup_scan`
keeps the index-free bisect path alive as the equivalence reference for
tests and micro-benchmarks.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.storage.indexing import EntryKind, IndexEntry


class LocalDataStore:
    """Sorted key → entries store for one peer."""

    __slots__ = (
        "_keys", "_entries", "_dirty", "_postings", "_kind_views",
        "_payload_total", "version",
    )

    def __init__(self) -> None:
        self._keys: list[str] = []
        self._entries: list[IndexEntry] = []
        self._dirty = False
        #: Mutation counter: bumped by every ``add``/``add_bulk``/``remove``.
        #: Workload memos snapshot it at compute time and treat any change
        #: as a cache invalidation, turning the "static stores only"
        #: contract into an enforced check instead of a convention.
        self.version = 0
        #: Lazy ``key -> [entries]`` map; ``None`` until first use or after
        #: a bulk mutation invalidated it.
        self._postings: dict[str, list[IndexEntry]] | None = None
        #: Lazy per-kind ``(keys, entries)`` lists (key order); ``None``
        #: when stale.
        self._kind_views: (
            dict[EntryKind, tuple[list[str], list[IndexEntry]]] | None
        ) = None
        #: Running payload total; ``None`` when it must be recomputed.
        self._payload_total: int | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[IndexEntry]:
        self._ensure_sorted()
        return iter(self._entries)

    def add(self, entry: IndexEntry) -> None:
        """Insert one entry, keeping the store sorted."""
        self.version += 1
        self._ensure_sorted()
        index = bisect.bisect_right(self._keys, entry.key)
        self._keys.insert(index, entry.key)
        self._entries.insert(index, entry)
        if self._postings is not None:
            # bisect_right inserts after existing equal keys, so appending
            # to the posting list preserves the sorted-store ordering.
            self._postings.setdefault(entry.key, []).append(entry)
        self._kind_views = None
        if self._payload_total is not None:
            self._payload_total += entry.payload_size()

    def add_bulk(self, entries: Iterable[IndexEntry]) -> int:
        """Append many entries; sorting is deferred to the next read.

        Returns the number of entries added.  Bulk loading a peer's share
        of a large dataset this way is O(n log n) overall instead of
        O(n²) repeated insertion.
        """
        count = 0
        added_bytes = 0
        track_payload = self._payload_total is not None
        for entry in entries:
            self._keys.append(entry.key)
            self._entries.append(entry)
            if track_payload:
                added_bytes += entry.payload_size()
            count += 1
        if count:
            self.version += 1
            self._dirty = True
            self._postings = None
            self._kind_views = None
            if track_payload:
                self._payload_total += added_bytes
        return count

    def remove(self, entry: IndexEntry) -> bool:
        """Remove one entry; returns False if it was not present."""
        self._ensure_sorted()
        index = bisect.bisect_left(self._keys, entry.key)
        while index < len(self._keys) and self._keys[index] == entry.key:
            if self._entries[index] == entry:
                self.version += 1
                del self._keys[index]
                del self._entries[index]
                if self._postings is not None:
                    posting = self._postings.get(entry.key)
                    if posting is not None:
                        posting.remove(entry)
                        if not posting:
                            del self._postings[entry.key]
                self._kind_views = None
                if self._payload_total is not None:
                    self._payload_total -= entry.payload_size()
                return True
            index += 1
        return False

    # -- reads ---------------------------------------------------------------

    def lookup(self, key: str) -> list[IndexEntry]:
        """All entries stored under exactly ``key`` (postings-map probe)."""
        if self._postings is None:
            self._build_postings()
        return list(self._postings.get(key, ()))

    def lookup_scan(self, key: str) -> list[IndexEntry]:
        """Index-free :meth:`lookup` via double bisect on the sorted lists.

        The pre-secondary-index implementation, kept as the reference the
        postings map is property-tested against (and as the baseline of
        the gram-lookup micro-benchmark).
        """
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._entries[lo:hi]

    def prefix_scan(self, prefix: str) -> list[IndexEntry]:
        """All entries whose key starts with ``prefix``.

        Mirrors Algorithm 1's ``key(d) ⊇ key`` condition: a search key that
        is shorter than stored keys matches every entry it prefixes.
        """
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, prefix)
        result: list[IndexEntry] = []
        for index in range(lo, len(self._keys)):
            if not self._keys[index].startswith(prefix):
                break
            result.append(self._entries[index])
        return result

    def range_scan(self, lo_key: str, hi_key: str) -> list[IndexEntry]:
        """All entries with ``lo_key <= key <= hi_key`` (inclusive)."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, lo_key)
        hi = bisect.bisect_right(self._keys, hi_key)
        return self._entries[lo:hi]

    def count_prefix(self, prefix: str) -> int:
        """Number of entries under ``prefix`` without materializing them."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, prefix)
        if len(prefix):
            # '2' sorts after both key characters, so ``prefix + '2'`` is a
            # strict upper bound of exactly the keys extending ``prefix``.
            hi = bisect.bisect_left(self._keys, prefix + "2")
        else:
            hi = len(self._keys)
        return hi - lo

    def entries_of_kind(self, kind: EntryKind) -> Iterator[IndexEntry]:
        """All entries of one index family, in key order (cached view)."""
        if self._kind_views is None:
            self._build_kind_views()
        view = self._kind_views.get(kind)
        return iter(view[1] if view is not None else ())

    def entries_of_kind_prefix(
        self, kind: EntryKind, prefix: str
    ) -> list[IndexEntry]:
        """Entries of one kind whose key starts with ``prefix``, in key order.

        Combines the kind view with a bisect on its key list — the naive
        operator's region scan: only the queried attribute's slice of one
        index family, without filtering either the whole store or the
        whole kind view.
        """
        if self._kind_views is None:
            self._build_kind_views()
        view = self._kind_views.get(kind)
        if view is None:
            return []
        view_keys, view_entries = view
        lo = bisect.bisect_left(view_keys, prefix)
        if prefix:
            # Same upper bound trick as count_prefix: keys are binary
            # strings, so prefix + '2' strictly bounds its extensions.
            hi = bisect.bisect_left(view_keys, prefix + "2")
        else:
            hi = len(view_keys)
        return view_entries[lo:hi]

    def entries_of_kind_scan(self, kind: EntryKind) -> Iterator[IndexEntry]:
        """Index-free :meth:`entries_of_kind` (full filtered scan)."""
        self._ensure_sorted()
        return (entry for entry in self._entries if entry.kind == kind)

    def key_bounds(self) -> tuple[str, str] | None:
        """Smallest and largest stored key, or None when empty."""
        self._ensure_sorted()
        if not self._keys:
            return None
        return self._keys[0], self._keys[-1]

    def payload_bytes(self) -> int:
        """Total approximate payload size of all stored entries (cached)."""
        if self._payload_total is None:
            self._payload_total = sum(
                entry.payload_size() for entry in self._entries
            )
        return self._payload_total

    # The bench report and network aggregation use the explicit name.
    total_payload_bytes = payload_bytes

    def local_density(self, prefix: str, key_bits: int) -> float:
        """Entries per key-space slot under ``prefix``.

        Used by the top-N operator (Algorithm 4 lines 1–3) to estimate a
        first query range from local data density.  A prefix of length
        ``l`` covers ``2 ** (key_bits - l)`` slots.
        """
        count = self.count_prefix(prefix)
        slots = 1 << (key_bits - len(prefix))
        return count / slots

    # -- secondary-index maintenance -----------------------------------------

    def _build_postings(self) -> None:
        self._ensure_sorted()
        postings: dict[str, list[IndexEntry]] = {}
        for key, entry in zip(self._keys, self._entries):
            bucket = postings.get(key)
            if bucket is None:
                postings[key] = [entry]
            else:
                bucket.append(entry)
        self._postings = postings

    def _build_kind_views(self) -> None:
        self._ensure_sorted()
        views: dict[EntryKind, tuple[list[str], list[IndexEntry]]] = {}
        for key, entry in zip(self._keys, self._entries):
            view = views.get(entry.kind)
            if view is None:
                views[entry.kind] = ([key], [entry])
            else:
                view[0].append(key)
                view[1].append(entry)
        self._kind_views = views

    def _ensure_sorted(self) -> None:
        if self._dirty:
            order = sorted(range(len(self._keys)), key=self._keys.__getitem__)
            self._keys = [self._keys[i] for i in order]
            self._entries = [self._entries[i] for i in order]
            self._dirty = False
