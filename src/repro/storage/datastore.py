"""Per-peer local datastore — the ``delta(p)`` of the paper.

Each peer stores the index entries whose key falls inside its key-space
partition.  The store keeps entries sorted by key so that the three access
patterns the operators need are all cheap:

* exact-key lookup (``Retrieve``, Algorithm 1 line 2);
* prefix scan (attribute scans, schema-level gram scans);
* integer range scan (range queries / numeric similarity).

Implementation: a list of ``(key, entry)`` kept sorted with ``bisect``.
Bulk loading appends then sorts once; incremental inserts use
``insort``-style insertion.  A small dirty flag avoids resorting on every
read after a bulk load.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.storage.indexing import EntryKind, IndexEntry


class LocalDataStore:
    """Sorted key → entries store for one peer."""

    __slots__ = ("_keys", "_entries", "_dirty")

    def __init__(self) -> None:
        self._keys: list[str] = []
        self._entries: list[IndexEntry] = []
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[IndexEntry]:
        self._ensure_sorted()
        return iter(self._entries)

    def add(self, entry: IndexEntry) -> None:
        """Insert one entry, keeping the store sorted."""
        self._ensure_sorted()
        index = bisect.bisect_right(self._keys, entry.key)
        self._keys.insert(index, entry.key)
        self._entries.insert(index, entry)

    def add_bulk(self, entries: Iterable[IndexEntry]) -> int:
        """Append many entries; sorting is deferred to the next read.

        Returns the number of entries added.  Bulk loading a peer's share
        of a large dataset this way is O(n log n) overall instead of
        O(n²) repeated insertion.
        """
        count = 0
        for entry in entries:
            self._keys.append(entry.key)
            self._entries.append(entry)
            count += 1
        if count:
            self._dirty = True
        return count

    def remove(self, entry: IndexEntry) -> bool:
        """Remove one entry; returns False if it was not present."""
        self._ensure_sorted()
        index = bisect.bisect_left(self._keys, entry.key)
        while index < len(self._keys) and self._keys[index] == entry.key:
            if self._entries[index] == entry:
                del self._keys[index]
                del self._entries[index]
                return True
            index += 1
        return False

    # -- reads ---------------------------------------------------------------

    def lookup(self, key: str) -> list[IndexEntry]:
        """All entries stored under exactly ``key``."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._entries[lo:hi]

    def prefix_scan(self, prefix: str) -> list[IndexEntry]:
        """All entries whose key starts with ``prefix``.

        Mirrors Algorithm 1's ``key(d) ⊇ key`` condition: a search key that
        is shorter than stored keys matches every entry it prefixes.
        """
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, prefix)
        result: list[IndexEntry] = []
        for index in range(lo, len(self._keys)):
            if not self._keys[index].startswith(prefix):
                break
            result.append(self._entries[index])
        return result

    def range_scan(self, lo_key: str, hi_key: str) -> list[IndexEntry]:
        """All entries with ``lo_key <= key <= hi_key`` (inclusive)."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, lo_key)
        hi = bisect.bisect_right(self._keys, hi_key)
        return self._entries[lo:hi]

    def count_prefix(self, prefix: str) -> int:
        """Number of entries under ``prefix`` without materializing them."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._keys, prefix)
        if len(prefix):
            # '2' sorts after both key characters, so ``prefix + '2'`` is a
            # strict upper bound of exactly the keys extending ``prefix``.
            hi = bisect.bisect_left(self._keys, prefix + "2")
        else:
            hi = len(self._keys)
        return hi - lo

    def entries_of_kind(self, kind: EntryKind) -> Iterator[IndexEntry]:
        """All entries of one index family (diagnostics / naive scans)."""
        self._ensure_sorted()
        return (entry for entry in self._entries if entry.kind == kind)

    def key_bounds(self) -> tuple[str, str] | None:
        """Smallest and largest stored key, or None when empty."""
        self._ensure_sorted()
        if not self._keys:
            return None
        return self._keys[0], self._keys[-1]

    def payload_bytes(self) -> int:
        """Total approximate payload size of all stored entries."""
        return sum(entry.payload_size() for entry in self._entries)

    def local_density(self, prefix: str, key_bits: int) -> float:
        """Entries per key-space slot under ``prefix``.

        Used by the top-N operator (Algorithm 4 lines 1–3) to estimate a
        first query range from local data density.  A prefix of length
        ``l`` covers ``2 ** (key_bits - l)`` slots.
        """
        count = self.count_prefix(prefix)
        slots = 1 << (key_bits - len(prefix))
        return count / slots

    def _ensure_sorted(self) -> None:
        if self._dirty:
            order = sorted(range(len(self._keys)), key=self._keys.__getitem__)
            self._keys = [self._keys[i] for i in order]
            self._entries = [self._entries[i] for i in order]
            self._dirty = False
