"""Trie construction: carving the key space into peer partitions.

A P-Grid network of ``n`` peers partitions the binary key space into
``n_partitions`` leaf prefixes forming a *complete prefix-free cover*: every
full-width key has exactly one covering leaf.  With structural replication
``k``, ``n_partitions = n / k`` and ``k`` peers share each leaf.

Two builders are provided (DESIGN.md §6):

* :func:`uniform_paths` — splits the space evenly; leaf depths differ by at
  most one.  This is what a perfectly balanced trie looks like.
* :func:`data_aware_paths` — mirrors P-Grid's construction/load-balancing
  algorithm [2]: the space is split recursively, allocating peers to each
  half *proportionally to the data volume* that falls into it, so every
  peer ends up storing roughly the same number of entries even under
  heavily skewed key distributions (e.g. order-preserved English words).
"""

from __future__ import annotations

import bisect
from collections.abc import MutableMapping, Sequence

from repro.core.errors import OverlayError
from repro.overlay import keys as keyspace


def uniform_paths(n_partitions: int) -> list[str]:
    """Leaf paths of a balanced trie with ``n_partitions`` leaves.

    Peers are distributed by recursive halving: ``ceil(n/2)`` leaves under
    ``'0'`` and ``floor(n/2)`` under ``'1'``, giving depths that differ by
    at most one.  The result is sorted (in-order = key order).
    """
    if n_partitions < 1:
        raise OverlayError(f"need at least one partition, got {n_partitions}")
    paths: list[str] = []

    def split(prefix: str, count: int) -> None:
        if count == 1:
            paths.append(prefix)
            return
        left = (count + 1) // 2
        split(prefix + "0", left)
        split(prefix + "1", count - left)

    split("", n_partitions)
    return paths


def data_aware_paths(
    n_partitions: int,
    sample_keys: Sequence[str],
    key_bits: int,
    count_cache: MutableMapping[str, int] | None = None,
) -> list[str]:
    """Leaf paths balanced against an observed key distribution.

    ``sample_keys`` is a (representative sample of the) multiset of data
    keys that will be stored.  At every split, peers are allocated to the
    two halves proportionally to how many sample keys fall into each —
    P-Grid's construction algorithm converges to the same shape through
    pairwise peer interactions [2]; we compute it directly since the
    simulator has a global view.

    Falls back to uniform splitting inside regions that contain no sample
    keys, and guarantees every partition gets at least one peer.

    ``count_cache`` memoizes the per-prefix sample counts.  The counts
    depend only on ``(sample_keys, key_bits)``, so a sweep that grows the
    partition count over a *fixed* dataset can pass the same mapping into
    every call and re-derive each trie from mostly cached splits — the
    incremental construction used by
    :class:`repro.overlay.incremental.IncrementalNetworkBuilder`.  The
    caller owns the cache and must not reuse it across different key
    samples or key widths.
    """
    if n_partitions < 1:
        raise OverlayError(f"need at least one partition, got {n_partitions}")
    if n_partitions > (1 << key_bits):
        raise OverlayError(
            f"{n_partitions} partitions cannot tile a {key_bits}-bit key space"
        )
    if not sample_keys:
        return uniform_paths(n_partitions)
    sorted_keys = sorted(sample_keys)
    paths: list[str] = []

    def count_in(prefix: str) -> int:
        """Sample keys covered by ``prefix`` (binary search on sorted keys)."""
        if count_cache is not None:
            cached = count_cache.get(prefix)
            if cached is not None:
                return cached
        lo_int, hi_int = keyspace.prefix_interval(prefix, key_bits)
        lo_key = keyspace.int_to_key(lo_int, key_bits)
        hi_key = keyspace.int_to_key(hi_int, key_bits)
        lo = bisect.bisect_left(sorted_keys, lo_key)
        hi = bisect.bisect_right(sorted_keys, hi_key)
        count = hi - lo
        if count_cache is not None:
            count_cache[prefix] = count
        return count

    def split(prefix: str, count: int) -> None:
        if count == 1:
            paths.append(prefix)
            return
        left_data = count_in(prefix + "0")
        right_data = count_in(prefix + "1")
        total = left_data + right_data
        if total == 0:
            left = (count + 1) // 2
        else:
            left = round(count * left_data / total)
            left = max(1, min(count - 1, left))
        # Each child subtree can hold at most 2^(remaining depth) leaves;
        # without this clamp, extreme skew (many identical sample keys)
        # would push more peers into a subtree than it has key slots.
        side_capacity = 1 << (key_bits - len(prefix) - 1)
        left = max(left, count - side_capacity)
        left = min(left, side_capacity)
        split(prefix + "0", left)
        split(prefix + "1", count - left)

    split("", n_partitions)
    return paths


def validate_cover(paths: Sequence[str]) -> None:
    """Check that ``paths`` is a complete prefix-free cover of the key space.

    Raises :class:`OverlayError` if any path prefixes another (overlap) or
    if the united intervals leave a gap.  Used by tests and by the network
    constructor as a safety net.
    """
    ordered = sorted(paths)
    for i in range(len(ordered) - 1):
        if ordered[i + 1].startswith(ordered[i]):
            raise OverlayError(
                f"overlapping partitions: {ordered[i]!r} and {ordered[i + 1]!r}"
            )
    # Completeness: the paths, in key order, must tile [0, 2^b) exactly,
    # where b is the maximum depth.
    bits = max((len(p) for p in ordered), default=0)
    position = 0
    for path in ordered:
        lo, hi = keyspace.prefix_interval(path, bits)
        if lo != position:
            raise OverlayError(f"gap in key-space cover before {path!r}")
        position = hi + 1
    if position != 1 << bits:
        raise OverlayError("key-space cover does not reach the top of the space")


def find_responsible(paths: Sequence[str], key: str) -> int:
    """Index (in sorted order) of the leaf path responsible for ``key``.

    ``paths`` must be sorted.  A leaf is responsible when its path is a
    prefix of the key (or equals it).  Runs in O(log n) via bisection —
    this is the simulator's "oracle" used for correctness checks; actual
    queries route hop-by-hop through :mod:`repro.overlay.routing`.
    """
    index = bisect.bisect_right(paths, key) - 1
    if index >= 0 and key.startswith(paths[index]):
        return index
    # ``key`` may be shorter than the path (a prefix query): the bisection
    # neighbour to the right is then the first covered leaf.
    if index + 1 < len(paths) and paths[index + 1].startswith(key):
        return index + 1
    if index >= 0 and paths[index].startswith(key):
        return index
    raise OverlayError(f"no partition responsible for key {key!r}")


def partition_load(paths: Sequence[str], data_keys: Sequence[str]) -> list[int]:
    """Entries per partition — the load-balance diagnostic.

    Returns a list aligned with ``sorted(paths)`` counting how many of
    ``data_keys`` each partition would store.
    """
    ordered = sorted(paths)
    loads = [0] * len(ordered)
    for key in data_keys:
        loads[find_responsible(ordered, key)] += 1
    return loads
