"""Deterministic transport fault injection — the robustness substrate.

The paper's ``Retrieve`` guarantee (Section 2) holds only "if at least
one peer in each partition is reachable"; the live robustness evaluation
is deferred to PlanetLab.  This module reproduces that setting in
simulation: a seeded :class:`FaultPlan` describes *what* goes wrong on
the wire (per-message drops, transient peer unavailability windows,
slow links), a :class:`FaultInjector` applies it to every delivery
attempt the :class:`~repro.overlay.routing.Router` makes, and a
:class:`RetryPolicy` governs how the sender reacts (capped exponential
backoff, a per-query retry budget, replica failover on timeout).

Redundant attempts are charged to the
:class:`~repro.overlay.messages.MessageTracer` under dedicated
``retry`` / ``failover`` phases, so robustness overhead appears in the
same message/byte currency the paper measures.

The default plan is a **no-op**: an inactive injector (or none at all)
leaves the delivery path untouched — same code path, same RNG draws,
same message series, bit for bit.  The injector draws from its *own*
seeded RNG, never from the router's, so even an active plan perturbs
only what it drops.

When retries and failover are exhausted, behaviour depends on the
network's :class:`FaultMode`:

* ``STRICT`` (the default) — raise
  :class:`~repro.core.errors.PartitionUnreachableError`, today's
  semantics;
* ``DEGRADED`` — skip the dark partition, record it on the per-query
  :class:`FaultSession`, and let operators return partial results
  annotated with a :class:`Completeness` record (attached to the
  query's :class:`~repro.overlay.messages.CostReport`).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.core.errors import ConfigError


class DeliveryOutcome(enum.Enum):
    """What the injector decided about one delivery attempt."""

    DELIVERED = "delivered"  # message arrived
    DROPPED = "dropped"  # lost on the wire; sender may retry
    UNAVAILABLE = "unavailable"  # receiver not answering; sender fails over


class FaultMode(enum.Enum):
    """How exhausted retries / dark partitions surface to callers."""

    STRICT = "strict"  # raise PartitionUnreachableError (today's semantics)
    DEGRADED = "degraded"  # skip, record, return partial results

    @classmethod
    def from_name(cls, name: "FaultMode | str") -> "FaultMode":
        if isinstance(name, cls):
            return name
        normalized = str(name).strip().lower()
        for mode in cls:
            if normalized == mode.value:
                return mode
        raise ConfigError(f"unknown fault mode: {name!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of transport faults.

    ``drop_probability``
        Per-delivery-attempt probability that the message is lost.
    ``unavailable_windows``
        ``peer_id -> ((start, end), ...)`` half-open windows on the
        injector's delivery-attempt clock during which the peer does not
        answer (transient unavailability, distinct from churn's
        ``online`` flag: the peer holds its data and recovers by
        itself).
    ``slow_links``
        ``(sender, receiver) -> seconds`` of simulated one-way latency;
        ``link_latency`` is the default for unlisted links.  Latency is
        accumulated on the :class:`FaultSession` (the tracer's
        message/byte series are never affected by slowness alone).
    ``seed``
        Seed of the injector's private RNG.

    The all-default plan is a no-op: :attr:`is_noop` is True and the
    injector stays inactive, keeping the healthy path bit-identical.
    """

    drop_probability: float = 0.0
    unavailable_windows: tuple = ()  # ((peer_id, start, end), ...)
    slow_links: tuple = ()  # ((sender, receiver, seconds), ...)
    link_latency: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigError(
                f"drop probability must be in [0, 1), got {self.drop_probability}"
            )
        if self.link_latency < 0.0:
            raise ConfigError(f"link latency must be >= 0, got {self.link_latency}")
        for peer_id, start, end in self.unavailable_windows:
            if start < 0 or end < start:
                raise ConfigError(
                    f"bad unavailability window ({start}, {end}) for peer {peer_id}"
                )
        for __, __, seconds in self.slow_links:
            if seconds < 0.0:
                raise ConfigError("slow-link latency must be >= 0")

    @property
    def is_noop(self) -> bool:
        """True when the plan can never alter a delivery."""
        return (
            self.drop_probability == 0.0
            and not self.unavailable_windows
            and not self.slow_links
            and self.link_latency == 0.0
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty (no-op) plan."""
        return cls()

    @classmethod
    def lossy(cls, drop_probability: float, seed: int = 0) -> "FaultPlan":
        """Uniform per-message loss, the PlanetLab-style baseline."""
        return cls(drop_probability=drop_probability, seed=seed)


@dataclass(frozen=True)
class RetryPolicy:
    """How a sender reacts to drops and timeouts.

    ``max_attempts`` bounds deliveries of one message (first send plus
    retries); ``backoff`` grows ``base_backoff * backoff_factor**k``
    capped at ``max_backoff`` and accumulates on the session's simulated
    latency.  ``retry_budget`` caps *total* retries per query, so a
    badly lossy link cannot spend unbounded messages; ``timeout`` is
    the latency cost of detecting an unanswering peer before failing
    over to a replica.
    """

    max_attempts: int = 4
    base_backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    retry_budget: int = 256
    timeout: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_budget < 0:
            raise ConfigError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if min(self.base_backoff, self.max_backoff, self.timeout) < 0.0:
            raise ConfigError("backoff and timeout values must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Capped exponential backoff before retry number ``attempt``."""
        return min(
            self.max_backoff,
            self.base_backoff * self.backoff_factor ** max(0, attempt - 1),
        )


@dataclass(frozen=True)
class Completeness:
    """How complete a (possibly degraded) query's answer is.

    ``fraction`` is the covered share of the *targeted* key space: each
    partition of path length ``L`` spans ``2**-L`` of the key space, and
    dark partitions subtract their span from the query's target mass.
    ``dropped_candidates`` counts result rows lost to undeliverable
    ``RESULT``/``DELEGATE`` messages even where partitions were
    reachable, so ``is_partial`` is the one flag to check.
    """

    fraction: float
    dark_partitions: tuple[int, ...] = ()
    dropped_candidates: int = 0
    retries: int = 0
    failovers: int = 0
    dropped_messages: int = 0
    timeouts: int = 0
    simulated_latency: float = 0.0

    @property
    def is_partial(self) -> bool:
        return self.fraction < 1.0 or self.dropped_candidates > 0

    @classmethod
    def complete(cls) -> "Completeness":
        return cls(fraction=1.0)


@dataclass
class FaultSession:
    """Mutable per-query record of what the faults did.

    The engine begins a fresh session per recorded operation and turns
    it into the :class:`Completeness` attached to the operation's
    :class:`~repro.overlay.messages.CostReport`.
    """

    retry_budget_left: int = 0
    retries: int = 0
    failovers: int = 0
    dropped_messages: int = 0
    timeouts: int = 0
    dropped_candidates: int = 0
    simulated_latency: float = 0.0
    #: partition index -> path, for every partition the query targeted.
    targeted: dict[int, str] = field(default_factory=dict)
    #: partition index -> path, for targeted partitions that stayed dark.
    dark: dict[int, str] = field(default_factory=dict)

    def record_target(self, partition) -> None:
        self.targeted[partition.index] = partition.path

    def record_dark(self, partition) -> None:
        self.targeted.setdefault(partition.index, partition.path)
        self.dark[partition.index] = partition.path

    def consume_retry(self) -> bool:
        """Spend one unit of the per-query retry budget."""
        if self.retry_budget_left <= 0:
            return False
        self.retry_budget_left -= 1
        return True

    def completeness(self) -> Completeness:
        targeted_mass = sum(2.0 ** -len(path) for path in self.targeted.values())
        dark_mass = sum(
            2.0 ** -len(path)
            for index, path in self.dark.items()
            if index in self.targeted
        )
        if targeted_mass <= 0.0:
            fraction = 1.0
        else:
            fraction = max(0.0, min(1.0, 1.0 - dark_mass / targeted_mass))
        return Completeness(
            fraction=fraction,
            dark_partitions=tuple(sorted(self.dark)),
            dropped_candidates=self.dropped_candidates,
            retries=self.retries,
            failovers=self.failovers,
            dropped_messages=self.dropped_messages,
            timeouts=self.timeouts,
            simulated_latency=self.simulated_latency,
        )


class FaultInjector:
    """Applies a :class:`FaultPlan` to every delivery attempt.

    Owns a private seeded RNG (the router's draw sequence is never
    perturbed), a monotone delivery-attempt ``clock`` that the plan's
    unavailability windows are expressed against, and the per-query
    :class:`FaultSession`.  An injector built from a no-op plan reports
    ``active == False`` and the router bypasses it entirely — that is
    the bit-identity guarantee the measurement contract relies on.
    """

    def __init__(self, plan: FaultPlan, policy: RetryPolicy | None = None):
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.rng = random.Random(plan.seed)
        self.clock = 0
        self._windows: dict[int, tuple[tuple[int, int], ...]] = {}
        for peer_id, start, end in plan.unavailable_windows:
            self._windows.setdefault(peer_id, ())
            self._windows[peer_id] += ((start, end),)
        self._slow: dict[tuple[int, int], float] = {
            (sender, receiver): seconds
            for sender, receiver, seconds in plan.slow_links
        }
        self.session = FaultSession(retry_budget_left=self.policy.retry_budget)

    @property
    def active(self) -> bool:
        """False for no-op plans: the delivery path must not change."""
        return not self.plan.is_noop

    def begin_session(self) -> FaultSession:
        """Start a fresh per-query fault record (engine entry points)."""
        self.session = FaultSession(retry_budget_left=self.policy.retry_budget)
        return self.session

    def attempt(self, sender: int, receiver: int) -> DeliveryOutcome:
        """Adjudicate one delivery attempt (advances the clock)."""
        self.clock += 1
        windows = self._windows.get(receiver)
        if windows:
            clock = self.clock
            for start, end in windows:
                if start <= clock < end:
                    return DeliveryOutcome.UNAVAILABLE
        p = self.plan.drop_probability
        if p > 0.0 and self.rng.random() < p:
            return DeliveryOutcome.DROPPED
        return DeliveryOutcome.DELIVERED

    def link_latency(self, sender: int, receiver: int) -> float:
        """Simulated one-way latency of one delivery attempt."""
        return self._slow.get((sender, receiver), self.plan.link_latency)
