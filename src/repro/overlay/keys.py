"""Binary key-space algebra for the P-Grid trie.

Keys are fixed-width binary strings represented as Python ``str`` of
``'0'``/``'1'`` characters.  Peer *paths* are variable-length prefixes of
the same space.  This module provides the prefix algebra used by routing
(Algorithm 1): prefix tests, common-prefix length, bit flipping, and the
conversion between binary strings and integer intervals used by range
queries.

The string representation was chosen over packed integers deliberately:
prefix relations — the heart of P-Grid routing — become plain
``str.startswith`` calls, which keeps every routing decision readable and
is plenty fast for simulation purposes.
"""

from __future__ import annotations

from repro.core.errors import KeyspaceError

_BINARY_CHARS = frozenset("01")


def validate_key(key: str) -> str:
    """Return ``key`` unchanged if it is a well-formed binary string.

    Raises :class:`KeyspaceError` for anything containing characters other
    than ``'0'`` and ``'1'``.  The empty string is a valid path (the trie
    root) but callers that require full-width keys should also check length.
    """
    if not _BINARY_CHARS.issuperset(key):
        raise KeyspaceError(f"not a binary key: {key!r}")
    return key


def is_prefix(prefix: str, key: str) -> bool:
    """True if ``prefix`` is a (non-strict) prefix of ``key``."""
    return key.startswith(prefix)


def common_prefix_len(a: str, b: str) -> int:
    """Length of the longest common prefix of two binary strings."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def flip_bit(path: str, index: int) -> str:
    """Return ``path`` with the bit at ``index`` inverted.

    Used to address the *complementary subtrie* at a routing level:
    ``flip_bit(pi, l)[: l + 1]`` is the prefix a level-``l`` routing
    reference must match.
    """
    if not 0 <= index < len(path):
        raise KeyspaceError(f"bit index {index} out of range for {path!r}")
    flipped = "1" if path[index] == "0" else "0"
    return path[:index] + flipped + path[index + 1 :]


def sibling_prefix(path: str, level: int) -> str:
    """Prefix of the complementary subtrie at ``level``.

    For a peer with path ``pi``, the level-``level`` references point at
    peers whose path starts with ``pi[:level]`` followed by the inverse of
    ``pi[level]`` (Section 2 of the paper).
    """
    if not 0 <= level < len(path):
        raise KeyspaceError(f"level {level} out of range for path {path!r}")
    inverse = "1" if path[level] == "0" else "0"
    return path[:level] + inverse


def key_to_int(key: str) -> int:
    """Interpret a binary string as an unsigned integer (MSB first)."""
    validate_key(key)
    if not key:
        return 0
    return int(key, 2)


def int_to_key(value: int, bits: int) -> str:
    """Render an unsigned integer as a fixed-width binary string."""
    if value < 0:
        raise KeyspaceError(f"key value must be non-negative, got {value}")
    if value >= 1 << bits:
        raise KeyspaceError(f"value {value} does not fit in {bits} bits")
    return format(value, f"0{bits}b") if bits else ""


def prefix_interval(prefix: str, bits: int) -> tuple[int, int]:
    """Inclusive integer interval ``[lo, hi]`` covered by ``prefix``.

    A prefix of length ``l`` covers all ``bits``-wide keys that start with
    it: ``lo = prefix || 00..0`` and ``hi = prefix || 11..1``.
    """
    validate_key(prefix)
    if len(prefix) > bits:
        raise KeyspaceError(
            f"prefix {prefix!r} longer than key width {bits}"
        )
    pad = bits - len(prefix)
    lo = key_to_int(prefix) << pad
    hi = lo + (1 << pad) - 1
    return lo, hi


def interval_overlaps_prefix(lo: int, hi: int, prefix: str, bits: int) -> bool:
    """True if the integer interval ``[lo, hi]`` intersects ``prefix``'s range."""
    p_lo, p_hi = prefix_interval(prefix, bits)
    return lo <= p_hi and p_lo <= hi


def next_key(key: str) -> str | None:
    """Smallest key strictly greater than ``key`` at the same width.

    Returns ``None`` if ``key`` is the all-ones maximum.
    """
    validate_key(key)
    value = key_to_int(key)
    if value + 1 >= 1 << len(key):
        return None
    return int_to_key(value + 1, len(key))
