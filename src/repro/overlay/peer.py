"""The peer model: path, routing table, replicas, local datastore.

A :class:`Peer` owns

* its **path** ``pi(p)`` — the binary prefix of the key space it is
  responsible for;
* a **routing table** ``rho(p, l)`` — for every level ``l < |pi(p)|``, a
  set of references to peers in the *complementary* subtrie at that level
  (paths starting with ``pi(p)[:l]`` + inverted bit), with exponentially
  increasing key-space distance — the small-world construction of
  Section 2;
* **replica references** ``sigma(p)`` — other peers sharing the same path
  (structural replication);
* a **local datastore** ``delta(p)`` holding the index entries whose key
  matches its path.

Peers are addressed by integer id inside a network; references are stored
as ids to keep the object graph flat and picklable.
"""

from __future__ import annotations

from repro.core.errors import OverlayError
from repro.storage.datastore import LocalDataStore


class Peer:
    """One simulated peer."""

    __slots__ = ("peer_id", "path", "routing_table", "replicas", "store", "online")

    def __init__(self, peer_id: int, path: str):
        self.peer_id = peer_id
        self.path = path
        #: routing_table[l] = list of peer ids with path prefix
        #: ``sibling_prefix(path, l)``; one list per level 0..len(path)-1.
        self.routing_table: list[list[int]] = [[] for __ in range(len(path))]
        #: ids of peers with the same path (data replication refs).
        self.replicas: list[int] = []
        self.store = LocalDataStore()
        self.online = True

    def references(self, level: int) -> list[int]:
        """``rho(p, level)`` — routing references at one trie level."""
        if not 0 <= level < len(self.path):
            raise OverlayError(
                f"peer {self.peer_id} has no routing level {level} "
                f"(path length {len(self.path)})"
            )
        return self.routing_table[level]

    def set_references(self, level: int, refs: list[int]) -> None:
        """Install the routing references for one level."""
        if not 0 <= level < len(self.path):
            raise OverlayError(
                f"peer {self.peer_id} has no routing level {level}"
            )
        self.routing_table[level] = list(refs)

    def responsible_for(self, key: str) -> bool:
        """Algorithm 1's responsibility test.

        True when the peer's path is a prefix of the key (full-width
        lookups) *or* the key is a proper prefix of the path (prefix
        queries that this peer's whole partition satisfies).
        """
        return key.startswith(self.path) or self.path.startswith(key)

    def routing_entry_count(self) -> int:
        """Total references in the routing table (diagnostics)."""
        return sum(len(level) for level in self.routing_table)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Peer(id={self.peer_id}, path={self.path!r}, items={len(self.store)})"
