"""Message accounting — the simulator's measurement core.

The paper's evaluation reports exactly two metrics: the **number of
messages** and the **data volume** exchanged (Section 6: "the primary
performance measures we chose are the number of messages and bandwidth
usage, because these are the limiting factors for overlay networks").

Every overlay interaction in this library goes through a
:class:`MessageTracer`, which counts messages by type and sums payload
bytes.  Operators annotate messages with a *phase* so experiments can
break down cost (routing vs. candidate shipping vs. result return).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field


class MessageType(enum.Enum):
    """The message vocabulary of the simulated overlay."""

    ROUTE = "route"  # one routing hop towards a key
    FORWARD = "forward"  # shower/range forwarding inside a subtrie
    DELEGATE = "delegate"  # query plan handed to another peer
    RESULT = "result"  # (partial) results returned
    BROADCAST = "broadcast"  # naive strategy: full query to region peers


@dataclass(frozen=True, slots=True)
class Message:
    """One simulated network message (kept only when tracing verbosely)."""

    type: MessageType
    sender: int
    receiver: int
    payload_bytes: int
    phase: str


@dataclass
class TraceSnapshot:
    """Immutable copy of a tracer's counters (for before/after deltas)."""

    messages: int
    payload_bytes: int
    by_type: dict[str, int]
    by_phase: dict[str, int]

    def delta(self, later: "TraceSnapshot") -> "TraceSnapshot":
        """Counters accumulated between this snapshot and ``later``."""
        return TraceSnapshot(
            messages=later.messages - self.messages,
            payload_bytes=later.payload_bytes - self.payload_bytes,
            by_type={
                key: later.by_type.get(key, 0) - self.by_type.get(key, 0)
                for key in set(self.by_type) | set(later.by_type)
            },
            by_phase={
                key: later.by_phase.get(key, 0) - self.by_phase.get(key, 0)
                for key in set(self.by_phase) | set(later.by_phase)
            },
        )


class MessageTracer:
    """Counts every simulated message and its payload size.

    ``record_log=True`` additionally retains full :class:`Message` records —
    useful in tests, prohibitive in 10⁵-peer sweeps.
    """

    def __init__(self, record_log: bool = False):
        self.message_count = 0
        self.payload_bytes = 0
        self.counts_by_type: Counter[str] = Counter()
        self.counts_by_phase: Counter[str] = Counter()
        self.bytes_by_phase: Counter[str] = Counter()
        self.record_log = record_log
        self.log: list[Message] = []

    def send(
        self,
        type: MessageType,
        sender: int,
        receiver: int,
        payload_bytes: int = 0,
        phase: str = "query",
    ) -> None:
        """Account for one message."""
        self.message_count += 1
        self.payload_bytes += payload_bytes
        self.counts_by_type[type.value] += 1
        self.counts_by_phase[phase] += 1
        self.bytes_by_phase[phase] += payload_bytes
        if self.record_log:
            self.log.append(Message(type, sender, receiver, payload_bytes, phase))

    def send_bulk(
        self,
        type: MessageType,
        count: int,
        payload_bytes: int = 0,
        phase: str = "query",
    ) -> None:
        """Account for ``count`` messages totalling ``payload_bytes`` at once.

        O(1) accounting for flows whose per-message loop is itself the
        cost being avoided — the sampled naive-broadcast estimator charges
        its extrapolated message counts here instead of iterating 10⁵
        peers.  Bulk charges are *not* appended to the verbose
        ``record_log`` (there are no per-message sender/receiver pairs to
        record); counters and per-phase totals update exactly as ``count``
        individual :meth:`send` calls would.
        """
        if count < 0:
            raise ValueError(f"bulk message count must be >= 0, got {count}")
        if count == 0:
            return
        self.message_count += count
        self.payload_bytes += payload_bytes
        self.counts_by_type[type.value] += count
        self.counts_by_phase[phase] += count
        self.bytes_by_phase[phase] += payload_bytes

    def merge(self, other: "MessageTracer") -> None:
        """Fold another tracer's charges into this one.

        The deterministic-merge half of the intra-cell fan-out
        (:class:`repro.overlay.fanout.FanOutExecutor`): worker units
        charge private scratch tracers, and the owner merges them in a
        stable order — counters add, and the verbose log (when kept)
        appends in merge order, so a fanned-out flow reproduces the
        serial loop's ledger byte for byte.
        """
        self.message_count += other.message_count
        self.payload_bytes += other.payload_bytes
        self.counts_by_type.update(other.counts_by_type)
        self.counts_by_phase.update(other.counts_by_phase)
        self.bytes_by_phase.update(other.bytes_by_phase)
        if self.record_log and other.log:
            self.log.extend(other.log)

    def snapshot(self) -> TraceSnapshot:
        """Copy of the current counters."""
        return TraceSnapshot(
            messages=self.message_count,
            payload_bytes=self.payload_bytes,
            by_type=dict(self.counts_by_type),
            by_phase=dict(self.counts_by_phase),
        )

    def reset(self) -> None:
        """Zero all counters (between experiment cells)."""
        self.message_count = 0
        self.payload_bytes = 0
        self.counts_by_type.clear()
        self.counts_by_phase.clear()
        self.bytes_by_phase.clear()
        self.log.clear()


@dataclass
class CostReport:
    """Human-readable cost summary of one query or workload run."""

    messages: int
    payload_bytes: int
    by_type: dict[str, int] = field(default_factory=dict)
    by_phase: dict[str, int] = field(default_factory=dict)
    #: Adaptive-strategy decisions taken while this cost accrued — a list
    #: of :class:`repro.query.cost.StrategyDecision` (untyped here to keep
    #: the accounting layer free of query-layer imports).  Empty for
    #: fixed-strategy runs; populated by the executor / workload runner
    #: whenever ``SimilarityStrategy.ADAPTIVE`` resolved a query, each
    #: entry carrying the chosen strategy plus its predicted and measured
    #: message/byte cost.
    decisions: list = field(default_factory=list)
    #: Completeness of the answer under transport faults — a
    #: :class:`repro.overlay.faults.Completeness` (untyped here, like
    #: ``decisions``, to keep the accounting layer dependency-free).
    #: ``None`` whenever no active fault injector is installed; under an
    #: active plan it records the covered key-space fraction, the dark
    #: partitions, dropped candidates, and the retry/failover tallies of
    #: this operation.
    completeness: object | None = None
    #: Verification-kernel diagnostics of this operation — a plain dict
    #: (untyped here, like ``decisions``, to keep the accounting layer
    #: dependency-free) with the kernel name and the operation's delta of
    #: the shared pool's :class:`~repro.similarity.verify.KernelCounters`
    #: (``computed``, ``memo_hits``, ``prefilter_rejected``,
    #: ``batches_flat``, ``batches_shared``).  ``None`` when the engine
    #: runs without a shared verifier pool.  Kernels change wall-clock
    #: only, so nothing here ever feeds back into measured series.
    verifier: dict | None = None

    @classmethod
    def from_delta(cls, before: TraceSnapshot, after: TraceSnapshot) -> "CostReport":
        delta = before.delta(after)
        return cls(
            messages=delta.messages,
            payload_bytes=delta.payload_bytes,
            by_type={k: v for k, v in delta.by_type.items() if v},
            by_phase={k: v for k, v in delta.by_phase.items() if v},
        )

    @property
    def payload_megabytes(self) -> float:
        return self.payload_bytes / 1_000_000.0
