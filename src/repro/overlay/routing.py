"""Prefix routing — Algorithm 1 and its multicast/batched variants.

The :class:`Router` executes lookups hop-by-hop through the peers' routing
tables, charging one ``ROUTE`` message per hop to the network's tracer.
Three primitives cover everything the operators need:

* :meth:`Router.route` — Algorithm 1: walk to *a* peer responsible for a
  key.  Each hop strictly extends the common prefix with the target key,
  so the walk terminates in at most ``len(path)`` hops and, in a balanced
  trie, takes ``O(0.5 log N)`` expected messages (Section 2).
* :meth:`Router.multicast_prefix` — reach *every* partition under a key
  prefix: route to the first one, then disseminate through the subtrie
  with one ``FORWARD`` message per additional partition (the shower
  pattern of [6]).
* :meth:`Router.route_many` — the paper's batching optimization ("we
  collect the calls to Retrieve() and contact peers only once"): a set of
  keys is grouped by responsible partition and each partition is contacted
  once.

Failures: every partition has ``k`` replicas; the router picks a random
*online* replica and falls back to the others, raising
:class:`PartitionUnreachableError` only when a whole partition is dark.

Transport faults: when the network carries an *active*
:class:`~repro.overlay.faults.FaultInjector`, every send goes through
:meth:`Router._deliver` — drops are retried with capped exponential
backoff (charged under the ``retry`` phase), unanswering peers trigger
replica failover (charged under ``failover``), and partitions that stay
dark either raise (``FaultMode.STRICT``) or are skipped and recorded on
the injector's per-query session (``FaultMode.DEGRADED``).  With no
injector — or a no-op plan — the delivery path is byte-for-byte the
code below, so the measured series stay bit-identical.
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.errors import PartitionUnreachableError, RoutingError
from repro.overlay import keys as keyspace
from repro.overlay.faults import DeliveryOutcome, FaultMode
from repro.overlay.messages import MessageTracer, MessageType
from repro.overlay.peer import Peer
from repro.storage.indexing import IndexEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overlay.fanout import FanOutExecutor
    from repro.overlay.network import PGridNetwork

#: Safety bound on routing hops; a correct trie never gets close.
MAX_HOPS_FACTOR = 4


class Router:
    """Hop-by-hop query routing over a :class:`PGridNetwork`."""

    def __init__(self, network: "PGridNetwork", rng: random.Random | None = None):
        self.network = network
        self.rng = rng if rng is not None else random.Random(network.config.seed + 1)

    @property
    def tracer(self) -> MessageTracer:
        return self.network.tracer

    # -- Algorithm 1 ---------------------------------------------------------

    def route(self, key: str, start_id: int, phase: str = "route") -> Peer:
        """Walk from ``start_id`` to a peer responsible for ``key``.

        Implements Algorithm 1's control flow; returns the final peer.
        Messages: one ``ROUTE`` per hop (the initiating peer's local
        processing is free).
        """
        keyspace.validate_key(key)
        injector = self.network.fault_injector
        if injector is not None and injector.active:
            injector.session.record_target(self.network.partition_for(key))
        peer = self.network.peer(start_id)
        if not peer.online:
            peer = self._reroute_from_offline(peer)
        hops = 0
        max_hops = MAX_HOPS_FACTOR * (self.network.max_depth + 1)
        while not peer.responsible_for(key):
            level = keyspace.common_prefix_len(peer.path, key)
            next_peer = self._pick_reference(peer, level)
            if not self._deliver(
                MessageType.ROUTE, peer.peer_id, next_peer, phase=phase
            ):
                next_peer = self._failover_reference(peer, level, next_peer)
            peer = next_peer
            hops += 1
            if hops > max_hops:
                raise RoutingError(
                    f"routing to {key!r} did not converge after {hops} hops"
                )
        return peer

    def retrieve(
        self, key: str, start_id: int, phase: str = "retrieve"
    ) -> tuple[list[IndexEntry], Peer]:
        """Algorithm 1's ``Retrieve``: entries whose key extends ``key``.

        When ``key`` is at least as long as the responsible peer's path,
        a single peer holds all matches; shorter (prefix) keys fan out to
        every partition under the prefix via :meth:`multicast_prefix`.
        Returns the matching entries and the peer that answered (the last
        one, for multicasts).
        """
        peer = self.route(key, start_id, phase=phase)
        if len(key) >= len(peer.path):
            return list(peer.store.prefix_scan(key)), peer
        entries: list[IndexEntry] = []
        contacted = self.multicast_prefix(key, start_id, phase=phase)
        for member in contacted:
            entries.extend(member.store.prefix_scan(key))
        return entries, contacted[-1] if contacted else peer

    # -- multicast (shower) ---------------------------------------------------

    def multicast_prefix(
        self, prefix: str, start_id: int, phase: str = "multicast"
    ) -> list[Peer]:
        """Contact one live replica of every partition under ``prefix``.

        Cost model of the shower algorithm [6]: ordinary routing to enter
        the subtrie, then exactly one ``FORWARD`` message per additional
        partition — dissemination reuses the trie's internal references,
        so no partition is contacted twice.

        When the tracer keeps no verbose log, the forwards are
        bulk-charged (identical counters) and unreplicated partitions
        skip the replica shuffle — ``random.shuffle`` of a one-element
        list consumes no RNG draws, so the fast path's draw sequence is
        identical to the logged path's.  Naive broadcasts at paper scale
        touch every partition per query; this loop is their floor.
        """
        network = self.network
        partitions = network.partitions_under(prefix)
        if not partitions:
            raise RoutingError(f"no partition under prefix {prefix!r}")
        injector = network.fault_injector
        if injector is not None and injector.active:
            return self._multicast_prefix_faulty(partitions, start_id, phase)
        first = self.route(partitions[0].path, start_id, phase=phase)
        contacted = [first]
        if not self.tracer.record_log:
            peers = network.peers
            first_id = first.peer_id
            for partition in partitions:
                peer_ids = partition.peer_ids
                if first_id in peer_ids:
                    continue
                if len(peer_ids) == 1:
                    replica = peers[peer_ids[0]]
                    if not replica.online:
                        raise PartitionUnreachableError(
                            f"partition {partition.path!r} has no online replica",
                            partition_index=partition.index,
                            partition_path=partition.path,
                        )
                else:
                    replica = self._live_replica(partition)
                contacted.append(replica)
            self.tracer.send_bulk(
                MessageType.FORWARD, len(contacted) - 1, 0, phase=phase
            )
            return contacted
        for partition in partitions:
            if partition.contains(first.peer_id):
                continue
            replica = self._live_replica(partition)
            self.tracer.send(
                MessageType.FORWARD, contacted[-1].peer_id, replica.peer_id, phase=phase
            )
            contacted.append(replica)
        return contacted

    def _multicast_prefix_faulty(
        self, partitions: Sequence["Partition"], start_id: int, phase: str
    ) -> list[Peer]:
        """Shower dissemination under an active fault injector.

        Routes into the first *reachable* partition, then contacts every
        further partition through :meth:`_contact_partition` (retry +
        replica failover).  In ``DEGRADED`` mode dark partitions are
        recorded on the fault session and skipped; in ``STRICT`` mode
        the first dark partition raises, matching the healthy path's
        semantics.
        """
        session = self.network.fault_injector.session
        degraded = self.network.fault_mode is FaultMode.DEGRADED
        for partition in partitions:
            session.record_target(partition)
        first: Peer | None = None
        entry_index = 0
        for index, partition in enumerate(partitions):
            try:
                first = self.route(partition.path, start_id, phase=phase)
                entry_index = index
                break
            except PartitionUnreachableError:
                if not degraded:
                    raise
                session.record_dark(partition)
        if first is None:
            return []
        contacted = [first]
        for partition in partitions[entry_index:]:
            if partition.contains(first.peer_id):
                continue
            replica = self._contact_partition(
                partition, contacted[-1].peer_id, phase
            )
            if replica is None:
                continue
            contacted.append(replica)
        return contacted

    # -- batched retrieval ------------------------------------------------------

    def route_many(
        self, keys: Iterable[str], start_id: int, phase: str = "batch"
    ) -> dict[str, Peer]:
        """Route a batch of keys, contacting each responsible partition once.

        Returns a map from key to the peer answering it.  Cost: one routed
        walk to the nearest partition, then one ``FORWARD`` per further
        partition (shower-style), instead of a full routed walk per key.
        """
        unique = sorted(set(keys))
        if not unique:
            return {}
        by_partition: dict[int, list[str]] = defaultdict(list)
        for key in unique:
            partition = self.network.partition_for(key)
            by_partition[partition.index].append(key)
        injector = self.network.fault_injector
        faulty = injector is not None and injector.active
        degraded = faulty and self.network.fault_mode is FaultMode.DEGRADED
        answers: dict[str, Peer] = {}
        previous: Peer | None = None
        for index in sorted(by_partition):
            partition = self.network.partition(index)
            if faulty:
                injector.session.record_target(partition)
            if previous is None:
                try:
                    peer = self.route(partition.path, start_id, phase=phase)
                except PartitionUnreachableError:
                    if not degraded:
                        raise
                    injector.session.record_dark(partition)
                    continue
            elif faulty:
                contacted = self._contact_partition(
                    partition, previous.peer_id, phase
                )
                if contacted is None:
                    continue
                peer = contacted
            else:
                peer = self._live_replica(partition)
                self.tracer.send(
                    MessageType.FORWARD, previous.peer_id, peer.peer_id, phase=phase
                )
            for key in by_partition[index]:
                answers[key] = peer
            previous = peer
        return answers

    def retrieve_many(
        self, keys: Iterable[str], start_id: int, phase: str = "batch"
    ) -> dict[str, list[IndexEntry]]:
        """Batched ``Retrieve``: entries per key, partitions contacted once."""
        answers = self.route_many(keys, start_id, phase=phase)
        return {
            key: list(peer.store.prefix_scan(key)) for key, peer in answers.items()
        }

    # -- explicit message accounting helpers -----------------------------------

    def send_result(
        self, sender: int, receiver: int, payload_bytes: int, phase: str = "result"
    ) -> bool:
        """Charge one result-return message; False if faults dropped it."""
        return self._send_direct(
            MessageType.RESULT, sender, receiver, payload_bytes, phase
        )

    def send_delegate(
        self, sender: int, receiver: int, payload_bytes: int, phase: str = "delegate"
    ) -> bool:
        """Charge one plan-delegation message; False if faults dropped it."""
        return self._send_direct(
            MessageType.DELEGATE, sender, receiver, payload_bytes, phase
        )

    def send_broadcast(
        self, sender: int, receiver: int, payload_bytes: int, phase: str = "broadcast"
    ) -> bool:
        """Charge one naive-strategy broadcast message; False if dropped."""
        return self._send_direct(
            MessageType.BROADCAST, sender, receiver, payload_bytes, phase
        )

    def send_broadcast_fanout(
        self,
        sender: int,
        peers: Sequence[Peer],
        payload_bytes_for: "Callable[[Peer], int]",
        fanout: "FanOutExecutor",
        phase: str = "broadcast",
    ) -> None:
        """Charge one broadcast query copy per peer, fanned out on threads.

        The parallel counterpart of a ``send_broadcast`` loop: each copy
        is charged on a private scratch tracer and the scratches merge
        into the real tracer in the given (stable) peer order, so the
        resulting counters and verbose log are byte-identical to the
        serial loop.  Healthy transport only — per-copy retry/failover
        consumes RNG and must stay on the caller's thread, so an active
        fault injector is a caller bug, not a silent fallback.
        """
        if self.faults_active():
            raise RoutingError(
                "send_broadcast_fanout requires a healthy transport; "
                "use send_broadcast_failover under an active fault plan"
            )

        def copy_task(peer: Peer) -> "Callable[[MessageTracer], None]":
            payload = payload_bytes_for(peer)

            def task(scratch: MessageTracer) -> None:
                scratch.send(
                    MessageType.BROADCAST, sender, peer.peer_id, payload,
                    phase=phase,
                )

            return task

        fanout.run_traced(self.tracer, [copy_task(peer) for peer in peers])

    # -- fault-aware delivery ----------------------------------------------------

    def faults_active(self) -> bool:
        """True when an active fault injector intercepts deliveries."""
        injector = self.network.fault_injector
        return injector is not None and injector.active

    def record_dropped_candidates(self, count: int) -> None:
        """Note ``count`` result rows lost to undeliverable messages."""
        injector = self.network.fault_injector
        if injector is not None and injector.active:
            injector.session.dropped_candidates += count

    def _deliver(
        self,
        msg_type: MessageType,
        sender_id: int,
        receiver: Peer,
        payload_bytes: int = 0,
        phase: str = "query",
    ) -> bool:
        """Send one message through the fault injector, retrying drops.

        The first attempt is charged under the caller's ``phase`` (so a
        clean delivery is indistinguishable from the healthy path);
        every retry is charged under ``retry``.  Returns False when the
        receiver is unavailable (the caller fails over) or when the
        policy's attempt cap / the session's retry budget is exhausted.
        """
        injector = self.network.fault_injector
        if injector is None or not injector.active:
            self.tracer.send(
                msg_type, sender_id, receiver.peer_id, payload_bytes, phase=phase
            )
            return True
        policy = injector.policy
        session = injector.session
        attempt = 1
        while True:
            self.tracer.send(
                msg_type,
                sender_id,
                receiver.peer_id,
                payload_bytes,
                phase=phase if attempt == 1 else "retry",
            )
            if attempt > 1:
                session.retries += 1
            session.simulated_latency += injector.link_latency(
                sender_id, receiver.peer_id
            )
            outcome = injector.attempt(sender_id, receiver.peer_id)
            if outcome is DeliveryOutcome.DELIVERED:
                return True
            if outcome is DeliveryOutcome.UNAVAILABLE:
                session.timeouts += 1
                session.simulated_latency += policy.timeout
                return False
            session.dropped_messages += 1
            if attempt >= policy.max_attempts or not session.consume_retry():
                return False
            session.simulated_latency += policy.backoff(attempt)
            attempt += 1

    def _send_direct(
        self,
        msg_type: MessageType,
        sender: int,
        receiver: int,
        payload_bytes: int,
        phase: str,
    ) -> bool:
        """One point-to-point message (result/delegate/broadcast).

        Healthy path: a single tracer charge, always delivered.  Under
        an active injector the delivery is retried like any other; an
        undeliverable message raises in ``STRICT`` mode and returns
        False in ``DEGRADED`` mode (callers drop the affected rows and
        record them via :meth:`record_dropped_candidates`).
        """
        injector = self.network.fault_injector
        if injector is None or not injector.active:
            self.tracer.send(msg_type, sender, receiver, payload_bytes, phase=phase)
            return True
        delivered = self._deliver(
            msg_type, sender, self.network.peer(receiver), payload_bytes, phase
        )
        if not delivered and self.network.fault_mode is FaultMode.STRICT:
            raise RoutingError(
                f"delivery of {msg_type.value} message from peer {sender} "
                f"to peer {receiver} failed after retries",
                peer_id=receiver,
            )
        return delivered

    def send_broadcast_failover(
        self,
        sender: int,
        peer: Peer,
        payload_bytes: int,
        phase: str = "broadcast",
    ) -> Peer | None:
        """Deliver one broadcast query copy, failing over to replicas.

        Active faults only (callers use :meth:`send_broadcast` on the
        healthy path).  Returns the replica that finally received the
        copy; when the whole partition is unreachable, ``DEGRADED``
        records it dark and returns ``None`` while ``STRICT`` raises.
        """
        injector = self.network.fault_injector
        session = injector.session
        if self._deliver(
            MessageType.BROADCAST, sender, peer, payload_bytes, phase=phase
        ):
            return peer
        partition = self.network.partition_for(peer.path)
        for replica_id in peer.replicas:
            replica = self.network.peer(replica_id)
            if not replica.online:
                continue
            session.failovers += 1
            if self._deliver(
                MessageType.BROADCAST, sender, replica, payload_bytes,
                phase="failover",
            ):
                return replica
        if self.network.fault_mode is FaultMode.DEGRADED:
            session.record_dark(partition)
            return None
        raise PartitionUnreachableError(
            f"broadcast into partition {partition.path!r} failed on every replica",
            partition_index=partition.index,
            partition_path=partition.path,
        )

    def _contact_partition(
        self, partition: "Partition", sender_id: int, phase: str
    ) -> Peer | None:
        """Forward into one partition under faults, failing over replicas.

        Tries a random online replica first (charged under the caller's
        phase), then the remaining online replicas (each contact charged
        under ``failover``).  When every replica is offline or
        unreachable: ``STRICT`` raises a :class:`PartitionUnreachableError`
        carrying the partition's index/path, ``DEGRADED`` records the
        partition dark on the fault session and returns ``None``.
        """
        injector = self.network.fault_injector
        session = injector.session
        order = list(partition.peer_ids)
        self.rng.shuffle(order)
        first_contact = True
        for peer_id in order:
            replica = self.network.peer(peer_id)
            if not replica.online:
                continue
            if not first_contact:
                session.failovers += 1
            delivered = self._deliver(
                MessageType.FORWARD,
                sender_id,
                replica,
                phase=phase if first_contact else "failover",
            )
            first_contact = False
            if delivered:
                return replica
        if self.network.fault_mode is FaultMode.DEGRADED:
            session.record_dark(partition)
            return None
        raise PartitionUnreachableError(
            f"partition {partition.path!r} has no reachable replica",
            partition_index=partition.index,
            partition_path=partition.path,
        )

    def _failover_reference(self, peer: Peer, level: int, failed: Peer) -> Peer:
        """Re-route one hop after a failed delivery (active faults only).

        Retries the remaining online candidates at ``level`` — the other
        routing references and the replicas sharing their partitions —
        charging each contact under the ``failover`` phase.  Raises a
        context-carrying :class:`PartitionUnreachableError` when no
        candidate answers.
        """
        injector = self.network.fault_injector
        session = injector.session
        tried = {failed.peer_id}
        for ref_id in peer.references(level):
            candidate = self.network.peer(ref_id)
            for option_id in (candidate.peer_id, *candidate.replicas):
                if option_id in tried:
                    continue
                tried.add(option_id)
                option = self.network.peer(option_id)
                if not option.online:
                    continue
                session.failovers += 1
                if self._deliver(
                    MessageType.ROUTE, peer.peer_id, option, phase="failover"
                ):
                    return option
        raise PartitionUnreachableError(
            f"peer {peer.peer_id} could not reach any reference at level {level}",
            peer_id=peer.peer_id,
        )

    # -- internals ---------------------------------------------------------------

    def _pick_reference(self, peer: Peer, level: int) -> Peer:
        """Random live routing reference at ``level`` (Algorithm 1 line 5)."""
        refs = peer.references(level)
        if not refs:
            raise RoutingError(
                f"peer {peer.peer_id} has no references at level {level}"
            )
        order = list(refs)
        self.rng.shuffle(order)
        for ref_id in order:
            candidate = self.network.peer(ref_id)
            if candidate.online:
                return candidate
            # Dead reference: try the replicas sharing its partition before
            # giving up on the level (redundant routing entries, Section 2).
            for replica_id in candidate.replicas:
                replica = self.network.peer(replica_id)
                if replica.online:
                    return replica
        raise PartitionUnreachableError(
            f"all references of peer {peer.peer_id} at level {level} are offline",
            peer_id=peer.peer_id,
        )

    def _live_replica(self, partition: "Partition") -> Peer:
        """Random online peer of a partition."""
        order = list(partition.peer_ids)
        self.rng.shuffle(order)
        for peer_id in order:
            peer = self.network.peer(peer_id)
            if peer.online:
                return peer
        raise PartitionUnreachableError(
            f"partition {partition.path!r} has no online replica",
            partition_index=partition.index,
            partition_path=partition.path,
        )

    def _reroute_from_offline(self, peer: Peer) -> Peer:
        """Restart from a live replica when the chosen initiator is down."""
        for replica_id in peer.replicas:
            replica = self.network.peer(replica_id)
            if replica.online:
                return replica
        raise PartitionUnreachableError(
            f"initiating peer {peer.peer_id} and all its replicas are offline",
            peer_id=peer.peer_id,
        )


class Partition:
    """One key-space partition: a leaf path plus its replica peers."""

    __slots__ = ("index", "path", "peer_ids")

    def __init__(self, index: int, path: str, peer_ids: Sequence[int]):
        self.index = index
        self.path = path
        self.peer_ids = tuple(peer_ids)

    def contains(self, peer_id: int) -> bool:
        return peer_id in self.peer_ids

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Partition({self.index}, {self.path!r}, peers={self.peer_ids})"
