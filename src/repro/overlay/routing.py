"""Prefix routing — Algorithm 1 and its multicast/batched variants.

The :class:`Router` executes lookups hop-by-hop through the peers' routing
tables, charging one ``ROUTE`` message per hop to the network's tracer.
Three primitives cover everything the operators need:

* :meth:`Router.route` — Algorithm 1: walk to *a* peer responsible for a
  key.  Each hop strictly extends the common prefix with the target key,
  so the walk terminates in at most ``len(path)`` hops and, in a balanced
  trie, takes ``O(0.5 log N)`` expected messages (Section 2).
* :meth:`Router.multicast_prefix` — reach *every* partition under a key
  prefix: route to the first one, then disseminate through the subtrie
  with one ``FORWARD`` message per additional partition (the shower
  pattern of [6]).
* :meth:`Router.route_many` — the paper's batching optimization ("we
  collect the calls to Retrieve() and contact peers only once"): a set of
  keys is grouped by responsible partition and each partition is contacted
  once.

Failures: every partition has ``k`` replicas; the router picks a random
*online* replica and falls back to the others, raising
:class:`PartitionUnreachableError` only when a whole partition is dark.
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.errors import PartitionUnreachableError, RoutingError
from repro.overlay import keys as keyspace
from repro.overlay.messages import MessageTracer, MessageType
from repro.overlay.peer import Peer
from repro.storage.indexing import IndexEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overlay.network import PGridNetwork

#: Safety bound on routing hops; a correct trie never gets close.
MAX_HOPS_FACTOR = 4


class Router:
    """Hop-by-hop query routing over a :class:`PGridNetwork`."""

    def __init__(self, network: "PGridNetwork", rng: random.Random | None = None):
        self.network = network
        self.rng = rng if rng is not None else random.Random(network.config.seed + 1)

    @property
    def tracer(self) -> MessageTracer:
        return self.network.tracer

    # -- Algorithm 1 ---------------------------------------------------------

    def route(self, key: str, start_id: int, phase: str = "route") -> Peer:
        """Walk from ``start_id`` to a peer responsible for ``key``.

        Implements Algorithm 1's control flow; returns the final peer.
        Messages: one ``ROUTE`` per hop (the initiating peer's local
        processing is free).
        """
        keyspace.validate_key(key)
        peer = self.network.peer(start_id)
        if not peer.online:
            peer = self._reroute_from_offline(peer)
        hops = 0
        max_hops = MAX_HOPS_FACTOR * (self.network.max_depth + 1)
        while not peer.responsible_for(key):
            level = keyspace.common_prefix_len(peer.path, key)
            next_peer = self._pick_reference(peer, level)
            self.tracer.send(
                MessageType.ROUTE, peer.peer_id, next_peer.peer_id, phase=phase
            )
            peer = next_peer
            hops += 1
            if hops > max_hops:
                raise RoutingError(
                    f"routing to {key!r} did not converge after {hops} hops"
                )
        return peer

    def retrieve(
        self, key: str, start_id: int, phase: str = "retrieve"
    ) -> tuple[list[IndexEntry], Peer]:
        """Algorithm 1's ``Retrieve``: entries whose key extends ``key``.

        When ``key`` is at least as long as the responsible peer's path,
        a single peer holds all matches; shorter (prefix) keys fan out to
        every partition under the prefix via :meth:`multicast_prefix`.
        Returns the matching entries and the peer that answered (the last
        one, for multicasts).
        """
        peer = self.route(key, start_id, phase=phase)
        if len(key) >= len(peer.path):
            return list(peer.store.prefix_scan(key)), peer
        entries: list[IndexEntry] = []
        contacted = self.multicast_prefix(key, start_id, phase=phase)
        for member in contacted:
            entries.extend(member.store.prefix_scan(key))
        return entries, contacted[-1] if contacted else peer

    # -- multicast (shower) ---------------------------------------------------

    def multicast_prefix(
        self, prefix: str, start_id: int, phase: str = "multicast"
    ) -> list[Peer]:
        """Contact one live replica of every partition under ``prefix``.

        Cost model of the shower algorithm [6]: ordinary routing to enter
        the subtrie, then exactly one ``FORWARD`` message per additional
        partition — dissemination reuses the trie's internal references,
        so no partition is contacted twice.

        When the tracer keeps no verbose log, the forwards are
        bulk-charged (identical counters) and unreplicated partitions
        skip the replica shuffle — ``random.shuffle`` of a one-element
        list consumes no RNG draws, so the fast path's draw sequence is
        identical to the logged path's.  Naive broadcasts at paper scale
        touch every partition per query; this loop is their floor.
        """
        network = self.network
        partitions = network.partitions_under(prefix)
        if not partitions:
            raise RoutingError(f"no partition under prefix {prefix!r}")
        first = self.route(partitions[0].path, start_id, phase=phase)
        contacted = [first]
        if not self.tracer.record_log:
            peers = network.peers
            first_id = first.peer_id
            for partition in partitions:
                peer_ids = partition.peer_ids
                if first_id in peer_ids:
                    continue
                if len(peer_ids) == 1:
                    replica = peers[peer_ids[0]]
                    if not replica.online:
                        raise PartitionUnreachableError(
                            f"partition {partition.path!r} has no online replica"
                        )
                else:
                    replica = self._live_replica(partition)
                contacted.append(replica)
            self.tracer.send_bulk(
                MessageType.FORWARD, len(contacted) - 1, 0, phase=phase
            )
            return contacted
        for partition in partitions:
            if partition.contains(first.peer_id):
                continue
            replica = self._live_replica(partition)
            self.tracer.send(
                MessageType.FORWARD, contacted[-1].peer_id, replica.peer_id, phase=phase
            )
            contacted.append(replica)
        return contacted

    # -- batched retrieval ------------------------------------------------------

    def route_many(
        self, keys: Iterable[str], start_id: int, phase: str = "batch"
    ) -> dict[str, Peer]:
        """Route a batch of keys, contacting each responsible partition once.

        Returns a map from key to the peer answering it.  Cost: one routed
        walk to the nearest partition, then one ``FORWARD`` per further
        partition (shower-style), instead of a full routed walk per key.
        """
        unique = sorted(set(keys))
        if not unique:
            return {}
        by_partition: dict[int, list[str]] = defaultdict(list)
        for key in unique:
            partition = self.network.partition_for(key)
            by_partition[partition.index].append(key)
        answers: dict[str, Peer] = {}
        previous: Peer | None = None
        for index in sorted(by_partition):
            partition = self.network.partition(index)
            if previous is None:
                peer = self.route(partition.path, start_id, phase=phase)
            else:
                peer = self._live_replica(partition)
                self.tracer.send(
                    MessageType.FORWARD, previous.peer_id, peer.peer_id, phase=phase
                )
            for key in by_partition[index]:
                answers[key] = peer
            previous = peer
        return answers

    def retrieve_many(
        self, keys: Iterable[str], start_id: int, phase: str = "batch"
    ) -> dict[str, list[IndexEntry]]:
        """Batched ``Retrieve``: entries per key, partitions contacted once."""
        answers = self.route_many(keys, start_id, phase=phase)
        return {
            key: list(peer.store.prefix_scan(key)) for key, peer in answers.items()
        }

    # -- explicit message accounting helpers -----------------------------------

    def send_result(
        self, sender: int, receiver: int, payload_bytes: int, phase: str = "result"
    ) -> None:
        """Charge one result-return message."""
        self.tracer.send(
            MessageType.RESULT, sender, receiver, payload_bytes, phase=phase
        )

    def send_delegate(
        self, sender: int, receiver: int, payload_bytes: int, phase: str = "delegate"
    ) -> None:
        """Charge one plan-delegation message."""
        self.tracer.send(
            MessageType.DELEGATE, sender, receiver, payload_bytes, phase=phase
        )

    def send_broadcast(
        self, sender: int, receiver: int, payload_bytes: int, phase: str = "broadcast"
    ) -> None:
        """Charge one naive-strategy broadcast message."""
        self.tracer.send(
            MessageType.BROADCAST, sender, receiver, payload_bytes, phase=phase
        )

    # -- internals ---------------------------------------------------------------

    def _pick_reference(self, peer: Peer, level: int) -> Peer:
        """Random live routing reference at ``level`` (Algorithm 1 line 5)."""
        refs = peer.references(level)
        if not refs:
            raise RoutingError(
                f"peer {peer.peer_id} has no references at level {level}"
            )
        order = list(refs)
        self.rng.shuffle(order)
        for ref_id in order:
            candidate = self.network.peer(ref_id)
            if candidate.online:
                return candidate
            # Dead reference: try the replicas sharing its partition before
            # giving up on the level (redundant routing entries, Section 2).
            for replica_id in candidate.replicas:
                replica = self.network.peer(replica_id)
                if replica.online:
                    return replica
        raise PartitionUnreachableError(
            f"all references of peer {peer.peer_id} at level {level} are offline"
        )

    def _live_replica(self, partition: "Partition") -> Peer:
        """Random online peer of a partition."""
        order = list(partition.peer_ids)
        self.rng.shuffle(order)
        for peer_id in order:
            peer = self.network.peer(peer_id)
            if peer.online:
                return peer
        raise PartitionUnreachableError(
            f"partition {partition.path!r} has no online replica"
        )

    def _reroute_from_offline(self, peer: Peer) -> Peer:
        """Restart from a live replica when the chosen initiator is down."""
        for replica_id in peer.replicas:
            replica = self.network.peer(replica_id)
            if replica.online:
                return replica
        raise PartitionUnreachableError(
            f"initiating peer {peer.peer_id} and all its replicas are offline"
        )


class Partition:
    """One key-space partition: a leaf path plus its replica peers."""

    __slots__ = ("index", "path", "peer_ids")

    def __init__(self, index: int, path: str, peer_ids: Sequence[int]):
        self.index = index
        self.path = path
        self.peer_ids = tuple(peer_ids)

    def contains(self, peer_id: int) -> bool:
        return peer_id in self.peer_ids

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Partition({self.index}, {self.path!r}, peers={self.peer_ids})"
