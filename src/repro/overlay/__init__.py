"""P-Grid overlay substrate: keys, hashing, trie, peers, routing, ranges."""

from repro.overlay.churn import ChurnController, ChurnReport
from repro.overlay.faults import (
    Completeness,
    DeliveryOutcome,
    FaultInjector,
    FaultMode,
    FaultPlan,
    FaultSession,
    RetryPolicy,
)
from repro.overlay.hashing import (
    CompositeKeyCodec,
    NumericKeyCodec,
    OrderPreservingStringHash,
    uniform_key,
)
from repro.overlay.incremental import (
    BuildReport,
    IncrementalNetworkBuilder,
    assert_networks_equivalent,
)
from repro.overlay.messages import CostReport, MessageTracer, MessageType
from repro.overlay.network import PGridNetwork
from repro.overlay.peer import Peer
from repro.overlay.range_query import RangeQueryResult, range_query
from repro.overlay.routing import Partition, Router

__all__ = [
    "BuildReport",
    "ChurnController",
    "ChurnReport",
    "Completeness",
    "CompositeKeyCodec",
    "CostReport",
    "DeliveryOutcome",
    "FaultInjector",
    "FaultMode",
    "FaultPlan",
    "FaultSession",
    "RetryPolicy",
    "IncrementalNetworkBuilder",
    "assert_networks_equivalent",
    "MessageTracer",
    "MessageType",
    "NumericKeyCodec",
    "OrderPreservingStringHash",
    "PGridNetwork",
    "Partition",
    "Peer",
    "RangeQueryResult",
    "Router",
    "range_query",
    "uniform_key",
]
