"""The P-Grid network: peers, partitions, construction, and data placement.

:class:`PGridNetwork` is the simulator's root object.  Building one

1. carves the key space into partitions (uniform or data-aware trie),
2. creates ``replication`` peers per partition and wires their replica
   references,
3. fills every peer's routing table with ``refs_per_level`` random
   references into the complementary subtrie at each level (the
   small-world construction of Section 2),
4. and bulk-places index entries onto the peers responsible for them.

The network owns the :class:`MessageTracer` so every router/operator built
on top of it shares one cost ledger.
"""

from __future__ import annotations

import bisect
import random
from collections.abc import Iterable, Sequence

from repro.core.config import StoreConfig, TrieBalancing
from repro.core.errors import OverlayError
from repro.overlay import keys as keyspace
from repro.overlay import trie
from repro.overlay.faults import FaultInjector, FaultMode, FaultPlan, RetryPolicy
from repro.overlay.hashing import CompositeKeyCodec
from repro.overlay.messages import MessageTracer
from repro.overlay.peer import Peer
from repro.overlay.routing import Partition, Router
from repro.storage.indexing import EntryFactory, IndexEntry
from repro.storage.triple import Triple


class PGridNetwork:
    """A complete simulated P-Grid overlay."""

    def __init__(
        self,
        n_peers: int,
        config: StoreConfig | None = None,
        sample_keys: Sequence[str] | None = None,
        tracer: MessageTracer | None = None,
        trie_count_cache: dict[str, int] | None = None,
    ):
        """Build a network of ``n_peers``.

        ``sample_keys`` feeds the data-aware trie builder; pass the keys of
        the data you are about to insert (or a sample of them) to get
        P-Grid-style load balancing.  Omitting it — or selecting
        ``TrieBalancing.UNIFORM`` — produces an evenly split trie.

        ``trie_count_cache`` memoizes the data-aware builder's per-prefix
        sample counts across networks built over the *same*
        ``sample_keys`` (see :func:`repro.overlay.trie.data_aware_paths`);
        sweeps pass one shared cache so each cell's trie derivation reuses
        the previous cells' splits.
        """
        if n_peers < 1:
            raise OverlayError(f"need at least one peer, got {n_peers}")
        self.config = config if config is not None else StoreConfig()
        self.tracer = tracer if tracer is not None else MessageTracer()
        self.codec = CompositeKeyCodec(self.config)
        self.entry_factory = EntryFactory(self.config, self.codec)
        self.rng = random.Random(self.config.seed)

        k = self.config.replication
        n_partitions = max(1, n_peers // k)
        if self.config.balancing is TrieBalancing.DATA_AWARE and sample_keys:
            paths = trie.data_aware_paths(
                n_partitions,
                sample_keys,
                self.config.key_bits,
                count_cache=trie_count_cache,
            )
        else:
            paths = trie.uniform_paths(n_partitions)
        paths.sort()
        trie.validate_cover(paths)
        self._paths = paths
        self.max_depth = max(len(p) for p in paths)
        if self.max_depth > self.config.key_bits:
            raise OverlayError(
                f"trie depth {self.max_depth} exceeds key width "
                f"{self.config.key_bits}; increase key_bits"
            )

        self.peers: list[Peer] = []
        self.partitions: list[Partition] = []
        for index, path in enumerate(paths):
            peer_ids = []
            for __ in range(k):
                peer = Peer(len(self.peers), path)
                self.peers.append(peer)
                peer_ids.append(peer.peer_id)
            self.partitions.append(Partition(index, path, peer_ids))
            for peer_id in peer_ids:
                self.peers[peer_id].replicas = [
                    other for other in peer_ids if other != peer_id
                ]
        self._build_routing_tables()
        #: Transport fault injection (None, or an injector whose no-op
        #: plan keeps it inactive, leaves the delivery path untouched).
        self.fault_injector: FaultInjector | None = None
        #: How unrecoverable delivery failures surface: STRICT raises,
        #: DEGRADED skips dark partitions and records partial coverage.
        self.fault_mode: FaultMode = FaultMode.STRICT
        self.router = Router(self, random.Random(self.config.seed + 1))

    # -- construction ---------------------------------------------------------

    def _build_routing_tables(self) -> None:
        """Wire ``refs_per_level`` random references per peer and level.

        Candidate partitions under a sibling prefix form a contiguous run
        of the sorted path list, so each reference is drawn directly from
        the bisected index span — O(log P) per level instead of
        materializing the whole complementary subtrie (O(P) at the top
        level, which made construction O(N·P) and dominated per-cell
        rebuild cost in sweeps).  The RNG consumption is draw-for-draw
        identical to :meth:`_build_routing_tables_scan`, the retained
        reference implementation, so the resulting tables — and therefore
        every measured message series — are bit-identical (pinned by
        equivalence tests).
        """
        refs_per_level = self.config.refs_per_level
        rng = self.rng
        partitions = self.partitions
        for peer in self.peers:
            path = peer.path
            for level in range(len(path)):
                sibling = keyspace.sibling_prefix(path, level)
                lo, hi = self._partition_span(sibling)
                count = hi - lo
                if count <= 0:
                    raise OverlayError(
                        f"complementary subtrie {sibling!r} is empty — "
                        "the trie cover is broken"
                    )
                refs: list[int] = []
                for __ in range(min(refs_per_level, count)):
                    partition = partitions[lo + rng.randrange(count)]
                    replica = partition.peer_ids[
                        rng.randrange(len(partition.peer_ids))
                    ]
                    refs.append(replica)
                peer.set_references(level, refs)

    def _build_routing_tables_scan(self) -> None:
        """Reference routing construction: materialized candidate lists.

        The original O(N·P) implementation, kept — like the datastore's
        ``lookup_scan`` — so tests can assert the fast span-sampling
        construction produces identical tables from an identical RNG
        state.  To rebuild with it, reset ``self.rng`` to
        ``random.Random(config.seed)`` first.
        """
        refs_per_level = self.config.refs_per_level
        for peer in self.peers:
            for level in range(len(peer.path)):
                sibling = keyspace.sibling_prefix(peer.path, level)
                candidates = self._partition_range_scan(sibling)
                if not candidates:
                    raise OverlayError(
                        f"complementary subtrie {sibling!r} is empty — "
                        "the trie cover is broken"
                    )
                refs: list[int] = []
                for __ in range(min(refs_per_level, len(candidates))):
                    partition = candidates[self.rng.randrange(len(candidates))]
                    replica = partition.peer_ids[
                        self.rng.randrange(len(partition.peer_ids))
                    ]
                    refs.append(replica)
                peer.set_references(level, refs)

    # -- transport faults --------------------------------------------------------

    def install_faults(
        self, plan: FaultPlan, policy: RetryPolicy | None = None
    ) -> FaultInjector:
        """Install a fault injector for ``plan`` on the delivery path.

        A no-op plan installs an *inactive* injector: the router bypasses
        it entirely and the measured series stay bit-identical (pinned by
        property tests).  Returns the injector for session inspection.
        """
        self.fault_injector = FaultInjector(plan, policy)
        return self.fault_injector

    def clear_faults(self) -> None:
        """Remove any installed fault injector (healthy transport)."""
        self.fault_injector = None

    # -- oracle lookups (no message cost; used for placement & simulation) -----

    def peer(self, peer_id: int) -> Peer:
        return self.peers[peer_id]

    def partition(self, index: int) -> Partition:
        return self.partitions[index]

    @property
    def n_peers(self) -> int:
        return len(self.peers)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def partition_for(self, key: str) -> Partition:
        """The partition responsible for ``key`` (oracle bisection)."""
        index = trie.find_responsible(self._paths, key)
        return self.partitions[index]

    def partitions_under(self, prefix: str) -> list[Partition]:
        """All partitions whose path extends (or equals/prefixes) ``prefix``."""
        return self._partition_range(prefix)

    def partitions_in_range(self, lo_int: int, hi_int: int) -> list[Partition]:
        """Partitions intersecting an integer key interval, in key order."""
        bits = self.config.key_bits
        result = []
        for partition in self.partitions:
            if keyspace.interval_overlaps_prefix(lo_int, hi_int, partition.path, bits):
                result.append(partition)
        return result

    def _partition_span(self, prefix: str) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of the partitions covered by ``prefix``.

        Paths are sorted and prefix-free, so every path extending
        ``prefix`` sits in one contiguous run bounded by ``prefix`` and
        its binary successor.  An empty run whose left neighbour *covers*
        the prefix (the prefix is inside a single coarser partition)
        yields that neighbour as a one-element span.
        """
        paths = self._paths
        lo = bisect.bisect_left(paths, prefix)
        # Binary successor: strip trailing '1's, flip the final '0'.
        stripped = prefix.rstrip("1")
        if stripped:
            hi = bisect.bisect_left(paths, stripped[:-1] + "1")
        else:
            hi = len(paths)
        if lo == hi and lo > 0 and prefix.startswith(paths[lo - 1]):
            return lo - 1, lo
        return lo, hi

    def _partition_range(self, prefix: str) -> list[Partition]:
        """Partitions covered by ``prefix`` (contiguous span of the cover)."""
        lo, hi = self._partition_span(prefix)
        return self.partitions[lo:hi]

    def _partition_range_scan(self, prefix: str) -> list[Partition]:
        """Reference implementation of :meth:`_partition_range`.

        Linear startswith scan from the bisection point; kept so property
        tests can pin span == scan on arbitrary tries.
        """
        lo = bisect.bisect_left(self._paths, prefix)
        result: list[Partition] = []
        index = lo
        while index < len(self._paths) and self._paths[index].startswith(prefix):
            result.append(self.partitions[index])
            index += 1
        if not result and lo > 0 and prefix.startswith(self._paths[lo - 1]):
            # The prefix is *inside* a single coarser partition.
            result.append(self.partitions[lo - 1])
        return result

    # -- data placement ----------------------------------------------------------

    def insert_triples(
        self, triples: Iterable[Triple], respect_online: bool = False
    ) -> int:
        """Index and place triples; returns the number of entries stored.

        Placement is done with the oracle (no routed insert messages): the
        paper's evaluation measures *query* cost, with publishing treated
        as an offline bulk load.  :meth:`estimate_insert_messages` prices
        the online publishing cost analytically.

        ``respect_online`` skips offline replicas — the churn setting,
        where an insert while a replica is down leaves that replica
        divergent until :func:`~repro.overlay.replication.repair_partition`
        runs anti-entropy.  The default writes every replica (bulk-load
        semantics, unchanged).
        """
        per_partition: dict[int, list[IndexEntry]] = {}
        count = 0
        for entry in self.entry_factory.entries_for_all(triples):
            index = trie.find_responsible(self._paths, entry.key)
            per_partition.setdefault(index, []).append(entry)
            count += 1
        for index, entries in per_partition.items():
            for peer_id in self.partitions[index].peer_ids:
                peer = self.peers[peer_id]
                if respect_online and not peer.online:
                    continue
                peer.store.add_bulk(entries)
        return count

    def place_entries(self, entries: Sequence[IndexEntry]) -> int:
        """Bulk-place pre-built index entries sorted by key.

        The incremental-sweep fast path: entry derivation (q-gram
        decomposition, key hashing) happens once per dataset via
        :class:`EntryFactory`; each network re-places the same entry list
        with a single merge walk over its sorted trie paths — O(E + P)
        partition assignment instead of O(E log P) per-entry bisection,
        and no re-tokenization.  ``entries`` must be sorted by ``key``
        (ties in any order); placement is oracle-based exactly like
        :meth:`insert_triples`.  Returns the number of entries placed.
        """
        paths = self._paths
        n_partitions = len(paths)
        index = 0
        buffer: list[IndexEntry] = []
        count = 0

        def flush(partition_index: int) -> None:
            if not buffer:
                return
            for peer_id in self.partitions[partition_index].peer_ids:
                self.peers[peer_id].store.add_bulk(buffer)
            buffer.clear()

        for entry in entries:
            key = entry.key
            if not key.startswith(paths[index]) or (
                index + 1 < n_partitions and paths[index + 1] <= key
            ):
                advanced = index
                while advanced + 1 < n_partitions and paths[advanced + 1] <= key:
                    advanced += 1
                if not key.startswith(paths[advanced]):
                    # Out-of-order or prefix key: fall back to the oracle.
                    advanced = trie.find_responsible(paths, key)
                if advanced != index:
                    flush(index)
                    index = advanced
            buffer.append(entry)
            count += 1
        flush(index)
        return count

    def apply_entries(
        self,
        entries: Sequence[IndexEntry],
        respect_online: bool = False,
        remove: bool = False,
    ) -> tuple[int, set[int]]:
        """Add (or remove) pre-built entries; report affected partitions.

        The write primitive of the engine's explicit mutation path:
        entries are grouped by responsible partition, applied to every
        (optionally only online) replica, and the set of touched
        partition indices comes back so the caller can invalidate exactly
        those partitions' memo entries and statistics.  ``remove=True``
        deletes instead of adding; a removal only counts when at least
        one contacted replica actually stored the entry (deleting absent
        data is a no-op that touches nothing).  Returns ``(applied,
        affected_partition_indices)``.
        """
        per_partition: dict[int, list[IndexEntry]] = {}
        for entry in entries:
            index = trie.find_responsible(self._paths, entry.key)
            per_partition.setdefault(index, []).append(entry)
        applied = 0
        affected: set[int] = set()
        for index, partition_entries in per_partition.items():
            touched = False
            if remove:
                for entry in partition_entries:
                    removed_here = False
                    for peer_id in self.partitions[index].peer_ids:
                        peer = self.peers[peer_id]
                        if respect_online and not peer.online:
                            continue
                        if peer.store.remove(entry):
                            removed_here = True
                    if removed_here:
                        applied += 1
                        touched = True
            else:
                for peer_id in self.partitions[index].peer_ids:
                    peer = self.peers[peer_id]
                    if respect_online and not peer.online:
                        continue
                    peer.store.add_bulk(partition_entries)
                    touched = True
                if touched:
                    applied += len(partition_entries)
            if touched:
                affected.add(index)
        return applied, affected

    def insert_entry(self, entry: IndexEntry, respect_online: bool = False) -> None:
        """Place one pre-built index entry (incremental insertion)."""
        partition = self.partition_for(entry.key)
        for peer_id in partition.peer_ids:
            peer = self.peers[peer_id]
            if respect_online and not peer.online:
                continue
            peer.store.add(entry)

    def publish_triple(self, triple: Triple, publisher_id: int) -> int:
        """Online, routed publication of one triple's index entries.

        Models what inserting data over the live overlay costs — the
        overhead the paper's conclusion weighs ("the overhead of
        additional overlay messages ... is linear in the number of
        attribute columns"): the publisher batches the triple's entry
        keys, contacts each responsible partition once (routed walk +
        shower forwards), ships the entry payloads, and each partition
        fans out to its replicas.  Returns the number of messages spent;
        entries are actually stored, so the data is queryable afterwards.
        """
        entries = list(self.entry_factory.entries_for(triple))
        before = self.tracer.message_count
        answers = self.router.route_many(
            (entry.key for entry in entries), publisher_id, phase="publish"
        )
        by_partition: dict[int, list[IndexEntry]] = {}
        for entry in entries:
            peer = answers[entry.key]
            by_partition.setdefault(self.partition_for(peer.path).index, []).append(
                entry
            )
        from repro.overlay.messages import MessageType

        for index, partition_entries in by_partition.items():
            partition = self.partitions[index]
            payload = sum(e.payload_size() for e in partition_entries)
            receiver = partition.peer_ids[0]
            self.tracer.send(
                MessageType.RESULT, publisher_id, receiver, payload, phase="publish"
            )
            for peer_id in partition.peer_ids:
                self.peers[peer_id].store.add_bulk(partition_entries)
                if peer_id != receiver:
                    self.tracer.send(
                        MessageType.FORWARD, receiver, peer_id, payload,
                        phase="publish",
                    )
        return self.tracer.message_count - before

    def publish_triples(self, triples: Iterable[Triple], publisher_id: int) -> int:
        """Routed publication of many triples; returns total messages."""
        return sum(self.publish_triple(t, publisher_id) for t in triples)

    def estimate_insert_messages(self, triples: Iterable[Triple]) -> int:
        """Messages an online, routed publish of ``triples`` would cost.

        Each index entry requires one routed walk of expected
        ``0.5 * log2(n_partitions)`` hops (Section 2), times the
        replication factor for the final delivery.
        """
        import math

        entries = sum(1 for __ in self.entry_factory.entries_for_all(triples))
        expected_hops = 0.5 * math.log2(max(2, self.n_partitions))
        return int(entries * (expected_hops + (self.config.replication - 1)))

    # -- diagnostics ------------------------------------------------------------

    def load_distribution(self) -> list[int]:
        """Entries stored per peer (load-balance diagnostic)."""
        return [len(peer.store) for peer in self.peers]

    def random_peer_id(self, rng: random.Random | None = None) -> int:
        """Uniformly random online peer id (query initiators)."""
        chooser = rng if rng is not None else self.rng
        for __ in range(self.n_peers * 2):
            candidate = chooser.randrange(self.n_peers)
            if self.peers[candidate].online:
                return candidate
        raise OverlayError("could not find an online peer")

    def total_entries(self) -> int:
        """Total index entries across all peers (replicas counted)."""
        return sum(len(peer.store) for peer in self.peers)

    def total_payload_bytes(self) -> int:
        """Total stored payload bytes across all peers (cached per store)."""
        return sum(peer.store.total_payload_bytes() for peer in self.peers)

    def store_version_token(self) -> int:
        """Sum of all peers' store mutation counters.

        Store versions only ever increase, so the sum is a monotone
        network-wide mutation token: equality with an earlier reading
        proves no peer's store changed in between.  The
        :class:`~repro.engine.QueryEngine` compares it to decide when its
        whole-workload memos must be dropped.
        """
        return sum(peer.store.version for peer in self.peers)
