"""Hash functions mapping application values into the binary key space.

P-Grid relies on an *order-preserving* hash so that lexicographically (or
numerically) adjacent values land on adjacent keys — this is what makes
range queries and q-gram prefix scans local operations (Sections 2 and 4 of
the paper).  This module provides:

* :class:`OrderPreservingStringHash` — strictly monotone string → key map;
* :func:`numeric_key_value` / :class:`NumericKeyCodec` — monotone float →
  key map based on the IEEE-754 order-preserving bit trick;
* :func:`uniform_key` — a uniform (md5-based) hash for ``oid`` lookups,
  where order is irrelevant and load balance is everything;
* :class:`CompositeKeyCodec` — ``attribute#value`` composite keys whose
  leading bits are the hashed attribute and trailing bits the hashed value,
  so prefix search on the attribute part yields schema-level scans and
  range search on the value part yields numeric similarity intervals.
"""

from __future__ import annotations

import hashlib
import math
import string as _string

from repro.core.config import StoreConfig
from repro.core.errors import HashingError
from repro.overlay import keys as keyspace

#: Characters the order-preserving string hash understands, in collation
#: order.  Covers the printable ASCII range used by the paper's datasets
#: (words, titles, attribute names) plus the q-gram extension markers
#: (\\x01, \\x02), which sort below every printable character.  Characters
#: outside the alphabet are folded onto their nearest neighbour to stay
#: total.
DEFAULT_ALPHABET = (
    "\x01\x02 !\"#$%&'()*+,-./0123456789:;<=>?@[]_`" + _string.ascii_lowercase
)


class OrderPreservingStringHash:
    """Strictly monotone map from strings to ``bits``-wide binary keys.

    The string is read as a fraction in base ``|alphabet| + 1`` with
    character ranks starting at 1 (rank 0 is reserved for "end of string"),
    and the key is the binary expansion of that fraction.  Reserving rank 0
    makes the map *strictly* monotone: ``"a" < "ab"`` implies
    ``key("a") < key("ab")`` because the implicit terminator ranks below
    every real character.

    Uppercase input is folded to lowercase before hashing — the paper's
    datasets are case-insensitive word collections.
    """

    def __init__(self, bits: int, alphabet: str = DEFAULT_ALPHABET):
        if bits < 1:
            raise HashingError(f"bits must be >= 1, got {bits}")
        if len(set(alphabet)) != len(alphabet):
            raise HashingError("alphabet contains duplicate characters")
        if sorted(alphabet) != list(alphabet):
            raise HashingError("alphabet must be sorted in collation order")
        self.bits = bits
        self.alphabet = alphabet
        self._rank = {ch: i + 1 for i, ch in enumerate(alphabet)}
        self._base = len(alphabet) + 1
        # Only the first ceil(bits / log2(base)) + 1 characters can influence
        # the key; hashing beyond that is wasted work.
        self._max_chars = int(bits / math.log2(self._base)) + 2

    def _rank_of(self, ch: str) -> int:
        """Rank of a character, folding unknown characters onto neighbours."""
        rank = self._rank.get(ch)
        if rank is not None:
            return rank
        folded = self._rank.get(ch.lower())
        if folded is not None:
            return folded
        # Clamp anything else to the nearest alphabet end so the map stays
        # total (monotonicity is only guaranteed within the alphabet).
        if ch < self.alphabet[0]:
            return 1
        return len(self.alphabet)

    def key_value(self, text: str) -> int:
        """Integer key value for ``text`` (the key is its binary rendering)."""
        text = text.lower()[: self._max_chars]
        # Horner evaluation of sum(rank_i / base^(i+1)) * 2^bits, done in
        # exact integer arithmetic to keep strict monotonicity at any width.
        numerator = 0
        denominator = 1
        for ch in text:
            numerator = numerator * self._base + self._rank_of(ch)
            denominator *= self._base
        value = (numerator << self.bits) // denominator
        # A fraction of exactly 1.0 cannot occur since rank <= base - 1,
        # but guard against the theoretical all-max-character edge.
        return min(value, (1 << self.bits) - 1)

    def key(self, text: str) -> str:
        """Binary key string for ``text``."""
        return keyspace.int_to_key(self.key_value(text), self.bits)


def float_to_ordered_int(value: float) -> int:
    """Map a float to an unsigned 64-bit int preserving numeric order.

    Classic IEEE-754 trick: reinterpret the float's bits; non-negative
    floats get the sign bit set, negative floats are bitwise inverted.
    The result is monotone over all finite floats (and symmetric around 0).
    """
    if math.isnan(value):
        raise HashingError("cannot hash NaN into the key space")
    if value == 0:
        value = 0.0  # collapse -0.0: equal floats must map equally
    bits = _float_bits(value)
    if bits & (1 << 63):  # negative
        return bits ^ 0xFFFFFFFFFFFFFFFF
    return bits | (1 << 63)


def _float_bits(value: float) -> int:
    """Raw IEEE-754 bit pattern of a float as an unsigned int."""
    import struct

    return struct.unpack("<Q", struct.pack("<d", float(value)))[0]


class NumericKeyCodec:
    """Monotone numeric → key map at a configurable width.

    Truncating the 64-bit ordered representation to ``bits`` keeps the map
    monotone (non-strictly: nearby floats may share a key, which only makes
    range queries slightly over-inclusive — peers verify values locally).
    """

    def __init__(self, bits: int):
        if not 1 <= bits <= 64:
            raise HashingError(f"numeric key bits must be in [1, 64], got {bits}")
        self.bits = bits

    def key_value(self, value: float) -> int:
        return float_to_ordered_int(value) >> (64 - self.bits)

    def key(self, value: float) -> str:
        return keyspace.int_to_key(self.key_value(value), self.bits)

    def range_keys(self, lo: float, hi: float) -> tuple[int, int]:
        """Inclusive integer key interval covering ``[lo, hi]``."""
        if lo > hi:
            raise HashingError(f"empty numeric range [{lo}, {hi}]")
        return self.key_value(lo), self.key_value(hi)


def uniform_key(text: str, bits: int) -> str:
    """Uniform, deterministic binary key for ``text`` (md5-based).

    Used for ``oid`` entries: object identifiers carry no meaningful order,
    so a uniform hash gives the best load balance.
    """
    digest = hashlib.md5(text.encode("utf-8")).digest()
    value = int.from_bytes(digest[:16], "big") >> (128 - bits)
    return keyspace.int_to_key(value, bits)


class CompositeKeyCodec:
    """Builds and dissects the key families of the storage scheme.

    One codec instance (derived from a :class:`StoreConfig`) produces every
    key kind the paper's Section 3/4 scheme needs:

    ========================  =============================================
    key kind                  layout
    ========================  =============================================
    ``oid_key(oid)``          uniform hash, full width
    ``value_key(v)``          order-preserving hash of the value, full width
    ``attr_value_key(A, v)``  ``oph(A)[:attr_bits] ++ hash(v)[:value_bits]``
    ``attr_prefix(A)``        just the attribute part (for attribute scans)
    ``schema_gram_key(g)``    order-preserving hash of the gram, full width
    ========================  =============================================

    String values use the order-preserving string hash; numeric values the
    monotone numeric codec — both confined to the value-bits suffix, so
    numeric range queries stay inside a single attribute's key region.

    The *attribute* part uses the uniform hash: attribute names only ever
    need identity (range/prefix semantics live in the value suffix), and
    an order-preserving attribute prefix would make every pair of
    namespaced attributes (``car:name`` vs ``car:price`` share 4+ chars ≈
    21 bits) collide into one region, merging their scan regions and
    wrecking load balance.
    """

    def __init__(self, config: StoreConfig):
        self.config = config
        self._full_hash = OrderPreservingStringHash(config.key_bits)
        self._value_hash = OrderPreservingStringHash(config.value_bits)
        self._numeric = NumericKeyCodec(config.value_bits)

    # -- full-width keys ---------------------------------------------------

    def oid_key(self, oid: str) -> str:
        """Key under which the complete object (all its triples) lives."""
        return uniform_key(oid, self.config.key_bits)

    def value_key(self, value: object) -> str:
        """Full-width key for keyword-style ``any attribute = v`` lookups."""
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            codec = NumericKeyCodec(self.config.key_bits)
            return codec.key(float(value))
        return self._full_hash.key(str(value))

    def schema_gram_key(self, gram: str) -> str:
        """Full-width key for a q-gram of an *attribute name*."""
        return self._full_hash.key(gram)

    # -- composite attribute#value keys -------------------------------------

    def attr_prefix(self, attribute: str) -> str:
        """The attribute part of composite keys — a scan prefix."""
        return uniform_key(attribute, self.config.attr_bits)

    def attr_value_key(self, attribute: str, value: object) -> str:
        """Composite key for an ``(attribute, value)`` pair."""
        return self.attr_prefix(attribute) + self._value_suffix(value)

    def attr_value_range(
        self, attribute: str, lo: float, hi: float
    ) -> tuple[str, str]:
        """Composite-key interval for ``attribute`` values in ``[lo, hi]``."""
        prefix = self.attr_prefix(attribute)
        lo_val, hi_val = self._numeric.range_keys(lo, hi)
        lo_key = prefix + keyspace.int_to_key(lo_val, self.config.value_bits)
        hi_key = prefix + keyspace.int_to_key(hi_val, self.config.value_bits)
        return lo_key, hi_key

    def attr_string_range(
        self, attribute: str, lo: str, hi: str
    ) -> tuple[str, str]:
        """Composite-key interval for string values in ``[lo, hi]``."""
        if lo > hi:
            raise HashingError(f"empty string range [{lo!r}, {hi!r}]")
        prefix = self.attr_prefix(attribute)
        lo_key = prefix + self._value_hash.key(lo)
        hi_key = prefix + self._value_hash.key(hi)
        return lo_key, hi_key

    def _value_suffix(self, value: object) -> str:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return self._numeric.key(float(value))
        return self._value_hash.key(str(value))
