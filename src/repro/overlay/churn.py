"""Failure injection — exercising routing under churn.

The paper defers a live robustness evaluation to PlanetLab but relies on
P-Grid's redundancy guarantees (replicated partitions, redundant routing
entries).  :class:`ChurnController` lets tests and benchmarks knock peers
offline deterministically and verify that queries still succeed as long as
every partition keeps one live replica.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import OverlayError
from repro.overlay.network import PGridNetwork


@dataclass
class ChurnReport:
    """What a churn episode did to the network."""

    failed_peer_ids: list[int]
    online_peers: int
    dark_partitions: list[int]

    @property
    def all_partitions_reachable(self) -> bool:
        return not self.dark_partitions


class ChurnController:
    """Deterministic peer failure / recovery driver."""

    def __init__(self, network: PGridNetwork, seed: int = 0):
        self.network = network
        self.rng = random.Random(seed)

    def fail_fraction(self, fraction: float, protect_partitions: bool = True) -> ChurnReport:
        """Take a random fraction of peers offline.

        With ``protect_partitions`` (default) no partition is allowed to go
        completely dark — mirroring the paper's operating assumption that
        "at least one peer in each partition is reachable".  Set it to
        False to study hard partition loss.
        """
        if not 0.0 <= fraction <= 1.0:
            raise OverlayError(f"fraction must be in [0, 1], got {fraction}")
        candidates = [p.peer_id for p in self.network.peers if p.online]
        self.rng.shuffle(candidates)
        target = int(len(candidates) * fraction)
        failed: list[int] = []
        for peer_id in candidates:
            if len(failed) >= target:
                break
            peer = self.network.peer(peer_id)
            if protect_partitions and self._is_last_replica(peer_id):
                continue
            peer.online = False
            failed.append(peer_id)
        return self._report(failed)

    def fail_peers(
        self, peer_ids: list[int], protect_partitions: bool = False
    ) -> ChurnReport:
        """Take specific peers offline.

        Ids are validated up front; peers that are already offline are
        skipped (a scripted scenario cannot silently double-count a
        failure).  ``protect_partitions`` mirrors :meth:`fail_fraction`:
        a peer whose partition would go completely dark is left online.
        The report's ``failed_peer_ids`` lists only the peers this call
        actually took down.
        """
        n_peers = self.network.n_peers
        for peer_id in peer_ids:
            if not 0 <= peer_id < n_peers:
                raise OverlayError(
                    f"unknown peer id {peer_id} (network has {n_peers} peers)",
                    peer_id=peer_id,
                )
        failed: list[int] = []
        for peer_id in dict.fromkeys(peer_ids):
            peer = self.network.peer(peer_id)
            if not peer.online:
                continue
            if protect_partitions and self._is_last_replica(peer_id):
                continue
            peer.online = False
            failed.append(peer_id)
        return self._report(failed)

    def recover_all(self) -> int:
        """Bring every peer back online; returns how many recovered."""
        recovered = 0
        for peer in self.network.peers:
            if not peer.online:
                peer.online = True
                recovered += 1
        return recovered

    def recover_peers(self, peer_ids: list[int]) -> int:
        """Bring specific peers back online; returns how many recovered.

        Ids are validated like :meth:`fail_peers`; peers already online
        are skipped.  Recovery alone never changes any store — a
        recovered replica that missed writes while offline stays
        divergent until anti-entropy repair runs (see
        :func:`~repro.overlay.replication.repair_partition`), which is
        why the engine's memo maintenance keys off repair, not recovery.
        """
        n_peers = self.network.n_peers
        for peer_id in peer_ids:
            if not 0 <= peer_id < n_peers:
                raise OverlayError(
                    f"unknown peer id {peer_id} (network has {n_peers} peers)",
                    peer_id=peer_id,
                )
        recovered = 0
        for peer_id in dict.fromkeys(peer_ids):
            peer = self.network.peer(peer_id)
            if not peer.online:
                peer.online = True
                recovered += 1
        return recovered

    def offline_peer_ids(self) -> list[int]:
        """Ids of every currently offline peer, ascending."""
        return [peer.peer_id for peer in self.network.peers if not peer.online]

    def _is_last_replica(self, peer_id: int) -> bool:
        peer = self.network.peer(peer_id)
        return not any(
            self.network.peer(replica).online for replica in peer.replicas
        )

    def _report(self, failed: list[int]) -> ChurnReport:
        dark = [
            partition.index
            for partition in self.network.partitions
            if not any(self.network.peer(pid).online for pid in partition.peer_ids)
        ]
        online = sum(1 for peer in self.network.peers if peer.online)
        return ChurnReport(
            failed_peer_ids=failed, online_peers=online, dark_partitions=dark
        )
