"""Intra-query fan-out: per-peer delegate work on a thread pool.

A broadcast or gram lookup fans the same query out to many peers, and
each contacted peer then does independent local work — scanning its
store, filtering postings, comparing strings.  :class:`FanOutExecutor`
runs those per-peer units concurrently while keeping the simulation's
measurement contract intact:

* **Deterministic results.**  Work is submitted in a *stable order*
  (callers order units by peer/partition id) and results are collected
  in submission order, so the merged outcome is independent of thread
  scheduling.
* **Deterministic charges.**  Units that charge messages run against a
  private scratch :class:`~repro.overlay.messages.MessageTracer` each;
  the scratches are merged into the real tracer in submission order
  (:meth:`MessageTracer.merge`), so counters, per-phase totals and the
  verbose log are byte-identical to the serial loop.
* **No RNG.**  Fanned-out units must not consume router RNG draws —
  routing, replica selection and anything else that draws stays on the
  caller's thread.  That is what keeps the parallel mode's measured
  series bit-identical to the serial reference path (property-tested).

The serial path remains the reference: every call site degrades to a
plain loop when no executor is installed, exactly like
``lookup_scan``/``_build_routing_tables_scan`` pair fast and reference
implementations elsewhere.  On CPython the GIL limits the speedup for
pure-Python scans; the mode exists so the execution *model* (what is
shared, what is per-worker, how charges merge) is in place and testable,
and it composes with the process-level sweep parallelism of
:class:`repro.bench.sweep.ParallelSweepRunner`, which is where
multi-core wall-clock wins come from.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

from repro.overlay.messages import MessageTracer

T = TypeVar("T")
U = TypeVar("U")

#: Fanning out fewer units than this runs inline: the pool's handoff
#: overhead exceeds any possible overlap.
MIN_FAN_OUT = 2


class FanOutExecutor:
    """A bounded thread pool with order-preserving collection.

    One executor is owned by a :class:`~repro.engine.QueryEngine` (never
    shared across engines: each benchmark cell — and each sweep worker
    process — gets its own, alongside its own seeded RNGs and
    :class:`~repro.similarity.verify.VerifierPool`).  Call
    :meth:`shutdown` (or use the engine as a context manager) when done;
    idle threads are cheap but finite.
    """

    def __init__(self, max_workers: int):
        if max_workers < MIN_FAN_OUT:
            raise ValueError(
                f"fan-out needs at least {MIN_FAN_OUT} workers, got {max_workers}"
            )
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-fanout"
        )

    def map_ordered(self, fn: Callable[[T], U], items: Sequence[T]) -> list[U]:
        """``[fn(item) for item in items]``, computed concurrently.

        Results come back in ``items`` order regardless of completion
        order; the first exception any unit raises is re-raised here.
        ``fn`` must be pure per-peer work — no tracer charges (use
        :meth:`run_traced`), no RNG draws.
        """
        items = list(items)
        if len(items) < MIN_FAN_OUT:
            return [fn(item) for item in items]
        return list(self._pool.map(fn, items))

    def run_traced(
        self,
        tracer: MessageTracer,
        tasks: Sequence[Callable[[MessageTracer], U]],
    ) -> list[U]:
        """Run charging units concurrently, merging charges in task order.

        Each task receives a private scratch tracer (same ``record_log``
        setting as ``tracer``) and charges only to it; after all tasks
        finish, the scratches are folded into ``tracer`` in submission
        order, so the final counters and verbose log match the serial
        loop byte for byte.  A failing task raises after no merge — the
        real tracer is never left half-charged.
        """
        tasks = list(tasks)
        scratches = [
            MessageTracer(record_log=tracer.record_log) for __ in tasks
        ]
        if len(tasks) < MIN_FAN_OUT:
            results = [task(scratch) for task, scratch in zip(tasks, scratches)]
        else:
            futures = [
                self._pool.submit(task, scratch)
                for task, scratch in zip(tasks, scratches)
            ]
            results = [future.result() for future in futures]
        for scratch in scratches:
            tracer.merge(scratch)
        return results

    def shutdown(self) -> None:
        """Release the pool's threads (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "FanOutExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
