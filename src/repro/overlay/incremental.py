"""Incremental network construction across a sweep's peer counts.

A Figure-1 sweep builds one :class:`~repro.overlay.network.PGridNetwork`
per peer count over the *same* dataset.  PR 1 hoisted the per-dataset
work (entry derivation, the data-aware trie sample) into
:class:`~repro.bench.experiment.PreparedDataset`; this module hoists the
per-*sweep* work: an :class:`IncrementalNetworkBuilder` grows each cell's
network from the state accumulated by the previous cells instead of
rebuilding everything from scratch.

What is actually carried forward — and why the result is still
bit-identical to a from-scratch build:

* **Trie split counts.**  The data-aware trie allocates peers to the two
  halves of every split proportionally to the sample keys falling into
  each half.  Those per-prefix counts depend only on the (fixed) sample,
  not on the partition count, so the builder shares one count cache
  across all cells: cell ``i+1`` re-derives its trie from the splits
  cells ``1..i`` already measured, touching the sorted sample only for
  prefixes no earlier cell reached.  Cached or not, the counts are equal,
  so the derived paths are equal.
* **Prepared entries.**  The sorted entry list is placed onto each cell's
  trie with the single merge walk of
  :meth:`~repro.overlay.network.PGridNetwork.place_entries` (PR 1).
* **Routing-table spans.**  Routing references are drawn directly from
  bisected partition-index spans
  (:meth:`~repro.overlay.network.PGridNetwork._build_routing_tables`),
  consuming the RNG draw-for-draw like the retained scan reference — the
  construction is cheaper, not different.

Because the routing references are sampled from a seeded RNG whose draw
sequence depends on every peer's path, a *structurally* grown network
(mutating the previous cell's peers in place) could not reproduce the
from-scratch tables bit-for-bit; the builder therefore grows the cheap
derived state (counts, entries) and keeps construction itself exactly
equivalent.  ``check_equivalence=True`` (or ``REPRO_SWEEP_CHECK=1`` via
the bench harness) re-builds every cell from scratch with the reference
scan construction and asserts full structural equality — trie, peers,
replicas, routing tables, stores.
"""

from __future__ import annotations

import random
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.config import StoreConfig
from repro.core.errors import OverlayError
from repro.overlay.network import PGridNetwork
from repro.storage.indexing import IndexEntry


@dataclass
class BuildReport:
    """Timings and reuse statistics for one incremental build."""

    n_peers: int
    #: Wall-clock seconds for trie + peers + routing tables.
    construct_seconds: float
    #: Wall-clock seconds for placing the prepared entries.
    place_seconds: float
    #: Trie split counts already cached before this build started.
    trie_counts_reused: int
    #: Split counts the build added to the shared cache.
    trie_counts_added: int
    #: Seconds the optional from-scratch equivalence check took (0 = off).
    check_seconds: float = 0.0

    @property
    def build_seconds(self) -> float:
        """Total network-build seconds (excluding the equivalence check)."""
        return self.construct_seconds + self.place_seconds


class IncrementalNetworkBuilder:
    """Build a dataset's networks for increasing peer counts, reusing state.

    One builder serves one ``(config, entries, sample_keys)`` triple —
    typically one sweep.  ``entries`` must be sorted by key (the
    :class:`~repro.bench.experiment.PreparedDataset` contract); the
    builder may be called with peer counts in any order, though sweeps
    use increasing ones.

    With ``check_equivalence=True`` every :meth:`build` additionally
    constructs a from-scratch reference network — no shared trie cache,
    routing tables rebuilt with the materializing scan reference — and
    asserts the two are structurally identical via
    :func:`assert_networks_equivalent`.
    """

    def __init__(
        self,
        config: StoreConfig,
        entries: Sequence[IndexEntry],
        sample_keys: Sequence[str] | None = None,
        check_equivalence: bool = False,
    ):
        self.config = config
        self.entries = entries
        self.sample_keys = sample_keys
        self.check_equivalence = check_equivalence
        self._trie_counts: dict[str, int] = {}
        #: One :class:`BuildReport` per :meth:`build` call, in call order.
        self.reports: list[BuildReport] = []

    def build(self, n_peers: int) -> PGridNetwork:
        """A load-balanced network of ``n_peers`` holding the dataset."""
        reused = len(self._trie_counts)
        started = time.perf_counter()
        network = PGridNetwork(
            n_peers,
            self.config,
            sample_keys=self.sample_keys,
            trie_count_cache=self._trie_counts,
        )
        constructed = time.perf_counter()
        network.place_entries(self.entries)
        placed = time.perf_counter()
        report = BuildReport(
            n_peers=n_peers,
            construct_seconds=constructed - started,
            place_seconds=placed - constructed,
            trie_counts_reused=reused,
            trie_counts_added=len(self._trie_counts) - reused,
        )
        if self.check_equivalence:
            reference = self._reference_build(n_peers)
            assert_networks_equivalent(network, reference)
            report.check_seconds = time.perf_counter() - placed
        self.reports.append(report)
        return network

    def _reference_build(self, n_peers: int) -> PGridNetwork:
        """From-scratch network: no shared cache, scan-built routing."""
        network = PGridNetwork(
            n_peers, self.config, sample_keys=self.sample_keys
        )
        network.rng = random.Random(self.config.seed)
        network._build_routing_tables_scan()
        network.place_entries(self.entries)
        return network

    @property
    def last_report(self) -> BuildReport | None:
        return self.reports[-1] if self.reports else None


def assert_networks_equivalent(a: PGridNetwork, b: PGridNetwork) -> None:
    """Assert two networks are structurally identical.

    Compares the trie cover, every partition's replica set, every peer's
    path, replicas and full routing table, and every peer store's entry
    keys.  Raises :class:`OverlayError` naming the first divergence —
    the incremental sweep engine's safety net.
    """
    if a._paths != b._paths:
        raise OverlayError(
            f"trie covers differ: {len(a._paths)} vs {len(b._paths)} "
            "partitions or different split boundaries"
        )
    if a.n_peers != b.n_peers:
        raise OverlayError(f"peer counts differ: {a.n_peers} vs {b.n_peers}")
    for pa, pb in zip(a.partitions, b.partitions):
        if pa.path != pb.path or pa.peer_ids != pb.peer_ids:
            raise OverlayError(
                f"partition {pa.index} differs: "
                f"{pa.path!r}/{pa.peer_ids} vs {pb.path!r}/{pb.peer_ids}"
            )
    for peer_a, peer_b in zip(a.peers, b.peers):
        if peer_a.path != peer_b.path:
            raise OverlayError(
                f"peer {peer_a.peer_id} paths differ: "
                f"{peer_a.path!r} vs {peer_b.path!r}"
            )
        if peer_a.replicas != peer_b.replicas:
            raise OverlayError(
                f"peer {peer_a.peer_id} replica sets differ"
            )
        if peer_a.routing_table != peer_b.routing_table:
            raise OverlayError(
                f"peer {peer_a.peer_id} routing tables differ: "
                f"{peer_a.routing_table} vs {peer_b.routing_table}"
            )
        keys_a = [entry.key for entry in peer_a.store]
        keys_b = [entry.key for entry in peer_b.store]
        if keys_a != keys_b:
            raise OverlayError(
                f"peer {peer_a.peer_id} stores differ: "
                f"{len(keys_a)} vs {len(keys_b)} entries"
            )
