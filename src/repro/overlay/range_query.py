"""Range queries over the trie — the shower algorithm of Datta et al. [6].

Because the hash is order-preserving, a value interval maps to a key
interval ``[lo_key, hi_key]`` and the partitions intersecting it are
*contiguous* in the trie.  The query routes to the partition holding the
lower bound and then showers through the remaining partitions with one
``FORWARD`` message each; every contacted peer scans its local store for
in-range entries.

This is the substrate for numeric similarity (Section 4: "for similarity
queries on numerical attributes we map the provided similarity measure to a
corresponding interval and process them as range queries") and for the
top-N operator's adaptive probing (Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import RoutingError
from repro.overlay import keys as keyspace
from repro.overlay.messages import MessageType
from repro.overlay.routing import Router
from repro.storage.indexing import IndexEntry


@dataclass
class RangeQueryResult:
    """Entries found in a key range plus the peers that served them."""

    entries: list[IndexEntry]
    contacted_peer_ids: list[int]
    partitions_touched: int


def range_query(
    router: Router,
    lo_key: str,
    hi_key: str,
    start_id: int,
    phase: str = "range",
    collect_results: bool = True,
) -> RangeQueryResult:
    """Execute one range query over ``[lo_key, hi_key]`` (inclusive).

    ``lo_key``/``hi_key`` are full-width binary keys.  When
    ``collect_results`` is true, each contacted peer returns its matches to
    the initiator in one ``RESULT`` message (charged with the payload's
    byte size); operators that post-process remotely can disable this and
    account for shipping themselves.
    """
    if len(lo_key) != len(hi_key):
        raise RoutingError(
            f"range bounds must share a width: {lo_key!r} vs {hi_key!r}"
        )
    if lo_key > hi_key:
        raise RoutingError(f"empty key range [{lo_key!r}, {hi_key!r}]")
    network = router.network
    lo_int = keyspace.key_to_int(lo_key)
    hi_int = keyspace.key_to_int(hi_key)
    partitions = network.partitions_in_range(lo_int, hi_int)
    if not partitions:
        raise RoutingError(f"no partition intersects [{lo_key!r}, {hi_key!r}]")

    first = router.route(partitions[0].path, start_id, phase=phase)
    contacted = [first]
    for partition in partitions:
        if partition.contains(first.peer_id):
            continue
        replica = router._live_replica(partition)
        router.tracer.send(
            MessageType.FORWARD, contacted[-1].peer_id, replica.peer_id, phase=phase
        )
        contacted.append(replica)

    entries: list[IndexEntry] = []
    for peer in contacted:
        local = peer.store.range_scan(lo_key, hi_key)
        entries.extend(local)
        if collect_results and local:
            payload = sum(entry.payload_size() for entry in local)
            router.send_result(peer.peer_id, start_id, payload, phase=phase)
    return RangeQueryResult(
        entries=entries,
        contacted_peer_ids=[peer.peer_id for peer in contacted],
        partitions_touched=len(partitions),
    )
