"""Range queries over the trie — the shower algorithm of Datta et al. [6].

Because the hash is order-preserving, a value interval maps to a key
interval ``[lo_key, hi_key]`` and the partitions intersecting it are
*contiguous* in the trie.  The query routes to the partition holding the
lower bound and then showers through the remaining partitions with one
``FORWARD`` message each; every contacted peer scans its local store for
in-range entries.

This is the substrate for numeric similarity (Section 4: "for similarity
queries on numerical attributes we map the provided similarity measure to a
corresponding interval and process them as range queries") and for the
top-N operator's adaptive probing (Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import PartitionUnreachableError, RoutingError
from repro.overlay import keys as keyspace
from repro.overlay.faults import FaultMode
from repro.overlay.messages import MessageType
from repro.overlay.routing import Router
from repro.storage.indexing import IndexEntry


@dataclass
class RangeQueryResult:
    """Entries found in a key range plus the peers that served them."""

    entries: list[IndexEntry]
    contacted_peer_ids: list[int]
    partitions_touched: int


def range_query(
    router: Router,
    lo_key: str,
    hi_key: str,
    start_id: int,
    phase: str = "range",
    collect_results: bool = True,
) -> RangeQueryResult:
    """Execute one range query over ``[lo_key, hi_key]`` (inclusive).

    ``lo_key``/``hi_key`` are full-width binary keys.  When
    ``collect_results`` is true, each contacted peer returns its matches to
    the initiator in one ``RESULT`` message (charged with the payload's
    byte size); operators that post-process remotely can disable this and
    account for shipping themselves.
    """
    if len(lo_key) != len(hi_key):
        raise RoutingError(
            f"range bounds must share a width: {lo_key!r} vs {hi_key!r}"
        )
    if lo_key > hi_key:
        raise RoutingError(f"empty key range [{lo_key!r}, {hi_key!r}]")
    network = router.network
    lo_int = keyspace.key_to_int(lo_key)
    hi_int = keyspace.key_to_int(hi_key)
    partitions = network.partitions_in_range(lo_int, hi_int)
    if not partitions:
        raise RoutingError(f"no partition intersects [{lo_key!r}, {hi_key!r}]")

    if router.faults_active():
        contacted = _contact_range_faulty(router, partitions, start_id, phase)
    else:
        first = router.route(partitions[0].path, start_id, phase=phase)
        contacted = [first]
        for partition in partitions:
            if partition.contains(first.peer_id):
                continue
            replica = router._live_replica(partition)
            router.tracer.send(
                MessageType.FORWARD, contacted[-1].peer_id, replica.peer_id,
                phase=phase,
            )
            contacted.append(replica)

    entries: list[IndexEntry] = []
    for peer in contacted:
        local = peer.store.range_scan(lo_key, hi_key)
        if collect_results and local:
            payload = sum(entry.payload_size() for entry in local)
            if not router.send_result(peer.peer_id, start_id, payload, phase=phase):
                # Result message lost beyond retries (degraded mode):
                # these matches never reach the initiator.
                router.record_dropped_candidates(len(local))
                continue
        entries.extend(local)
    return RangeQueryResult(
        entries=entries,
        contacted_peer_ids=[peer.peer_id for peer in contacted],
        partitions_touched=len(partitions),
    )


def _contact_range_faulty(
    router: Router, partitions: list, start_id: int, phase: str
) -> list:
    """Shower into a partition range under an active fault injector.

    Mirrors :meth:`Router._multicast_prefix_faulty`: enter at the first
    reachable partition, forward with retry/replica-failover, and in
    ``DEGRADED`` mode record dark partitions on the fault session
    instead of raising.
    """
    session = router.network.fault_injector.session
    degraded = router.network.fault_mode is FaultMode.DEGRADED
    for partition in partitions:
        session.record_target(partition)
    first = None
    entry_index = 0
    for index, partition in enumerate(partitions):
        try:
            first = router.route(partition.path, start_id, phase=phase)
            entry_index = index
            break
        except PartitionUnreachableError:
            if not degraded:
                raise
            session.record_dark(partition)
    if first is None:
        return []
    contacted = [first]
    for partition in partitions[entry_index:]:
        if partition.contains(first.peer_id):
            continue
        replica = router._contact_partition(partition, contacted[-1].peer_id, phase)
        if replica is None:
            continue
        contacted.append(replica)
    return contacted
