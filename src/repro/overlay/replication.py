"""Replication analysis helpers.

Structural replication (``k`` peers per partition) is wired directly into
:class:`~repro.overlay.network.PGridNetwork`; this module provides the
surrounding machinery: consistency checks, availability math, and repair
after churn — the "robustness through redundancy" properties Section 2
attributes to P-Grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.overlay.messages import MessageType
from repro.overlay.network import PGridNetwork


@dataclass
class ReplicationReport:
    """Outcome of a replica consistency audit."""

    partitions: int
    replication: int
    consistent: bool
    divergent_partitions: list[int]


def entry_signature(entry) -> tuple:
    """The identity of one stored index entry, shared by audit and repair.

    Includes ``position``: a string's repeated q-gram occurs once per
    position, and collapsing those entries (as a position-less signature
    would) both under-repairs and diverges from what the audit compares.
    """
    triple = entry.triple
    return (
        entry.key,
        entry.kind.value,
        triple.oid,
        triple.attribute,
        str(triple.value),
        entry.gram or "",
        entry.position,
    )


def audit_replicas(network: PGridNetwork) -> ReplicationReport:
    """Verify that all replicas of each partition store identical entries."""
    divergent: list[int] = []
    for partition in network.partitions:
        stores = [network.peer(pid).store for pid in partition.peer_ids]
        reference = sorted(entry_signature(e) for e in stores[0])
        for store in stores[1:]:
            other = sorted(entry_signature(e) for e in store)
            if other != reference:
                divergent.append(partition.index)
                break
    return ReplicationReport(
        partitions=network.n_partitions,
        replication=network.config.replication,
        consistent=not divergent,
        divergent_partitions=divergent,
    )


def repair_partition(
    network: PGridNetwork, partition_index: int, charge_messages: bool = False
) -> int:
    """Copy the union of replica contents back onto every replica.

    Models P-Grid's anti-entropy repair; returns the number of entries
    copied.  Only meaningful after failures have caused divergence (e.g.
    inserts while a replica was offline).  Union and per-replica diff
    both use :func:`entry_signature`, so repeated q-grams of one string
    at different positions repair independently and a follow-up
    :func:`audit_replicas` agrees with the result.

    ``charge_messages`` prices the anti-entropy exchange on the
    network's tracer under the ``repair`` phase: one ``FORWARD`` per
    replica that received missing entries, carrying their payload bytes
    (the churn-recovery benchmark's repair-traffic series).
    """
    partition = network.partition(partition_index)
    union: dict[tuple, object] = {}
    for peer_id in partition.peer_ids:
        for entry in network.peer(peer_id).store:
            union[entry_signature(entry)] = entry
    copied = 0
    for peer_id in partition.peer_ids:
        store = network.peer(peer_id).store
        present = {entry_signature(e) for e in store}
        missing = [entry for sig, entry in union.items() if sig not in present]
        if missing:
            store.add_bulk(missing)  # type: ignore[arg-type]
            copied += len(missing)
            if charge_messages:
                network.tracer.send(
                    MessageType.FORWARD,
                    partition.peer_ids[0],
                    peer_id,
                    sum(entry.payload_size() for entry in missing),
                    phase="repair",
                )
    return copied


def partition_availability(replication: int, peer_failure_prob: float) -> float:
    """Probability that at least one replica of a partition is online.

    Independent failures: ``1 - f^k``.  Quantifies the paper's claim that
    replication makes the ``Retrieve`` guarantee hold "if at least one peer
    in each partition is reachable".
    """
    if not 0.0 <= peer_failure_prob <= 1.0:
        raise ValueError(f"failure probability must be in [0,1], got {peer_failure_prob}")
    return 1.0 - peer_failure_prob**replication


def network_availability(
    n_partitions: int, replication: int, peer_failure_prob: float
) -> float:
    """Probability that *every* partition keeps at least one live replica."""
    return partition_availability(replication, peer_failure_prob) ** n_partitions


def replicas_needed(peer_failure_prob: float, target_availability: float) -> int:
    """Smallest k with ``partition_availability(k, f) >= target``."""
    if not 0.0 < target_availability < 1.0:
        raise ValueError("target availability must be in (0, 1)")
    if peer_failure_prob <= 0.0:
        return 1
    if peer_failure_prob >= 1.0:
        raise ValueError("availability target unreachable with certain failure")
    k = math.log(1.0 - target_availability) / math.log(peer_failure_prob)
    return max(1, math.ceil(k))
