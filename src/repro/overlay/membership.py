"""Dynamic membership: peers joining and leaving a live network.

The static constructor of :class:`~repro.overlay.network.PGridNetwork`
builds the converged state of P-Grid's construction algorithm [2]; this
module implements the *dynamics* the paper relies on for churny
deployments:

* :meth:`MembershipManager.join` — a new peer joins by splitting the most
  loaded partition (P-Grid construction splits on pairwise encounters and
  converges to balanced load; the simulator, with its global view, splits
  the heaviest leaf directly): the old partition's path ``pi`` becomes
  ``pi+'0'`` and ``pi+'1'``, the stored entries are divided by key, both
  sides get fresh routing tables, and every other peer learns about the
  new level lazily — stale references still route correctly because a
  reference into the complementary subtrie of level ``l`` remains in that
  subtrie after any deeper split (prefix routing is split-stable);
* :meth:`MembershipManager.leave` — a peer leaves gracefully: its
  replicas keep the partition alive, or — if it was the last replica —
  the partition *merges* with its trie sibling: the departing peer hands
  its entries to the sibling subtree's peers, whose coverage then
  includes the vacated region.

Invariants maintained (and property-tested): partition paths always form
a complete prefix-free cover; every stored entry remains reachable by
``Retrieve`` after any sequence of joins and leaves.
"""

from __future__ import annotations

from repro.core.errors import OverlayError
from repro.overlay import keys as keyspace
from repro.overlay.network import PGridNetwork
from repro.overlay.peer import Peer
from repro.overlay.routing import Partition
from repro.storage.indexing import IndexEntry


class MembershipManager:
    """Join/leave driver for one network."""

    def __init__(self, network: PGridNetwork):
        self.network = network

    # -- join -------------------------------------------------------------------

    def join(self) -> Peer:
        """Add one peer to the network; returns the new peer.

        The heaviest partition splits (unless the network still has spare
        replica slots in an under-replicated partition, which are filled
        first).  Entry migration and the two fresh routing tables are
        charged as messages in the ``membership`` phase.
        """
        network = self.network
        under = self._under_replicated()
        if under is not None:
            return self._join_as_replica(under)
        target = self._heaviest_splittable()
        return self._split_partition(target)

    def _under_replicated(self) -> Partition | None:
        want = self.network.config.replication
        for partition in self.network.partitions:
            if len(partition.peer_ids) < want:
                return partition
        return None

    def _heaviest_splittable(self) -> Partition:
        network = self.network
        best: Partition | None = None
        best_load = -1
        for partition in network.partitions:
            if len(partition.path) >= network.config.key_bits:
                continue
            load = len(network.peer(partition.peer_ids[0]).store)
            if load > best_load:
                best = partition
                best_load = load
        if best is None:
            raise OverlayError("no partition can be split further")
        return best

    def _join_as_replica(self, partition: Partition) -> Peer:
        network = self.network
        peer = Peer(len(network.peers), partition.path)
        network.peers.append(peer)
        new_ids = partition.peer_ids + (peer.peer_id,)
        network.partitions[partition.index] = Partition(
            partition.index, partition.path, new_ids
        )
        for peer_id in new_ids:
            network.peer(peer_id).replicas = [i for i in new_ids if i != peer_id]
        # The new replica copies the partition's data from a sibling.
        source = network.peer(partition.peer_ids[0])
        entries = list(source.store)
        peer.store.add_bulk(entries)
        self._charge_transfer(source.peer_id, peer.peer_id, entries)
        self._build_routing_for(peer)
        return peer

    def _split_partition(self, partition: Partition) -> Peer:
        network = self.network
        old_path = partition.path
        left_path = old_path + "0"
        right_path = old_path + "1"

        new_peer = Peer(len(network.peers), right_path)
        network.peers.append(new_peer)

        # The incumbent peers specialize to the '0' side; the newcomer
        # takes '1'.  (P-Grid's pairwise exchange; sides are symmetric.)
        moved: list[IndexEntry] = []
        for peer_id in partition.peer_ids:
            incumbent = network.peer(peer_id)
            incumbent.path = left_path
            incumbent.routing_table.append([])
            keep: list[IndexEntry] = []
            for entry in incumbent.store:
                if entry.key.startswith(right_path):
                    moved.append(entry)
                else:
                    keep.append(entry)
            self._replace_store(incumbent, keep)
        # Deduplicate the replica copies: the newcomer stores one copy.
        unique: dict[tuple, IndexEntry] = {}
        for entry in moved:
            unique[(entry.key, entry.kind.value, entry.triple, entry.gram,
                    entry.position)] = entry
        migrated = list(unique.values())
        new_peer.store.add_bulk(migrated)
        self._charge_transfer(
            partition.peer_ids[0], new_peer.peer_id, migrated
        )

        # Rebuild the partition table: replace the old leaf with two.
        left = Partition(0, left_path, partition.peer_ids)
        right = Partition(0, right_path, (new_peer.peer_id,))
        remaining = [
            p for p in network.partitions if p.index != partition.index
        ]
        remaining.extend([left, right])
        remaining.sort(key=lambda p: p.path)
        network.partitions = [
            Partition(i, p.path, p.peer_ids) for i, p in enumerate(remaining)
        ]
        network._paths = [p.path for p in network.partitions]
        network.max_depth = max(len(p) for p in network._paths)
        new_peer.replicas = []
        for peer_id in partition.peer_ids:
            network.peer(peer_id).replicas = [
                i for i in partition.peer_ids if i != peer_id
            ]

        # Fresh routing tables for everyone whose view changed; the new
        # deepest level of the incumbents points at the newcomer and vice
        # versa.
        for peer_id in partition.peer_ids:
            self._build_routing_for(network.peer(peer_id))
        self._build_routing_for(new_peer)
        return new_peer

    # -- leave -------------------------------------------------------------------

    def leave(self, peer_id: int) -> None:
        """Remove a peer gracefully.

        With surviving replicas the partition just shrinks.  A *last*
        replica can only leave when its trie sibling is a single leaf:
        the sibling's peers then widen their path by one bit (a sound
        merge — their routing tables lose the deepest level, their stores
        absorb the departed entries, and the cover stays complete).

        A last replica whose sibling subtree is deep cannot merge without
        reshuffling that entire subtree, which real P-Grid avoids too —
        deployments keep ``replication >= 2`` and drain replicas first.
        That case raises :class:`OverlayError`, mirroring the paper's
        operating assumption that "at least one peer in each partition is
        reachable".
        """
        network = self.network
        peer = network.peer(peer_id)
        if not peer.online:
            raise OverlayError(f"peer {peer_id} is already offline")
        partition = network.partition_for(peer.path)
        survivors = [i for i in partition.peer_ids if i != peer_id]
        if survivors:
            network.partitions[partition.index] = Partition(
                partition.index, partition.path, tuple(survivors)
            )
            for survivor in survivors:
                network.peer(survivor).replicas = [
                    i for i in survivors if i != survivor
                ]
            peer.online = False
            return
        self._merge_into_leaf_sibling(partition, peer)

    def _merge_into_leaf_sibling(self, partition: Partition, peer: Peer) -> None:
        network = self.network
        path = partition.path
        if not path:
            raise OverlayError("the last peer of the network cannot leave")
        sibling_prefix = keyspace.sibling_prefix(path, len(path) - 1)
        sibling_partitions = [
            p for p in network.partitions if p.path.startswith(sibling_prefix)
        ]
        if len(sibling_partitions) != 1:
            raise OverlayError(
                f"last replica of {path!r} cannot leave: its sibling subtree "
                f"spans {len(sibling_partitions)} partitions (drain replicas "
                "or join peers first)"
            )
        absorber = sibling_partitions[0]
        parent = path[:-1]
        entries = list(peer.store)
        new_partitions = []
        for p in network.partitions:
            if p.index == partition.index:
                continue
            if p.index == absorber.index:
                new_partitions.append(Partition(0, parent, absorber.peer_ids))
            else:
                new_partitions.append(p)
        new_partitions.sort(key=lambda p: p.path)
        network.partitions = [
            Partition(i, p.path, p.peer_ids)
            for i, p in enumerate(new_partitions)
        ]
        network._paths = [p.path for p in network.partitions]
        network.max_depth = max(len(p) for p in network._paths)
        for member in absorber.peer_ids:
            receiver = network.peer(member)
            receiver.path = parent
            del receiver.routing_table[-1]
            receiver.store.add_bulk(entries)
            self._charge_transfer(peer.peer_id, member, entries)
        peer.online = False

    # -- shared helpers -------------------------------------------------------------

    def _replace_store(self, peer: Peer, entries: list[IndexEntry]) -> None:
        from repro.storage.datastore import LocalDataStore

        store = LocalDataStore()
        store.add_bulk(entries)
        peer.store = store

    def _build_routing_for(self, peer: Peer) -> None:
        network = self.network
        peer.routing_table = [[] for __ in range(len(peer.path))]
        for level in range(len(peer.path)):
            sibling = keyspace.sibling_prefix(peer.path, level)
            candidates = network.partitions_under(sibling)
            if not candidates:
                raise OverlayError(
                    f"complementary subtrie {sibling!r} is empty after a "
                    "membership change"
                )
            refs = []
            for __ in range(
                min(network.config.refs_per_level, len(candidates))
            ):
                partition = candidates[network.rng.randrange(len(candidates))]
                refs.append(
                    partition.peer_ids[
                        network.rng.randrange(len(partition.peer_ids))
                    ]
                )
            peer.set_references(level, refs)

    def _charge_transfer(
        self, sender: int, receiver: int, entries: list[IndexEntry]
    ) -> None:
        from repro.overlay.messages import MessageType

        payload = sum(e.payload_size() for e in entries)
        self.network.tracer.send(
            MessageType.RESULT, sender, receiver, payload, phase="membership"
        )
