"""Boot the query service on a generated dataset.

Usage::

    PYTHONPATH=src python -m repro.serve --peers 64 --words 2000
    PYTHONPATH=src python -m repro.serve --port 8765 --strategy adaptive

Builds a bible-words corpus, wraps it in a
:class:`~repro.engine.QueryEngine` (statistics pre-collected so the
cost model and admission control have something to predict from), and
serves until interrupted.  Fire a query::

    curl -s localhost:8765/healthz
    curl -s -X POST localhost:8765/query/similar \\
         -d '{"search": "beginnin", "attribute": "word:text", "d": 1}'
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.config import StoreConfig
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.engine import QueryEngine
from repro.serve.app import QueryService, ServiceConfig
from repro.serve.http import ServiceServer


def build_service(
    peers: int,
    words: int,
    seed: int,
    strategy: str,
    max_inflight: int,
    cost_budget: float,
    fanout: int | None = None,
) -> QueryService:
    """Engine + service wired the way every serve entry point needs."""
    engine = QueryEngine.build(
        n_peers=peers,
        triples=bible_triples(words, seed=seed),
        config=StoreConfig(
            seed=seed, index_values=False, index_schema_grams=False
        ),
        strategy=strategy,
        parallel_fanout=fanout,
    )
    engine.analyze([TEXT_ATTRIBUTE])
    return QueryService(
        engine,
        ServiceConfig(max_inflight=max_inflight, cost_budget=cost_budget),
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the P-Grid query engine over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--peers", type=int, default=64)
    parser.add_argument("--words", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--strategy",
        default="adaptive",
        help="default similarity strategy (default: adaptive)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="admission: max in-flight queries (default: 8)",
    )
    parser.add_argument(
        "--cost-budget",
        type=float,
        default=0.0,
        help="admission: max outstanding predicted messages (0 = off)",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=0,
        help="intra-query thread fan-out (>= 2 to enable)",
    )
    return parser


async def _serve(args) -> None:
    with build_service(
        args.peers,
        args.words,
        args.seed,
        args.strategy,
        args.max_inflight,
        args.cost_budget,
        fanout=args.fanout if args.fanout >= 2 else None,
    ) as service:
        server = ServiceServer(service, args.host, args.port)
        await server.start()
        print(
            f"serving {args.words} words on {args.peers} peers at "
            f"http://{args.host}:{server.port}",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
