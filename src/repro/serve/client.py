"""Minimal asyncio HTTP/1.1 client for driving the service over sockets.

The load harness's ``--http`` transport and the socket-level tests need
a client; the container has no third-party HTTP library, so this module
implements the narrow slice the service speaks: JSON POST/GET with
``Content-Length`` responses and chunked NDJSON streams.  One
:class:`HttpClient` holds one keep-alive connection and issues requests
sequentially; the open-loop load generator opens a small pool of them.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field


class ClientError(Exception):
    """Malformed response from the server (or a dropped connection)."""


@dataclass
class HttpReply:
    """One decoded response."""

    status: int
    headers: dict[str, str]
    body: bytes
    #: Decoded NDJSON lines for chunked streaming responses.
    lines: list[dict] = field(default_factory=list)

    def json(self) -> dict:
        return json.loads(self.body) if self.body else {}


class HttpClient:
    """One keep-alive connection to the service."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> HttpReply:
        """Issue one request; reconnects once on a stale keep-alive."""
        body = json.dumps(payload).encode() if payload is not None else b""
        for attempt in (0, 1):
            await self._connect()
            try:
                return await self._roundtrip(method, path, body)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _roundtrip(self, method: str, path: str, body: bytes) -> HttpReply:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()

        status_line = (await self._reader.readline()).decode("latin-1")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ClientError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = (await self._reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, __, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        if headers.get("transfer-encoding", "").lower() == "chunked":
            raw = await self._read_chunked()
            lines = [
                json.loads(line)
                for line in raw.decode().splitlines()
                if line.strip()
            ]
            return HttpReply(status, headers, raw, lines)
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return HttpReply(status, headers, body)

    async def _read_chunked(self) -> bytes:
        chunks: list[bytes] = []
        while True:
            size_line = (await self._reader.readline()).decode("latin-1").strip()
            try:
                size = int(size_line.split(";", 1)[0], 16)
            except ValueError as exc:
                raise ClientError(f"bad chunk size: {size_line!r}") from exc
            if size == 0:
                await self._reader.readline()  # trailing CRLF
                return b"".join(chunks)
            chunks.append(await self._reader.readexactly(size))
            await self._reader.readexactly(2)  # chunk CRLF
