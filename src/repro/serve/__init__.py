"""Service layer: the query engine behind an asyncio HTTP boundary.

The simulator's :class:`~repro.engine.QueryEngine` is a synchronous,
single-process object; this package puts a real service boundary in
front of it — the "millions of users" north-star needs trackable
QPS/latency numbers, and those need an actual server to measure.

* :mod:`repro.serve.app` — :class:`QueryService`, the framework-free
  application object: routes, JSON payloads, per-query cost accounting,
  admission control, degraded-mode partial results.  It is directly
  awaitable (``await service.handle(request)``), so the load harness
  and the tests can drive it in-process with zero socket overhead.
* :mod:`repro.serve.admission` — bounded in-flight admission with
  cost-model-predicted overload rejection (429 + ``Retry-After``).
* :mod:`repro.serve.http` — the stdlib asyncio HTTP/1.1 glue: one
  ``asyncio.start_server`` loop parsing requests into the application
  object and streaming chunked NDJSON responses back out.
* :mod:`repro.serve.client` — a minimal asyncio HTTP client (the load
  generator's ``--http`` transport; no third-party deps).

``python -m repro.serve`` boots a server on a generated dataset; see
``python -m repro.bench.serve`` for the paired load harness.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.app import QueryService, Request, Response, ServiceConfig
from repro.serve.http import ServiceServer

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "QueryService",
    "Request",
    "Response",
    "ServiceConfig",
    "ServiceServer",
]
