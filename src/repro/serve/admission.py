"""Admission control: bounded in-flight queries, predicted-overload 429s.

The engine serializes query execution (per-query cost accounting needs
exclusive access to the network's :class:`~repro.overlay.messages.
MessageTracer`), so the service is a single-server queue: admitted
requests wait their turn on the engine lock.  Admission control bounds
that queue two ways:

* a hard **capacity** cap on in-flight requests (admitted, not yet
  finished) — classic bounded-queue back-pressure;
* a **predicted-overload** cap: every similarity-shaped request carries
  a predicted message cost from the engine's
  :class:`~repro.query.cost.StrategyCostModel`, and the controller
  rejects work that would push the *outstanding predicted cost* past a
  configured budget while the server is already busy.  An expensive
  query on an idle server is always admitted — the budget sheds load,
  it never starves a query class.

Rejections carry a ``Retry-After`` estimate derived from the observed
service rate: an exponentially-weighted average of seconds per predicted
message (updated as requests finish) times the outstanding predicted
cost, clamped to ``[1, MAX_RETRY_AFTER]`` whole seconds.

The controller is deliberately lock-free plain Python: every mutation
happens on the event-loop thread (handlers admit before dispatching to
the engine executor and finish in loop-side callbacks), so no further
synchronization is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import ConfigError

#: Upper clamp on the advertised ``Retry-After`` (seconds).
MAX_RETRY_AFTER = 60

#: Starting estimate of seconds per predicted message, used until the
#: first completions feed the EWMA (a deliberately generous figure so a
#: cold server does not advertise sub-second retries it cannot honor).
DEFAULT_SECONDS_PER_MESSAGE = 0.001

#: Starting estimate of per-request service seconds (capacity path).
DEFAULT_SERVICE_SECONDS = 0.05

#: EWMA smoothing factor for the service-rate estimates.
EWMA_ALPHA = 0.2


@dataclass
class Ticket:
    """One admitted request's claim on the controller's budgets."""

    controller: "AdmissionController"
    predicted_messages: float
    finished: bool = False

    def finish(self, elapsed_seconds: float | None = None) -> None:
        """Release the claim; feeds the service-rate EWMA when timed."""
        if self.finished:
            return
        self.finished = True
        self.controller._release(self, elapsed_seconds)


@dataclass
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    reason: str | None = None  # "capacity" | "predicted-overload"
    retry_after: int = 0  # whole seconds, >= 1 on rejection
    ticket: Ticket | None = None


@dataclass
class AdmissionController:
    """Bounded-in-flight + predicted-cost admission for one service.

    ``max_inflight``
        Hard cap on admitted-but-unfinished requests (>= 1).
    ``cost_budget``
        Maximum *outstanding* predicted message cost; ``0`` disables the
        predicted-overload path and leaves only the capacity cap.
    """

    max_inflight: int = 8
    cost_budget: float = 0.0

    inflight: int = 0
    outstanding_cost: float = 0.0
    admitted_total: int = 0
    completed_total: int = 0
    rejected_capacity: int = 0
    rejected_overload: int = 0

    _seconds_per_message: float = field(default=0.0, repr=False)
    _service_seconds: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.cost_budget < 0:
            raise ConfigError(
                f"cost_budget must be >= 0, got {self.cost_budget}"
            )

    # -- admission ----------------------------------------------------------------

    def admit(self, predicted_messages: float = 0.0) -> AdmissionDecision:
        """Admit or reject one request predicted to cost that many messages."""
        if self.inflight >= self.max_inflight:
            self.rejected_capacity += 1
            return AdmissionDecision(
                admitted=False,
                reason="capacity",
                retry_after=self.retry_after(),
            )
        if (
            self.cost_budget > 0
            and self.inflight > 0
            and self.outstanding_cost + predicted_messages > self.cost_budget
        ):
            self.rejected_overload += 1
            return AdmissionDecision(
                admitted=False,
                reason="predicted-overload",
                retry_after=self.retry_after(),
            )
        self.inflight += 1
        self.outstanding_cost += predicted_messages
        self.admitted_total += 1
        return AdmissionDecision(
            admitted=True,
            ticket=Ticket(self, predicted_messages),
        )

    def retry_after(self) -> int:
        """Whole seconds a rejected client should wait before retrying.

        The expected drain time of the outstanding work under the
        observed service rate; at least 1 second (HTTP ``Retry-After``
        is integral) and clamped to :data:`MAX_RETRY_AFTER`.
        """
        per_message = self._seconds_per_message or DEFAULT_SECONDS_PER_MESSAGE
        per_request = self._service_seconds or DEFAULT_SERVICE_SECONDS
        drain = max(
            self.outstanding_cost * per_message,
            self.inflight * per_request,
        )
        return max(1, min(MAX_RETRY_AFTER, math.ceil(drain)))

    # -- bookkeeping --------------------------------------------------------------

    def _release(self, ticket: Ticket, elapsed_seconds: float | None) -> None:
        self.inflight -= 1
        self.outstanding_cost = max(
            0.0, self.outstanding_cost - ticket.predicted_messages
        )
        self.completed_total += 1
        if elapsed_seconds is None or elapsed_seconds < 0:
            return
        self._service_seconds = _ewma(self._service_seconds, elapsed_seconds)
        if ticket.predicted_messages > 0:
            self._seconds_per_message = _ewma(
                self._seconds_per_message,
                elapsed_seconds / ticket.predicted_messages,
            )

    def snapshot(self) -> dict:
        """JSON-ready counters for the ``/stats`` endpoint."""
        return {
            "max_inflight": self.max_inflight,
            "cost_budget": self.cost_budget,
            "inflight": self.inflight,
            "outstanding_predicted_messages": round(self.outstanding_cost, 1),
            "admitted": self.admitted_total,
            "completed": self.completed_total,
            "rejected_capacity": self.rejected_capacity,
            "rejected_overload": self.rejected_overload,
        }


def _ewma(current: float, sample: float) -> float:
    if current == 0.0:
        return sample
    return (1.0 - EWMA_ALPHA) * current + EWMA_ALPHA * sample
