"""Stdlib asyncio HTTP/1.1 server in front of :class:`QueryService`.

No third-party web framework is assumed (the container policy forbids
adding one); this is a deliberately small HTTP/1.1 implementation that
covers exactly what the service needs: GET/POST with JSON bodies,
``Content-Length`` responses, ``Transfer-Encoding: chunked`` for the
streaming top-N endpoint, and keep-alive connections (the load
generator reuses sockets at high arrival rates).

Usage::

    server = ServiceServer(service, host="127.0.0.1", port=0)
    await server.start()          # server.port holds the bound port
    ...
    await server.stop()

or, blocking, ``python -m repro.serve --peers 64 --words 2000``.
"""

from __future__ import annotations

import asyncio

from repro.serve.app import MAX_BODY_BYTES, QueryService, Request, Response

#: Per-request read timeout (seconds): a stalled client cannot pin a
#: connection handler forever.
READ_TIMEOUT = 30.0

#: Hard cap on the request head (request line + headers).
MAX_HEADER_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(Exception):
    """Malformed HTTP on the wire; the connection is closed after 400."""


class ServiceServer:
    """One listening socket dispatching into a :class:`QueryService`."""

    def __init__(
        self, service: QueryService, host: str = "127.0.0.1", port: int = 0
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # ``Server.wait_closed`` does not wait for per-connection handler
        # tasks (pre-3.12 semantics); cancel and reap them explicitly so
        # shutdown never leaks tasks or logs spurious CancelledErrors.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), READ_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    await write_response(
                        writer, Response(408, {"error": "request timeout"})
                    )
                    break
                except ProtocolError as exc:
                    await write_response(
                        writer, Response(400, {"error": str(exc)})
                    )
                    break
                if request is None:  # clean EOF between requests
                    break
                try:
                    response = await self.service.handle(request)
                except Exception as exc:  # handler crash -> 500, keep serving
                    response = Response(
                        500, {"error": f"internal error: {type(exc).__name__}"}
                    )
                keep_alive = (
                    request.headers.get("connection", "").lower() != "close"
                )
                try:
                    await write_response(writer, response)
                except Exception:
                    # Mid-stream failure (client gone, handler error while
                    # streaming): the chunked framing is unrecoverable.
                    break
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # server shutdown: close the socket and exit quietly
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the wire; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, __ = parts
    path = target.split("?", 1)[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError("bad Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError("bad Content-Length")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked request bodies are not supported")
    return Request(method=method.upper(), path=path, headers=headers, body=body)


async def write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    """Serialize one response (fixed-length JSON or chunked stream)."""
    status_text = _STATUS_TEXT.get(response.status, "Unknown")
    headers = {"Content-Type": "application/json"}
    headers.update(response.headers)
    if response.stream is None:
        body = response.body_bytes()
        headers["Content-Length"] = str(len(body))
        writer.write(_head(response.status, status_text, headers))
        writer.write(body)
        await writer.drain()
        return
    headers["Transfer-Encoding"] = "chunked"
    writer.write(_head(response.status, status_text, headers))
    await writer.drain()
    try:
        async for chunk in response.stream:
            if not chunk:
                continue
            writer.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
            await writer.drain()
    finally:
        # aclose() runs the generator's finally blocks (ticket release)
        # even when the client disconnected mid-stream.
        await response.stream.aclose()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def _head(status: int, status_text: str, headers: dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {status_text}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
