"""The query service application object.

:class:`QueryService` is the framework-free core of the service layer:
a route table mapping ``(method, path)`` to async handlers that parse
JSON requests, run the engine, and render JSON responses — with no
socket code anywhere.  The asyncio HTTP server (:mod:`repro.serve.http`)
feeds it parsed :class:`Request` objects; the load harness and the test
suite call :meth:`QueryService.handle` directly, so "in-process" and
"over HTTP" exercise the exact same application path.

Endpoints
---------

=======  ======================  ====================================
GET      ``/healthz``            liveness: peers, partitions, uptime
GET      ``/stats``              engine totals + admission counters
POST     ``/mutate/insert``      ``{triples: [{oid, attribute, value}]}``
POST     ``/mutate/delete``      same body; removes matching entries
POST     ``/query/exact``        ``{attribute, value}``
POST     ``/query/similar``      ``{search, attribute, d, strategy?}``
POST     ``/query/topn``         ``{attribute, search, n, max_distance?}``
POST     ``/query/topn/stream``  same body; chunked NDJSON delivery
POST     ``/query/vql``          ``{text, initiator?}``
=======  ======================  ====================================

Every query response carries the operation's
:class:`~repro.overlay.messages.CostReport` (message count, payload
bytes, per-phase breakdown) and — in adaptive mode — the recorded
:class:`~repro.query.cost.StrategyDecision` list.  Under an installed
fault plan in ``degraded`` mode, partial answers map to HTTP **206
Partial Content** with the :class:`~repro.overlay.faults.Completeness`
record (covered key-space mass, dark partitions, dropped candidates) in
the payload.

Concurrency model: the engine is synchronous and its cost accounting
(tracer snapshot deltas) needs exclusive access, so the service owns a
single-worker thread executor plus an :class:`asyncio.Lock` — queries
execute one at a time while the event loop keeps accepting, admitting,
and rejecting.  :class:`~repro.serve.admission.AdmissionController`
bounds how many admitted requests may wait on that lock.

Streaming top-N replays the serial operator's iterative deepening
(round ``d`` runs ``Similar(search, attribute, d)``) but emits each
round's *new* matches as soon as the round completes.  Because a match
first found in round ``d`` has edit distance exactly ``d``, streaming
per-round batches sorted by ``(distance, oid)`` and truncating at ``n``
reproduces :func:`~repro.query.operators.topn.top_n_string_nn`'s final
ranked list bit for bit — the test suite asserts that equivalence.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from collections.abc import AsyncIterator, Awaitable, Callable
from dataclasses import dataclass, field

from repro.core.config import SimilarityStrategy
from repro.core.errors import ConfigError, ReproError
from repro.engine import QueryEngine
from repro.query.operators.similar import similar
from repro.query.operators.topn import MAX_ROUNDS, top_n_string_nn
from repro.serve.admission import AdmissionController, Ticket
from repro.storage.triple import Triple

#: Nominal predicted message cost for point lookups (exact / VQL parse
#: cost is dominated by routing, O(log n) hops) — only used to weigh
#: these requests against the admission cost budget.
POINT_QUERY_PREDICTED_MESSAGES = 8.0

#: Request bodies above this size are rejected outright (413).
MAX_BODY_BYTES = 1 << 20


class BadRequest(ReproError):
    """Malformed request payload; rendered as HTTP 400."""


@dataclass
class Request:
    """One parsed HTTP request, transport-independent."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The request body as a JSON object (empty body = ``{}``)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except ValueError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload


@dataclass
class Response:
    """One response: a JSON payload or a chunked NDJSON stream."""

    status: int
    payload: dict | None = None
    headers: dict[str, str] = field(default_factory=dict)
    #: When set, the transport streams these pre-encoded chunks with
    #: ``Transfer-Encoding: chunked`` and ignores ``payload``.
    stream: AsyncIterator[bytes] | None = None

    def body_bytes(self) -> bytes:
        if self.payload is None:
            return b""
        return (json.dumps(self.payload) + "\n").encode()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`QueryService`.

    ``max_inflight`` / ``cost_budget`` parameterize the
    :class:`~repro.serve.admission.AdmissionController`;
    ``default_top_n_max_distance`` caps the deepening radius when a
    top-N request does not specify one.
    """

    max_inflight: int = 8
    cost_budget: float = 0.0
    default_top_n_max_distance: int = 5

    def __post_init__(self) -> None:
        if not 0 <= self.default_top_n_max_distance < MAX_ROUNDS:
            raise ConfigError(
                "default_top_n_max_distance must be in [0, "
                f"{MAX_ROUNDS}), got {self.default_top_n_max_distance}"
            )


Handler = Callable[[Request], Awaitable[Response]]


class QueryService:
    """The engine behind a service boundary; owns the engine's lifecycle.

    The service closes its engine on :meth:`close` (releasing fan-out
    threads and the service's own executor), so server entry points get
    leak-free shutdown by construction::

        with QueryService(engine) as service:
            ...  # await service.handle(request)
    """

    def __init__(
        self, engine: QueryEngine, config: ServiceConfig | None = None
    ):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            cost_budget=self.config.cost_budget,
        )
        self.started_at = time.monotonic()
        self.served_by_endpoint: Counter[str] = Counter()
        self.strategy_tally: Counter[str] = Counter()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._engine_lock = asyncio.Lock()
        self._closed = False
        self.routes: dict[tuple[str, str], Handler] = {
            ("GET", "/healthz"): self.handle_healthz,
            ("GET", "/stats"): self.handle_stats,
            ("POST", "/mutate/insert"): self.handle_insert,
            ("POST", "/mutate/delete"): self.handle_delete,
            ("POST", "/query/exact"): self.handle_exact,
            ("POST", "/query/similar"): self.handle_similar,
            ("POST", "/query/topn"): self.handle_top_n,
            ("POST", "/query/topn/stream"): self.handle_top_n_stream,
            ("POST", "/query/vql"): self.handle_vql,
        }

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down the executor and the engine; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        self.engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch -----------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """Route one request; never raises for request-shaped problems."""
        if len(request.body) > MAX_BODY_BYTES:
            return _error(413, "request body too large")
        handler = self.routes.get((request.method, request.path))
        if handler is None:
            known_paths = {path for __, path in self.routes}
            if request.path in known_paths:
                return _error(405, f"method {request.method} not allowed")
            return _error(404, f"no route for {request.path}")
        try:
            response = await handler(request)
        except BadRequest as exc:
            return _error(400, str(exc))
        except ReproError as exc:
            # Engine-level rejection of a well-formed but unservable
            # request (unknown attribute, VQL syntax, strict-mode dark
            # partition, ...) — the client's fault or the overlay's,
            # never a handler crash.
            return _error(422, f"{type(exc).__name__}: {exc}")
        self.served_by_endpoint[request.path] += 1
        return response

    async def _run(self, fn: Callable, *args):
        """Run one engine operation on the serialized executor."""
        async with self._engine_lock:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._pool, fn, *args)

    # -- introspection endpoints ---------------------------------------------------

    async def handle_healthz(self, request: Request) -> Response:
        engine = self.engine
        return Response(
            200,
            {
                "status": "ok",
                "peers": engine.n_peers,
                "partitions": engine.network.n_partitions,
                "fault_mode": engine.fault_mode,
                "uptime_seconds": round(
                    time.monotonic() - self.started_at, 3
                ),
            },
        )

    async def handle_stats(self, request: Request) -> Response:
        stats = self.engine.stats
        return Response(
            200,
            {
                "engine": {
                    "queries": stats.queries,
                    "messages": stats.messages,
                    "payload_bytes": stats.payload_bytes,
                    "by_type": dict(stats.by_type),
                    "by_phase": dict(stats.by_phase),
                },
                "admission": self.admission.snapshot(),
                "served_by_endpoint": dict(self.served_by_endpoint),
                "strategy_tally": dict(self.strategy_tally),
                "store_version": self.engine.store_version,
                "memos": self.engine.memo_stats(),
                "verifier": self.engine.verifier_stats(),
            },
        )

    # -- mutation endpoints ---------------------------------------------------------

    async def handle_insert(self, request: Request) -> Response:
        return await self._mutate(request, self.engine.insert)

    async def handle_delete(self, request: Request) -> Response:
        return await self._mutate(request, self.engine.delete)

    async def _mutate(self, request: Request, op: Callable) -> Response:
        """Apply one write batch through the engine's explicit write path.

        Mutations share the single-worker executor with queries, so a
        write is never interleaved with a running query: every response
        either predates the write entirely or sees its full effect —
        including the memo/statistics delta maintenance the engine does
        inside ``op``.
        """
        triples = _parse_triples(request.json())
        applied = await self._run(op, triples)
        return Response(
            200,
            {
                "applied": applied,
                "requested": len(triples),
                "store_version": self.engine.store_version,
            },
        )

    # -- query endpoints -----------------------------------------------------------

    async def handle_exact(self, request: Request) -> Response:
        body = request.json()
        attribute = _field_str(body, "attribute")
        value = body.get("value")
        if not isinstance(value, (str, int, float)) or isinstance(value, bool):
            raise BadRequest("'value' must be a string or a number")
        ticket, rejection = self._admit(POINT_QUERY_PREDICTED_MESSAGES)
        if rejection is not None:
            return rejection
        started = time.perf_counter()
        try:
            matches = await self._run(self.engine.select, attribute, value)
            return self._query_response(
                {"matches": [_match_dict(m) for m in matches]}
            )
        finally:
            ticket.finish(time.perf_counter() - started)

    async def handle_similar(self, request: Request) -> Response:
        body = request.json()
        search = _field_str(body, "search")
        attribute = _field_str(body, "attribute")
        d = _field_int(body, "d", minimum=0)
        strategy = _parse_strategy(body)
        ticket, rejection = self._admit(
            self._predict_messages(search, attribute, d, strategy)
        )
        if rejection is not None:
            return rejection
        started = time.perf_counter()
        try:
            result = await self._run(
                self.engine.similar, search, attribute, d, strategy
            )
            self._tally(strategy)
            return self._query_response(
                {
                    "matches": [_match_dict(m) for m in result.matches],
                    "diagnostics": {
                        "grams_looked_up": result.grams_looked_up,
                        "candidates_verified": result.candidates_verified,
                    },
                }
            )
        finally:
            ticket.finish(time.perf_counter() - started)

    async def handle_top_n(self, request: Request) -> Response:
        params = self._top_n_params(request)
        ticket, rejection = self._admit(params["predicted"])
        if rejection is not None:
            return rejection
        started = time.perf_counter()
        engine = self.engine

        def run_top_n():
            with engine.recorded():
                return top_n_string_nn(
                    engine.ctx,
                    params["attribute"],
                    params["search"],
                    params["n"],
                    max_distance=params["max_distance"],
                    initiator_id=params["initiator"],
                    strategy=params["strategy"],
                )

        try:
            result = await self._run(run_top_n)
            self._tally(params["strategy"])
            return self._query_response(
                {
                    "matches": [_match_dict(m) for m in result.matches],
                    "rounds": result.rounds,
                }
            )
        finally:
            ticket.finish(time.perf_counter() - started)

    async def handle_top_n_stream(self, request: Request) -> Response:
        """Chunked NDJSON top-N: one line per match, in final rank order.

        Matches stream out as deepening rounds complete; the terminal
        line carries ``done`` plus the whole operation's cost (and the
        completeness record when the network is degraded).  The
        admission ticket is held until the stream finishes, so an open
        stream counts against ``max_inflight``.
        """
        params = self._top_n_params(request)
        decision = self.admission.admit(params["predicted"])
        if not decision.admitted:
            return _rejection(decision)
        self._tally(params["strategy"])
        return Response(
            200,
            headers={"Content-Type": "application/x-ndjson"},
            stream=self._stream_top_n(params, decision.ticket),
        )

    async def _stream_top_n(
        self, params: dict, ticket: Ticket
    ) -> AsyncIterator[bytes]:
        engine = self.engine
        started = time.perf_counter()
        try:
            async with self._engine_lock:
                loop = asyncio.get_running_loop()
                best: dict[str, object] = {}
                emitted = 0
                rounds = 0
                with engine.recorded():
                    for d in range(params["max_distance"] + 1):
                        rounds += 1
                        probe = await loop.run_in_executor(
                            self._pool,
                            lambda radius=d: similar(
                                engine.ctx,
                                params["search"],
                                params["attribute"],
                                radius,
                                params["initiator"],
                                strategy=params["strategy"],
                            ),
                        )
                        fresh = []
                        for match in probe.matches:
                            previous = best.get(match.oid)
                            if (
                                previous is None
                                or match.distance < previous.distance
                            ):
                                if previous is None:
                                    fresh.append(match)
                                best[match.oid] = match
                        fresh.sort(key=lambda m: (m.distance, m.oid))
                        for match in fresh:
                            if emitted >= params["n"]:
                                break
                            emitted += 1
                            yield _ndjson({"match": _match_dict(match)})
                        if len(best) >= params["n"]:
                            break
                cost = engine.last_cost()
            summary = {
                "done": True,
                "count": emitted,
                "rounds": rounds,
                "cost": _cost_dict(cost),
            }
            completeness = _completeness_dict(cost)
            if completeness is not None:
                summary["completeness"] = completeness
                summary["partial"] = bool(cost.completeness.is_partial)
            yield _ndjson(summary)
        finally:
            ticket.finish(time.perf_counter() - started)

    async def handle_vql(self, request: Request) -> Response:
        body = request.json()
        text = _field_str(body, "text")
        initiator = body.get("initiator")
        if initiator is not None and not isinstance(initiator, int):
            raise BadRequest("'initiator' must be an integer peer id")
        ticket, rejection = self._admit(POINT_QUERY_PREDICTED_MESSAGES)
        if rejection is not None:
            return rejection
        started = time.perf_counter()
        try:
            result = await self._run(self.engine.query, text, initiator)
            return self._query_response(
                {"rows": [dict(row) for row in result.rows]},
                cost=result.cost,
            )
        finally:
            ticket.finish(time.perf_counter() - started)

    # -- shared plumbing -----------------------------------------------------------

    def _top_n_params(self, request: Request) -> dict:
        body = request.json()
        attribute = _field_str(body, "attribute")
        search = _field_str(body, "search")
        n = _field_int(body, "n", minimum=1)
        max_distance = _field_int(
            body,
            "max_distance",
            minimum=0,
            default=self.config.default_top_n_max_distance,
        )
        if max_distance >= MAX_ROUNDS:
            raise BadRequest(f"'max_distance' must be < {MAX_ROUNDS}")
        initiator = body.get("initiator")
        if initiator is not None and not isinstance(initiator, int):
            raise BadRequest("'initiator' must be an integer peer id")
        strategy = _parse_strategy(body)
        return {
            "attribute": attribute,
            "search": search,
            "n": n,
            "max_distance": max_distance,
            "initiator": initiator,
            "strategy": strategy,
            # Deepening usually stops in the first rounds; predict the
            # d=1 probe as the request's admission weight.
            "predicted": self._predict_messages(search, attribute, 1, strategy),
        }

    def _predict_messages(
        self,
        search: str,
        attribute: str,
        d: int,
        strategy: SimilarityStrategy | None,
    ) -> float:
        """Admission weight of one similarity-shaped request.

        The fixed strategy's prediction when one was requested; the
        cheapest candidate otherwise (adaptive mode will pick it).
        """
        predictions = self.engine.predict_similar(search, attribute, d)
        if strategy is not None and strategy.is_physical:
            prediction = predictions.get(strategy.value)
            if prediction is not None:
                return max(1.0, prediction.messages)
        return max(
            1.0, min(p.messages for p in predictions.values())
        )

    def _admit(
        self, predicted_messages: float
    ) -> tuple[Ticket | None, Response | None]:
        decision = self.admission.admit(predicted_messages)
        if not decision.admitted:
            return None, _rejection(decision)
        return decision.ticket, None

    def _tally(self, strategy: SimilarityStrategy | None) -> None:
        resolved = strategy or self.engine.ctx.strategy
        self.strategy_tally[
            resolved.value if resolved is not None else "default"
        ] += 1

    def _query_response(
        self, payload: dict, cost=None
    ) -> Response:
        """Attach cost + completeness; degraded partial answers are 206."""
        cost = cost if cost is not None else self.engine.last_cost()
        payload["cost"] = _cost_dict(cost)
        if cost.decisions:
            payload["decisions"] = [_decision_dict(d) for d in cost.decisions]
        status = 200
        completeness = _completeness_dict(cost)
        if completeness is not None:
            payload["completeness"] = completeness
            if cost.completeness.is_partial:
                payload["partial"] = True
                status = 206
        return Response(status, payload)


# -- rendering helpers ---------------------------------------------------------


def _error(status: int, message: str) -> Response:
    return Response(status, {"error": message})


def _rejection(decision) -> Response:
    retry_after = decision.retry_after
    return Response(
        429,
        {
            "error": "overloaded",
            "reason": decision.reason,
            "retry_after": retry_after,
        },
        headers={"Retry-After": str(retry_after)},
    )


def _ndjson(payload: dict) -> bytes:
    return (json.dumps(payload) + "\n").encode()


def _match_dict(match) -> dict:
    return {
        "oid": match.oid,
        "matched": match.matched,
        "distance": match.distance,
        "object": {t.attribute: t.value for t in match.triples},
    }


def _cost_dict(cost) -> dict:
    out = {
        "messages": cost.messages,
        "payload_bytes": cost.payload_bytes,
        "by_phase": dict(cost.by_phase),
    }
    verifier = getattr(cost, "verifier", None)
    if verifier is not None:
        out["verifier"] = dict(verifier)
    return out


def _decision_dict(decision) -> dict:
    return {
        "search": decision.search,
        "attribute": decision.attribute,
        "d": decision.d,
        "chosen": decision.chosen.value,
        "predicted_messages": round(decision.predicted.messages, 1),
        "actual_messages": decision.actual_messages,
    }


def _completeness_dict(cost) -> dict | None:
    completeness = cost.completeness
    if completeness is None:
        return None
    return {
        "fraction": round(completeness.fraction, 6),
        "dark_partitions": list(completeness.dark_partitions),
        "dropped_candidates": completeness.dropped_candidates,
        "retries": completeness.retries,
        "failovers": completeness.failovers,
        "timeouts": completeness.timeouts,
    }


# -- request field parsing -----------------------------------------------------


def _field_str(body: dict, name: str) -> str:
    value = body.get(name)
    if not isinstance(value, str) or not value:
        raise BadRequest(f"'{name}' must be a non-empty string")
    return value


def _field_int(
    body: dict, name: str, minimum: int, default: int | None = None
) -> int:
    value = body.get(name, default)
    if value is None:
        raise BadRequest(f"'{name}' is required")
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"'{name}' must be an integer")
    if value < minimum:
        raise BadRequest(f"'{name}' must be >= {minimum}")
    return value


def _parse_triples(body: dict) -> list[Triple]:
    raw = body.get("triples")
    if not isinstance(raw, list) or not raw:
        raise BadRequest("'triples' must be a non-empty list")
    triples: list[Triple] = []
    for item in raw:
        if not isinstance(item, dict):
            raise BadRequest("each triple must be a JSON object")
        oid = item.get("oid")
        attribute = item.get("attribute")
        value = item.get("value")
        if not isinstance(oid, str) or not oid:
            raise BadRequest("triple 'oid' must be a non-empty string")
        if not isinstance(attribute, str) or not attribute:
            raise BadRequest("triple 'attribute' must be a non-empty string")
        if not isinstance(value, (str, int, float)) or isinstance(value, bool):
            raise BadRequest("triple 'value' must be a string or a number")
        triples.append(Triple(oid, attribute, value))
    return triples


def _parse_strategy(body: dict) -> SimilarityStrategy | None:
    name = body.get("strategy")
    if name is None:
        return None
    if not isinstance(name, str):
        raise BadRequest("'strategy' must be a string")
    try:
        return SimilarityStrategy.from_name(name)
    except ReproError as exc:
        raise BadRequest(str(exc)) from exc
