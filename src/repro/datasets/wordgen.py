"""Deterministic pseudo-English word synthesis.

The paper's datasets are natural-language corpora (bible words, painting
titles).  Those files are not shipped here, so the generators in this
package synthesize corpora with the *same statistics that drive the
evaluation*: word/title counts, length ranges, mean lengths, and a
Zipf-like skew in letter/q-gram frequencies (see DESIGN.md §4).

This module is the shared machinery: a syllable model whose onset/vowel/
coda inventories follow rough English frequencies, giving words whose
3-grams are heavily shared — exactly the property that makes q-gram
indexes behave like they do on real text.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

# Weighted inventories: (fragment, weight).  Weights approximate English
# onset/nucleus/coda frequencies; precision does not matter, skew does.
_ONSETS: Sequence[tuple[str, int]] = (
    ("", 10), ("b", 5), ("c", 6), ("d", 5), ("f", 4), ("g", 4), ("h", 6),
    ("j", 1), ("k", 2), ("l", 5), ("m", 6), ("n", 5), ("p", 5), ("r", 6),
    ("s", 9), ("t", 10), ("v", 2), ("w", 4), ("y", 1), ("z", 1),
    ("th", 7), ("sh", 3), ("ch", 3), ("wh", 2), ("st", 3), ("pr", 2),
    ("tr", 2), ("br", 2), ("gr", 2), ("fr", 2), ("pl", 1), ("cl", 1),
    ("str", 1),
)

_VOWELS: Sequence[tuple[str, int]] = (
    ("a", 10), ("e", 13), ("i", 9), ("o", 9), ("u", 4),
    ("ea", 2), ("ou", 2), ("ai", 1), ("ee", 2), ("oo", 1), ("io", 1),
)

_CODAS: Sequence[tuple[str, int]] = (
    ("", 8), ("b", 1), ("d", 4), ("g", 2), ("k", 2), ("l", 4), ("m", 3),
    ("n", 7), ("p", 2), ("r", 6), ("s", 7), ("t", 7), ("x", 1),
    ("nd", 3), ("ng", 3), ("nt", 2), ("st", 2), ("th", 2), ("rd", 1),
    ("ss", 1), ("ck", 1), ("ght", 1),
)


def _expand(inventory: Sequence[tuple[str, int]]) -> list[str]:
    """Flatten a weighted inventory into a sampling list."""
    flat: list[str] = []
    for fragment, weight in inventory:
        flat.extend([fragment] * weight)
    return flat


class WordGenerator:
    """Deterministic syllable-based word factory."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self._onsets = _expand(_ONSETS)
        self._vowels = _expand(_VOWELS)
        self._codas = _expand(_CODAS)

    def syllable(self) -> str:
        """One onset + nucleus + coda syllable."""
        return (
            self.rng.choice(self._onsets)
            + self.rng.choice(self._vowels)
            + self.rng.choice(self._codas)
        )

    def word(self, length: int) -> str:
        """A pronounceable word of exactly ``length`` characters.

        Syllables are concatenated until the target is reached, then the
        word is trimmed; too-short results are padded with fresh
        syllables, so the exact length always holds.
        """
        if length < 1:
            raise ValueError(f"word length must be >= 1, got {length}")
        parts: list[str] = []
        size = 0
        while size < length:
            syllable = self.syllable()
            if not syllable:
                continue
            parts.append(syllable)
            size += len(syllable)
        return "".join(parts)[:length]

    def unique_words(self, lengths: Sequence[int]) -> list[str]:
        """Distinct words, one per requested length (order preserved).

        Retries on collision; with syllable entropy far above the corpus
        sizes used here, a handful of retries suffices.
        """
        seen: set[str] = set()
        words: list[str] = []
        for length in lengths:
            for attempt in range(1000):
                candidate = self.word(length)
                if candidate not in seen:
                    seen.add(candidate)
                    words.append(candidate)
                    break
            else:  # pragma: no cover - astronomically unlikely
                raise RuntimeError(
                    f"could not generate a fresh word of length {length}"
                )
        return words


def sample_lengths(
    rng: random.Random,
    count: int,
    weights: Sequence[tuple[int, float]],
) -> list[int]:
    """Sample ``count`` lengths from a discrete ``(length, weight)`` law."""
    lengths = [length for length, __ in weights]
    probabilities = [weight for __, weight in weights]
    return rng.choices(lengths, weights=probabilities, k=count)


def mean_length(words: Sequence[str]) -> float:
    """Average string length of a corpus (diagnostics and tests)."""
    if not words:
        return 0.0
    return sum(len(w) for w in words) / len(words)
