"""The "painting titles" dataset (synthetic stand-in).

Paper, Section 6: "The second set consists of 66349 titles of paintings,
with lengths from 1 to 132 including spaces.  The average length of the
titles is 37.08."

Titles are composed from a painting-flavoured vocabulary ("Portrait of a
Woman in Blue", "Still Life with Winter Apples", …): long, multi-word,
space-separated strings whose words recur across titles — the q-gram
sharing profile that makes Figure 1(c)/(d) come out the way it does.
The word-count law is tuned so character lengths span [1, 132] with a
sample mean near 37.
"""

from __future__ import annotations

import random

from repro.storage.triple import Triple

#: Corpus statistics from the paper.
PAPER_TITLE_COUNT = 66_349
MIN_LENGTH = 1
MAX_LENGTH = 132
PAPER_MEAN_LENGTH = 37.08

#: The attribute under which titles are stored.
TITLE_ATTRIBUTE = "painting:title"

_SUBJECTS = (
    "portrait", "landscape", "still life", "study", "view", "scene",
    "allegory", "vision", "dream", "dance", "storm", "harvest", "battle",
    "garden", "river", "bridge", "cathedral", "harbour", "meadow", "forest",
    "window", "mirror", "annunciation", "adoration", "lamentation",
)

_QUALIFIERS = (
    "of a woman", "of a man", "of the artist", "of a young girl",
    "of an old fisherman", "with flowers", "with fruit", "with a skull",
    "in blue", "in red", "in the morning", "at dusk", "at the sea",
    "near the mill", "under willows", "after the rain", "in winter",
    "in summer", "by candlelight", "with two figures", "of the virgin",
    "of saint john", "on the terrace", "before the storm", "at the fair",
)

_MODIFIERS = (
    "the", "a", "great", "small", "young", "old", "silent", "golden",
    "broken", "white", "dark", "last", "first", "lost", "hidden",
)

_SINGLETONS = (
    "untitled", "nocturne", "composition", "improvisation", "study",
    "spring", "summer", "autumn", "winter", "dawn", "dusk", "eve", "joy",
    "hope", "x", "iv", "no",
)


def _compose_title(rng: random.Random) -> str:
    """One title; the shape mix drives the length distribution."""
    shape = rng.random()
    if shape < 0.06:
        # Very short titles ("X", "Dawn", "No 5") — the 1..10 char tail.
        title = rng.choice(_SINGLETONS)
        if rng.random() < 0.3:
            title += f" {rng.randrange(1, 40)}"
        return title
    parts = [rng.choice(_MODIFIERS), rng.choice(_SUBJECTS)]
    qualifier_count = 1 + (rng.random() < 0.48) + (rng.random() < 0.26)
    for __ in range(qualifier_count):
        parts.append(rng.choice(_QUALIFIERS))
    if shape > 0.93:
        # Long descriptive titles pushing towards the 132-char maximum.
        parts.append("and " + rng.choice(_MODIFIERS) + " " + rng.choice(_SUBJECTS))
        for __ in range(rng.randrange(1, 4)):
            parts.append(rng.choice(_QUALIFIERS))
    return " ".join(parts)


def painting_titles(count: int = PAPER_TITLE_COUNT, seed: int = 0) -> list[str]:
    """``count`` painting titles within the paper's length envelope."""
    rng = random.Random(seed)
    titles: list[str] = []
    serial = 0
    while len(titles) < count:
        title = _compose_title(rng)
        # Real title corpora contain duplicates, but mostly unique strings;
        # suffix a roman-ish numeral on some titles to keep skew mild.
        if rng.random() < 0.08:
            serial += 1
            title = f"{title} {_roman(serial % 12 + 1)}"
        if len(title) > MAX_LENGTH:
            title = title[:MAX_LENGTH].rstrip()
        titles.append(title)
    return titles


def painting_triples(count: int = PAPER_TITLE_COUNT, seed: int = 0) -> list[Triple]:
    """The title corpus as vertical triples, oids ``painting:000000`` on."""
    return [
        Triple(f"painting:{index:06d}", TITLE_ATTRIBUTE, title)
        for index, title in enumerate(painting_titles(count, seed))
    ]


def _roman(number: int) -> str:
    """Small roman numerals (1..12) for title suffixes."""
    table = (
        (10, "x"), (9, "ix"), (5, "v"), (4, "iv"), (1, "i"),
    )
    result = []
    for value, glyph in table:
        while number >= value:
            result.append(glyph)
            number -= value
    return "".join(result)
