"""The "bible words" dataset (synthetic stand-in).

Paper, Section 6: "The first one comprises 106704 single words from the
English bible, with word lengths from 5 to 14 and an average length of
6.46."

:func:`bible_words` synthesizes a corpus matching those statistics: the
declared count of *distinct* words, lengths clipped to [5, 14], and a
length law tuned so the sample mean lands on 6.46 ± a few hundredths.
:func:`bible_triples` wraps the words as ``(oid, word:text, w)`` triples —
single-attribute objects, exactly what "single words" means for the
storage scheme.
"""

from __future__ import annotations

import random

from repro.datasets.wordgen import WordGenerator, sample_lengths
from repro.storage.triple import Triple

#: Corpus statistics from the paper.
PAPER_WORD_COUNT = 106_704
MIN_LENGTH = 5
MAX_LENGTH = 14
PAPER_MEAN_LENGTH = 6.46

#: The attribute under which words are stored.
TEXT_ATTRIBUTE = "word:text"

#: Length law fitted to the paper's mean (5–14, mean 6.46): mass decays
#: roughly geometrically, as English word-length distributions do.
_LENGTH_WEIGHTS: tuple[tuple[int, float], ...] = (
    (5, 0.405),
    (6, 0.25),
    (7, 0.125),
    (8, 0.085),
    (9, 0.055),
    (10, 0.034),
    (11, 0.02),
    (12, 0.012),
    (13, 0.008),
    (14, 0.006),
)


def bible_words(count: int = PAPER_WORD_COUNT, seed: int = 0) -> list[str]:
    """``count`` distinct pseudo-English words with the paper's length law."""
    rng = random.Random(seed)
    lengths = sample_lengths(rng, count, _LENGTH_WEIGHTS)
    return WordGenerator(seed + 1).unique_words(lengths)


def bible_triples(count: int = PAPER_WORD_COUNT, seed: int = 0) -> list[Triple]:
    """The word corpus as vertical triples, oids ``word:000000`` onwards."""
    return [
        Triple(f"word:{index:06d}", TEXT_ATTRIBUTE, word)
        for index, word in enumerate(bible_words(count, seed))
    ]
