"""The car/dealer example database of Section 3.

Generates the two relations the paper's VQL examples run on —
``car(name, hp, price, mileage, dealer)`` and ``dealer(dlrid, name,
addr)`` — with the *heterogeneities* that motivate similarity operators
injected deliberately:

* instance level: a configurable fraction of car names carries a typo
  (``"BMW"`` → ``"BWM"``, ``"Mercedes"`` → ``"Mrecedes"``, …);
* schema level: a fraction of dealer records spells the id attribute
  differently (``dlrid`` → ``dealerid`` / ``dlrld`` / ``dealid``) — the
  typo-detection scenario of the paper's third example query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.schema import RelationSchema
from repro.storage.triple import Triple

CAR_SCHEMA = RelationSchema("car", ("name", "hp", "price", "mileage", "dealer"))
DEALER_SCHEMA = RelationSchema("dealer", ("dlrid", "name", "addr"))

_MAKES = (
    ("bmw", 150, 620), ("audi", 110, 610), ("mercedes", 120, 630),
    ("volkswagen", 75, 300), ("porsche", 300, 700), ("toyota", 70, 400),
    ("honda", 75, 320), ("ferrari", 490, 800), ("volvo", 120, 450),
    ("renault", 70, 280), ("peugeot", 70, 270), ("fiat", 65, 240),
)

_MODELS = (
    "roadster", "sedan", "coupe", "estate", "cabrio", "touring", "sport",
    "gt", "classic", "compact",
)

_STREETS = (
    "main street", "elm street", "oak avenue", "station road", "mill lane",
    "harbour way", "market square", "king street", "bridge road",
)

_CITIES = (
    "ilmenau", "lausanne", "berlin", "geneva", "erfurt", "zurich", "jena",
)

#: Misspellings of the dealer-id attribute found "in the wild".
DLRID_VARIANTS = ("dlrid", "dealerid", "dlrld", "dealid")


@dataclass
class CarDatabase:
    """The generated relations plus their triples."""

    car_rows: list[dict]
    dealer_rows: list[dict]
    triples: list[Triple]

    @property
    def car_count(self) -> int:
        return len(self.car_rows)

    @property
    def dealer_count(self) -> int:
        return len(self.dealer_rows)


def _typo(word: str, rng: random.Random) -> str:
    """One random edit: swap, drop, or duplicate a character."""
    if len(word) < 2:
        return word + word
    kind = rng.randrange(3)
    i = rng.randrange(len(word) - 1)
    if kind == 0:  # transposition
        return word[:i] + word[i + 1] + word[i] + word[i + 2 :]
    if kind == 1:  # deletion
        return word[:i] + word[i + 1 :]
    return word[:i] + word[i] + word[i:]  # duplication


def car_database(
    n_cars: int = 200,
    n_dealers: int = 20,
    typo_rate: float = 0.1,
    schema_typo_rate: float = 0.15,
    seed: int = 0,
) -> CarDatabase:
    """Generate the example database with injected heterogeneity."""
    rng = random.Random(seed)
    dealer_rows: list[dict] = []
    triples: list[Triple] = []
    for serial in range(n_dealers):
        dealer_id = f"d{serial:03d}"
        id_attribute = (
            rng.choice(DLRID_VARIANTS[1:])
            if rng.random() < schema_typo_rate
            else DLRID_VARIANTS[0]
        )
        row = {
            id_attribute: dealer_id,
            "name": f"{rng.choice(_CITIES)} motors {serial}",
            "addr": f"{rng.randrange(1, 99)} {rng.choice(_STREETS)}, "
            f"{rng.choice(_CITIES)}",
        }
        dealer_rows.append(row)
        triples.extend(
            DEALER_SCHEMA.tuple_to_triples(DEALER_SCHEMA.make_oid(serial), row)
        )

    car_rows: list[dict] = []
    for serial in range(n_cars):
        make, hp_lo, hp_hi = _MAKES[rng.randrange(len(_MAKES))]
        name = f"{make} {rng.choice(_MODELS)}"
        if rng.random() < typo_rate:
            name = _typo(name, rng)
        hp = rng.randrange(hp_lo, hp_hi)
        row = {
            "name": name,
            "hp": hp,
            "price": hp * rng.randrange(120, 260),
            "mileage": rng.randrange(0, 250_000),
            "dealer": f"d{rng.randrange(n_dealers):03d}",
        }
        car_rows.append(row)
        triples.extend(CAR_SCHEMA.tuple_to_triples(CAR_SCHEMA.make_oid(serial), row))
    return CarDatabase(car_rows=car_rows, dealer_rows=dealer_rows, triples=triples)
