"""Synthetic datasets mirroring the paper's corpora statistics."""

from repro.datasets.bible import bible_triples, bible_words
from repro.datasets.cars import CAR_SCHEMA, DEALER_SCHEMA, CarDatabase, car_database
from repro.datasets.paintings import painting_titles, painting_triples
from repro.datasets.wordgen import WordGenerator, mean_length

__all__ = [
    "CAR_SCHEMA",
    "CarDatabase",
    "DEALER_SCHEMA",
    "WordGenerator",
    "bible_triples",
    "bible_words",
    "car_database",
    "mean_length",
    "painting_titles",
    "painting_triples",
]
