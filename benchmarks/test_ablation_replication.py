"""Ablation: structural replication factor (DESIGN.md abl-replication).

Replication multiplies storage but leaves query cost essentially flat —
lookups contact one live replica per partition.  This is the property
that makes P-Grid's fault tolerance cheap at query time (Section 2).
"""

import pytest

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.bench.experiment import build_network
from repro.bench.workload import make_workload, run_workload
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples

from benchmarks.conftest import BENCH_CONFIG

CORPUS_SIZE = 500
PEERS = 256


def _run(replication: int) -> tuple[int, int]:
    config = BENCH_CONFIG.replace(replication=replication)
    corpus = bible_triples(CORPUS_SIZE, seed=4)
    strings = [str(t.value) for t in corpus]
    network = build_network(corpus, PEERS, config)
    queries = make_workload(strings, network.n_peers, repetitions=1, seed=4)
    ctx = OperatorContext(network, strategy=SimilarityStrategy.QSAMPLE)
    stats = run_workload(ctx, TEXT_ATTRIBUTE, queries, SimilarityStrategy.QSAMPLE)
    return stats.messages, network.total_entries()


@pytest.mark.parametrize("replication", [1, 2, 4])
def test_replication_ablation(benchmark, replication):
    messages, stored = benchmark.pedantic(
        lambda: _run(replication), rounds=1, iterations=1
    )
    benchmark.extra_info["replication"] = replication
    benchmark.extra_info["messages"] = messages
    benchmark.extra_info["stored_entries"] = stored
    print(f"\nk={replication}: messages={messages}, stored entries={stored}")
    base_messages, base_stored = _run(1)
    # Storage scales with k; query cost stays within a small factor.
    assert stored == pytest.approx(replication * base_stored, rel=0.01)
    assert messages < 3 * base_messages
