"""Micro-benchmarks of the hot primitives (DESIGN.md micro).

These use pytest-benchmark's normal calibration — each operation is
microseconds, and the timings bound what the simulator can sweep.

The gram-lookup and verification ops come in (fast path, reference path)
pairs: the indexed/batched implementation must beat the scan/per-
candidate implementation it replaced.  ``python -m repro.bench --json``
times the same pairs without pytest and records the ratios in
``BENCH_micro.json``.
"""

import random

import pytest

from repro.core.config import StoreConfig
from repro.overlay.hashing import CompositeKeyCodec, OrderPreservingStringHash
from repro.similarity.edit_distance import edit_distance, edit_distance_within
from repro.similarity.kernels import MyersQuery, ReferenceKernel, resolve_kernel
from repro.similarity.verify import BatchVerifier
from repro.storage.datastore import LocalDataStore
from repro.storage.indexing import EntryFactory
from repro.storage.qgrams import positional_qgrams, qgram_sample, qgram_tuples
from repro.storage.triple import Triple

from benchmarks.conftest import BENCH_CONFIG
from tests.conftest import TEXT_ATTR, build_word_network

TITLE = "portrait of a young woman in blue near the mill after the rain"


def test_edit_distance_words(benchmark):
    assert benchmark(edit_distance, "similarity", "similarly") == 2


def test_edit_distance_titles(benchmark):
    other = TITLE.replace("blue", "red").replace("rain", "storm")
    assert benchmark(edit_distance, TITLE, other) > 0


def test_banded_edit_distance_rejects_fast(benchmark):
    # The banded variant's selling point: distant strings abort early.
    result = benchmark(edit_distance_within, TITLE, "x" * len(TITLE), 3)
    assert result == 4


def test_myers_edit_distance_rejects_fast(benchmark):
    """The bit-parallel pair member: same probe, precompiled masks."""
    state = MyersQuery(TITLE)
    other = "x" * len(TITLE)
    result = benchmark(state.within, other, 3)
    assert result == 4


def test_positional_qgrams_title(benchmark):
    grams = benchmark(positional_qgrams, TITLE, 3)
    assert len(grams) == len(TITLE) + 2


def test_qgram_sample_title(benchmark):
    sample = benchmark(qgram_sample, TITLE, 3, 3)
    assert len(sample) == 4


def test_order_preserving_hash(benchmark):
    hasher = OrderPreservingStringHash(32)
    assert len(benchmark(hasher.key, "similarity")) == 32


def test_entry_generation(benchmark):
    config = StoreConfig(seed=0)
    factory = EntryFactory(config, CompositeKeyCodec(config))
    triple = Triple("p:00001", "painting:title", TITLE)
    entries = benchmark(lambda: list(factory.entries_for(triple)))
    assert len(entries) > len(TITLE)


def test_routing_walk(benchmark):
    network = build_word_network(n_peers=64)
    key = network.codec.attr_value_key(TEXT_ATTR, "cherry")

    def route_once():
        return network.router.route(key, 0)

    peer = benchmark(route_once)
    assert peer.responsible_for(key)


def test_batched_route_many(benchmark):
    network = build_word_network(n_peers=64)
    from tests.conftest import WORDS

    keys = [network.codec.attr_value_key(TEXT_ATTR, w) for w in WORDS]

    def batch():
        return network.router.route_many(keys, 0)

    answers = benchmark(batch)
    assert len(answers) == len(set(keys))


# -- gram lookup + verification pairs (the Similar() hot path) ---------------


@pytest.fixture(scope="module")
def bible_store():
    """One peer-sized store of bible index entries plus probe keys."""
    from repro.datasets.bible import bible_triples

    factory = EntryFactory(BENCH_CONFIG, CompositeKeyCodec(BENCH_CONFIG))
    entries = list(factory.entries_for_all(bible_triples(1500, seed=0)))
    store = LocalDataStore()
    store.add_bulk(entries)
    rng = random.Random(0)
    probes = [rng.choice(entries).key for __ in range(500)]
    return store, probes


@pytest.fixture(scope="module")
def verification_pile():
    """A (query, candidates) pile with the workload's natural repeats."""
    from repro.datasets.bible import bible_triples

    words = sorted({str(t.value) for t in bible_triples(1500, seed=0)})
    rng = random.Random(0)
    return rng.choice(words), [rng.choice(words) for __ in range(2000)]


def test_gram_lookup_indexed(benchmark, bible_store):
    store, probes = bible_store
    store.lookup(probes[0])  # warm the postings map outside the timing

    def indexed():
        return sum(len(store.lookup(key)) for key in probes)

    assert benchmark(indexed) > 0


def test_gram_lookup_scan(benchmark, bible_store):
    """The pre-index reference path (double bisect per probe)."""
    store, probes = bible_store

    def scan():
        return sum(len(store.lookup_scan(key)) for key in probes)

    assert benchmark(scan) > 0


def test_verification_batched(benchmark, verification_pile):
    """The shared-prefix banded DP batch (pinned to the reference kernel).

    Both batched benchmarks time verification only — a fresh verifier
    plus one ``distances`` pass; consuming the dict is caller-side work
    identical across kernels, so it happens outside the timed region.
    """
    query, candidates = verification_pile
    kernel = ReferenceKernel()

    def batched():
        return BatchVerifier(query, 2, kernel=kernel).distances(candidates)

    distances = benchmark(batched)
    assert sum(1 for c in candidates if distances[c] <= 2) == sum(
        1 for c in candidates if edit_distance_within(query, c, 2) <= 2
    )


def test_verification_batched_myers(benchmark, verification_pile):
    """The bit-parallel pair member (numpy prefilter when importable)."""
    query, candidates = verification_pile
    kernel = resolve_kernel("myers")

    def batched():
        return BatchVerifier(query, 2, kernel=kernel).distances(candidates)

    distances = benchmark(batched)
    assert sum(1 for c in candidates if distances[c] <= 2) == sum(
        1 for c in candidates if edit_distance_within(query, c, 2) <= 2
    )


def test_verification_single(benchmark, verification_pile):
    """The pre-batching reference path: one fresh DP per candidate."""
    query, candidates = verification_pile

    def single():
        return sum(
            1 for c in candidates if edit_distance_within(query, c, 2) <= 2
        )

    assert benchmark(single) >= 0


def test_qgram_tuples_title(benchmark):
    grams = benchmark(qgram_tuples, TITLE, 3)
    assert len(grams) == len(TITLE) + 2
