"""Micro-benchmarks of the hot primitives (DESIGN.md micro).

These use pytest-benchmark's normal calibration — each operation is
microseconds, and the timings bound what the simulator can sweep.
"""

from repro.core.config import StoreConfig
from repro.overlay.hashing import CompositeKeyCodec, OrderPreservingStringHash
from repro.similarity.edit_distance import edit_distance, edit_distance_within
from repro.storage.indexing import EntryFactory
from repro.storage.qgrams import positional_qgrams, qgram_sample
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, build_word_network

TITLE = "portrait of a young woman in blue near the mill after the rain"


def test_edit_distance_words(benchmark):
    assert benchmark(edit_distance, "similarity", "similarly") == 2


def test_edit_distance_titles(benchmark):
    other = TITLE.replace("blue", "red").replace("rain", "storm")
    assert benchmark(edit_distance, TITLE, other) > 0


def test_banded_edit_distance_rejects_fast(benchmark):
    # The banded variant's selling point: distant strings abort early.
    result = benchmark(edit_distance_within, TITLE, "x" * len(TITLE), 3)
    assert result == 4


def test_positional_qgrams_title(benchmark):
    grams = benchmark(positional_qgrams, TITLE, 3)
    assert len(grams) == len(TITLE) + 2


def test_qgram_sample_title(benchmark):
    sample = benchmark(qgram_sample, TITLE, 3, 3)
    assert len(sample) == 4


def test_order_preserving_hash(benchmark):
    hasher = OrderPreservingStringHash(32)
    assert len(benchmark(hasher.key, "similarity")) == 32


def test_entry_generation(benchmark):
    config = StoreConfig(seed=0)
    factory = EntryFactory(config, CompositeKeyCodec(config))
    triple = Triple("p:00001", "painting:title", TITLE)
    entries = benchmark(lambda: list(factory.entries_for(triple)))
    assert len(entries) > len(TITLE)


def test_routing_walk(benchmark):
    network = build_word_network(n_peers=64)
    key = network.codec.attr_value_key(TEXT_ATTR, "cherry")

    def route_once():
        return network.router.route(key, 0)

    peer = benchmark(route_once)
    assert peer.responsible_for(key)


def test_batched_route_many(benchmark):
    network = build_word_network(n_peers=64)
    from tests.conftest import WORDS

    keys = [network.codec.attr_value_key(TEXT_ATTR, w) for w in WORDS]

    def batch():
        return network.router.route_many(keys, 0)

    answers = benchmark(batch)
    assert len(answers) == len(set(keys))
