"""Fault-tier benchmark: churn-recovery sweep vs the committed baseline.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_fault.py -m
fault_bench``.  The sweep is fully seeded, so the regenerated payload
must equal the committed ``BENCH_fault.json`` except for wall-clock
fields; shape assertions pin the robustness story (degradation is
monotone in the failure fraction, repair always restores consistency).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.fault import FAULT_SCHEMA, run_fault_bench

pytestmark = pytest.mark.fault_bench

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_fault.json")


@pytest.fixture(scope="module")
def payload() -> dict:
    return run_fault_bench()


@pytest.fixture(scope="module")
def baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def _strip_wall_time(document: dict) -> dict:
    stripped = dict(document)
    stripped.pop("elapsed_seconds", None)
    return stripped


def test_schema(payload):
    assert payload["schema"] == FAULT_SCHEMA
    assert payload["kind"] == "fault_bench"
    scale = payload["scale"]
    for field in ("words", "peers", "replication", "queries",
                  "drop_probability", "fractions", "seed"):
        assert field in scale
    assert len(payload["cells"]) == len(scale["fractions"])
    for cell in payload["cells"]:
        for field in ("fail_fraction", "failed_peers", "dark_partitions",
                      "under_failure", "repair", "consistent_after_repair",
                      "post_repair"):
            assert field in cell
        for field in ("success_rate", "mean_completeness", "retry_messages",
                      "failover_messages", "dropped_candidates",
                      "simulated_latency"):
            assert field in cell["under_failure"]
        for field in ("entries_copied", "messages", "payload_bytes"):
            assert field in cell["repair"]


def test_matches_committed_baseline(payload, baseline):
    """The sweep is deterministic: regenerating must reproduce the file."""
    assert _strip_wall_time(payload) == _strip_wall_time(baseline)


def test_repair_restores_consistency(payload):
    for cell in payload["cells"]:
        assert cell["consistent_after_repair"], cell["fail_fraction"]
        # Divergence only exists after actual churn, and repair must have
        # copied at least one entry whenever the audit found any.
        if cell["divergent_partitions_before_repair"]:
            assert cell["repair"]["entries_copied"] > 0
            assert cell["repair"]["messages"] > 0


def test_degradation_shape(payload):
    """Success and completeness fall (weakly) as the failure fraction grows."""
    cells = payload["cells"]
    assert cells[0]["fail_fraction"] == 0.0
    under0 = cells[0]["under_failure"]
    assert under0["success_rate"] == 1.0
    assert under0["mean_completeness"] == 1.0
    assert under0["dark_partitions_seen"] == 0
    success = [c["under_failure"]["success_rate"] for c in cells]
    completeness = [c["under_failure"]["mean_completeness"] for c in cells]
    assert success == sorted(success, reverse=True)
    assert completeness == sorted(completeness, reverse=True)
    # Hard partition loss at the top of the sweep must actually show up
    # as partial answers, not exceptions.
    assert cells[-1]["dark_partitions"] > 0
    assert cells[-1]["under_failure"]["success_rate"] < 1.0


def test_post_repair_recovers(payload):
    """After recover + repair + clear_faults the mix runs clean again."""
    for cell in payload["cells"]:
        post = cell["post_repair"]
        assert post["success_rate"] == 1.0
        assert post["retry_messages"] == 0
        assert post["failover_messages"] == 0
        assert post["dropped_candidates"] == 0
        # The healed network answers at least as fully as the degraded one.
        assert post["matches"] >= cell["under_failure"]["matches"]


def test_retry_overhead_charged(payload):
    """A lossy plan shows up as nonzero retry traffic in every cell."""
    for cell in payload["cells"]:
        assert cell["under_failure"]["retry_messages"] > 0
