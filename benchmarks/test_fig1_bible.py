"""Figure 1(a)/(b): messages and data volume on the bible-words corpus.

Regenerates the paper's two bible-words panels: the same 6-query mix
(top-N N=5/10/15 with d<=5, anchored self sim-joins d=1/2/3), swept over
peer counts, once per strategy.  The benchmark clock times one workload
execution of the cheapest strategy at the middle peer count; the panel
series ride along in ``extra_info`` and are printed for inspection.

Expected shapes (asserted):
* naive ``strings`` grows faster with the peer count than ``qgrams``;
* ``strings`` is the most expensive strategy at the largest peer count;
* ``qsamples`` costs at most ``qgrams`` at the largest peer count.
"""

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.bench.experiment import ALL_STRATEGIES, build_network
from repro.bench.report import format_panel, shape_check
from repro.bench.workload import make_workload, run_workload
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples

from benchmarks.conftest import BENCH_CONFIG


def test_fig1a_bible_messages(benchmark, bible_sweep):
    """Panel (a): total messages per workload vs. number of peers."""
    corpus = bible_triples(400, seed=1)
    strings = [str(t.value) for t in corpus]
    network = build_network(corpus, 256, BENCH_CONFIG)
    queries = make_workload(strings, network.n_peers, repetitions=1, seed=1)
    ctx = OperatorContext(network, strategy=SimilarityStrategy.QSAMPLE)

    def one_workload():
        network.tracer.reset()
        return run_workload(
            ctx, TEXT_ATTRIBUTE, queries, SimilarityStrategy.QSAMPLE
        ).messages

    benchmark.pedantic(one_workload, rounds=3, iterations=1)
    print()
    print(format_panel("fig1a", bible_sweep))
    for strategy in ALL_STRATEGIES:
        benchmark.extra_info[f"messages_{strategy.value}"] = (
            bible_sweep.message_series(strategy)
        )
    assert shape_check(bible_sweep) == []


def test_fig1b_bible_volume(benchmark, bible_sweep):
    """Panel (b): total data volume (MB) per workload vs. number of peers."""
    corpus = bible_triples(400, seed=1)
    strings = [str(t.value) for t in corpus]
    network = build_network(corpus, 256, BENCH_CONFIG)
    queries = make_workload(strings, network.n_peers, repetitions=1, seed=1)
    ctx = OperatorContext(network, strategy=SimilarityStrategy.QGRAM)

    def one_workload():
        network.tracer.reset()
        return run_workload(
            ctx, TEXT_ATTRIBUTE, queries, SimilarityStrategy.QGRAM
        ).payload_bytes

    benchmark.pedantic(one_workload, rounds=3, iterations=1)
    print()
    print(format_panel("fig1b", bible_sweep))
    naive = bible_sweep.megabyte_series(SimilarityStrategy.NAIVE)
    for strategy in ALL_STRATEGIES:
        benchmark.extra_info[f"megabytes_{strategy.value}"] = (
            bible_sweep.megabyte_series(strategy)
        )
    # Naive data volume grows with N (it ships the query to every region
    # peer and compares everything locally).
    assert naive[-1] > naive[0]
