"""Shared fixtures for the benchmark suite.

Figure-panel benchmarks reuse one sweep per dataset, computed once per
session at a scale that keeps the whole suite in the minutes range.
``REPRO_FULL_SCALE=1`` (or ``python -m repro.bench --full``) switches the
standalone harness to paper scale; the pytest benchmarks always run the
scaled-down configuration — the point here is regression tracking and
shape verification, not absolute numbers (see EXPERIMENTS.md).

Every test collected under ``benchmarks/`` carries the ``bench`` marker,
and the root ``pytest.ini`` deselects that marker by default: tier-1
(``python -m pytest -x -q``) stays fast, while ``python -m pytest
benchmarks -m bench`` runs this suite explicitly (see
``benchmarks/README.md``).
"""

from __future__ import annotations

import pytest

from repro.core.config import StoreConfig
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.datasets.paintings import TITLE_ATTRIBUTE, painting_triples
from repro.bench.sweep import SweepResult, sweep


BENCH_DIR = __file__.rsplit("/", 1)[0]


def pytest_collection_modifyitems(items):
    """Mark everything in this directory as ``bench``.

    The hook sees the whole session's items, so filter to this
    directory's before marking.  Tests that already carry the
    ``fault_bench`` marker form their own tier and are left alone — a
    ``-m fault_bench`` run must not drag the figure sweeps in, nor the
    other way around.
    """
    for item in items:
        if not str(item.fspath).startswith(BENCH_DIR):
            continue
        if item.get_closest_marker("fault_bench") is not None:
            continue
        item.add_marker(pytest.mark.bench)

#: Scaled-down sweep parameters (see module docstring).
PEER_COUNTS = (64, 256, 1024)
WORD_COUNT = 1500
TITLE_COUNT = 700
REPETITIONS = 2

#: The bench harness drops the index families the workload never touches
#: (keyword values, schema grams) — matching ``python -m repro.bench``.
BENCH_CONFIG = StoreConfig(seed=0, index_values=False, index_schema_grams=False)


@pytest.fixture(scope="session")
def bible_sweep() -> SweepResult:
    corpus = bible_triples(WORD_COUNT, seed=0)
    strings = [str(t.value) for t in corpus]
    return sweep(
        "bible", corpus, TEXT_ATTRIBUTE, strings,
        peer_counts=PEER_COUNTS, config=BENCH_CONFIG, repetitions=REPETITIONS,
    )


@pytest.fixture(scope="session")
def titles_sweep() -> SweepResult:
    corpus = painting_triples(TITLE_COUNT, seed=0)
    strings = [str(t.value) for t in corpus]
    return sweep(
        "titles", corpus, TITLE_ATTRIBUTE, strings,
        peer_counts=PEER_COUNTS, config=BENCH_CONFIG, repetitions=REPETITIONS,
    )
