"""Simulated response times per strategy (discrete-event replay).

The paper defers latency measurements to a PlanetLab deployment; this
benchmark produces the simulated counterpart: each strategy's ``Similar``
queries are replayed through the happens-before log replay with
log-normal hop latencies, giving mean and p95 response times.

Expected orderings: the naive broadcast's dissemination chain through the
whole attribute region makes it the slowest despite decent message
counts; q-samples' smaller fan-out gives the shortest critical path.
(CPU time at peers is not replayed — adding it would only hurt naive
further; see ``repro.bench.latency``.)
"""

import statistics

import pytest

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.simulation.replay import replay_operation
from repro.simulation.timing import LatencyDistribution
from repro.bench.experiment import build_network
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples

from benchmarks.conftest import BENCH_CONFIG

CORPUS_SIZE = 800
PEERS = 512
MODEL = LatencyDistribution(median_ms=50.0, sigma=0.4, per_kb_ms=0.2)


@pytest.fixture(scope="module")
def setting():
    corpus = bible_triples(CORPUS_SIZE, seed=9)
    words = [str(t.value) for t in corpus]
    network = build_network(corpus, PEERS, BENCH_CONFIG)
    return network, words


def _latencies(network, words, strategy) -> list[float]:
    ctx = OperatorContext(network, strategy=strategy)
    times = []
    for index, word in enumerate(words[::60]):
        initiator = (index * 37) % network.n_peers
        __, timing = replay_operation(
            network,
            lambda w=word, i=initiator: similar(ctx, w, TEXT_ATTRIBUTE, 2, i),
            initiator,
            model=MODEL,
            seed=index,
        )
        times.append(timing.completion_ms)
    return times


@pytest.mark.parametrize(
    "strategy",
    [SimilarityStrategy.QSAMPLE, SimilarityStrategy.QGRAM, SimilarityStrategy.NAIVE],
)
def test_response_time_replay(benchmark, setting, strategy):
    network, words = setting
    times = benchmark.pedantic(
        lambda: _latencies(network, words, strategy), rounds=1, iterations=1
    )
    mean = statistics.fmean(times)
    p95 = sorted(times)[int(0.95 * (len(times) - 1))]
    benchmark.extra_info["mean_response_ms"] = round(mean, 1)
    benchmark.extra_info["p95_response_ms"] = round(p95, 1)
    print(f"\n{strategy.value}: mean={mean:.0f} ms, p95={p95:.0f} ms")
    assert mean > 0


def test_naive_has_longest_critical_path(setting):
    network, words = setting
    naive = statistics.fmean(_latencies(network, words, SimilarityStrategy.NAIVE))
    qsample = statistics.fmean(
        _latencies(network, words, SimilarityStrategy.QSAMPLE)
    )
    assert naive > qsample
