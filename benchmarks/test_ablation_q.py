"""Ablation: the q-gram length q (DESIGN.md abl-q).

The paper fixes q = 3 (following Gravano et al.); this ablation sweeps q
over {2, 3, 4} and reports workload messages and storage amplification.
Smaller q means fewer, less selective grams (more candidates per gram);
larger q means more lookups and more storage but sharper filtering.
"""

import pytest

from repro.core.config import SimilarityStrategy
from repro.overlay.hashing import CompositeKeyCodec
from repro.query.operators.base import OperatorContext
from repro.storage.indexing import EntryFactory
from repro.bench.experiment import build_network
from repro.bench.workload import make_workload, run_workload
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples

from benchmarks.conftest import BENCH_CONFIG

CORPUS_SIZE = 600
PEERS = 256


def _workload_messages(q: int) -> tuple[int, float]:
    config = BENCH_CONFIG.replace(q=q)
    corpus = bible_triples(CORPUS_SIZE, seed=2)
    strings = [str(t.value) for t in corpus]
    network = build_network(corpus, PEERS, config)
    queries = make_workload(strings, network.n_peers, repetitions=1, seed=2)
    ctx = OperatorContext(network, strategy=SimilarityStrategy.QGRAM)
    stats = run_workload(ctx, TEXT_ATTRIBUTE, queries, SimilarityStrategy.QGRAM)
    factory = EntryFactory(config, CompositeKeyCodec(config))
    amplification = factory.storage_amplification(corpus[:200])
    return stats.messages, amplification


@pytest.mark.parametrize("q", [2, 3, 4])
def test_q_length_ablation(benchmark, q):
    messages, amplification = benchmark.pedantic(
        lambda: _workload_messages(q), rounds=1, iterations=1
    )
    benchmark.extra_info["q"] = q
    benchmark.extra_info["messages"] = messages
    benchmark.extra_info["storage_amplification"] = round(amplification, 2)
    print(f"\nq={q}: messages={messages}, storage x{amplification:.2f}")
    assert messages > 0
    # Storage amplification grows with q (extension adds q-1 pads/side).
    assert amplification > q
