"""Figure 1(c)/(d): messages and data volume on the painting-titles corpus.

Long multi-word strings are where the q-gram strategies pay off (Section
6: "the costs of the string approach increase linear in the number of
peers and finally it is outperformed by both q-gram methods ... clearly
fortified by the results on the titles data").

Expected shapes (asserted): as in the bible panels, plus the qualitative
title-specific claim that ``qsamples`` beats the naive strategy by a wide
margin at the largest peer count.
"""

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.bench.experiment import ALL_STRATEGIES, build_network
from repro.bench.report import format_panel, shape_check
from repro.bench.workload import make_workload, run_workload
from repro.datasets.paintings import TITLE_ATTRIBUTE, painting_triples

from benchmarks.conftest import BENCH_CONFIG


def test_fig1c_titles_messages(benchmark, titles_sweep):
    """Panel (c): total messages per workload vs. number of peers."""
    corpus = painting_triples(300, seed=1)
    strings = [str(t.value) for t in corpus]
    network = build_network(corpus, 256, BENCH_CONFIG)
    queries = make_workload(strings, network.n_peers, repetitions=1, seed=1)
    ctx = OperatorContext(network, strategy=SimilarityStrategy.QSAMPLE)

    def one_workload():
        network.tracer.reset()
        return run_workload(
            ctx, TITLE_ATTRIBUTE, queries, SimilarityStrategy.QSAMPLE
        ).messages

    benchmark.pedantic(one_workload, rounds=3, iterations=1)
    print()
    print(format_panel("fig1c", titles_sweep))
    for strategy in ALL_STRATEGIES:
        benchmark.extra_info[f"messages_{strategy.value}"] = (
            titles_sweep.message_series(strategy)
        )
    assert shape_check(titles_sweep) == []
    qsample = titles_sweep.message_series(SimilarityStrategy.QSAMPLE)
    naive = titles_sweep.message_series(SimilarityStrategy.NAIVE)
    assert naive[-1] > 3 * qsample[-1]


def test_fig1d_titles_volume(benchmark, titles_sweep):
    """Panel (d): total data volume (MB) per workload vs. number of peers."""
    corpus = painting_triples(300, seed=1)
    strings = [str(t.value) for t in corpus]
    network = build_network(corpus, 256, BENCH_CONFIG)
    queries = make_workload(strings, network.n_peers, repetitions=1, seed=1)
    ctx = OperatorContext(network, strategy=SimilarityStrategy.NAIVE)

    def one_workload():
        network.tracer.reset()
        return run_workload(
            ctx, TITLE_ATTRIBUTE, queries, SimilarityStrategy.NAIVE
        ).payload_bytes

    benchmark.pedantic(one_workload, rounds=3, iterations=1)
    print()
    print(format_panel("fig1d", titles_sweep))
    for strategy in ALL_STRATEGIES:
        benchmark.extra_info[f"megabytes_{strategy.value}"] = (
            titles_sweep.megabyte_series(strategy)
        )
    naive = titles_sweep.megabyte_series(SimilarityStrategy.NAIVE)
    qsample = titles_sweep.megabyte_series(SimilarityStrategy.QSAMPLE)
    assert naive[-1] > qsample[-1]
