"""Ablation: delegated vs. collected evaluation of Algorithm 2.

The paper implements delegation ("queries are delegated from the
initiating peer to the q-gram owning peers, which again delegate queries
to the oid owning peers") on top of the printed algorithm, which collects
gram hits at the initiator.  Collection enables the global count filter;
delegation avoids shipping raw gram hits.  This benchmark measures both
on the same corpus and workload slice.
"""

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.query.operators.collected import similar_collected
from repro.query.operators.similar import similar
from repro.bench.experiment import build_network
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples

from benchmarks.conftest import BENCH_CONFIG

CORPUS_SIZE = 800
PEERS = 256


def _run(mode: str) -> tuple[int, int]:
    corpus = bible_triples(CORPUS_SIZE, seed=8)
    words = [str(t.value) for t in corpus]
    network = build_network(corpus, PEERS, BENCH_CONFIG)
    ctx = OperatorContext(network, strategy=SimilarityStrategy.QGRAM)
    messages = 0
    payload = 0
    for word in words[::80]:
        network.tracer.reset()
        if mode == "delegated":
            result = similar(ctx, word, TEXT_ATTRIBUTE, 2)
        else:
            result = similar_collected(ctx, word, TEXT_ATTRIBUTE, 2)
        assert any(m.matched == word for m in result.matches)
        messages += network.tracer.message_count
        payload += network.tracer.payload_bytes
    return messages, payload


def test_delegated_flow(benchmark):
    messages, payload = benchmark.pedantic(
        lambda: _run("delegated"), rounds=1, iterations=1
    )
    benchmark.extra_info["messages"] = messages
    benchmark.extra_info["payload_bytes"] = payload
    print(f"\ndelegated: messages={messages}, payload={payload}")


def test_collected_flow(benchmark):
    messages, payload = benchmark.pedantic(
        lambda: _run("collected"), rounds=1, iterations=1
    )
    benchmark.extra_info["messages"] = messages
    benchmark.extra_info["payload_bytes"] = payload
    print(f"\ncollected: messages={messages}, payload={payload}")
    assert messages > 0
