"""Ablation: the position + length filters of Algorithm 2, line 8.

The filters run at the gram-owning peers, pruning candidates *before*
they are delegated over the network.  Turning them off must never change
results (the final edit-distance check is the referee) but must increase
candidate traffic.
"""

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.similarity.filters import FilterConfig
from repro.bench.experiment import build_network
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples

from benchmarks.conftest import BENCH_CONFIG

CORPUS_SIZE = 800
PEERS = 256


def _run(filters: FilterConfig) -> tuple[int, int]:
    corpus = bible_triples(CORPUS_SIZE, seed=3)
    words = [str(t.value) for t in corpus]
    network = build_network(corpus, PEERS, BENCH_CONFIG)
    ctx = OperatorContext(
        network, strategy=SimilarityStrategy.QGRAM, filters=filters
    )
    messages = 0
    candidates = 0
    for word in words[::100]:
        network.tracer.reset()
        result = similar(ctx, word, TEXT_ATTRIBUTE, 2)
        messages += network.tracer.message_count
        candidates += result.candidates_after_filters
    return messages, candidates


def test_filters_on(benchmark):
    messages, candidates = benchmark.pedantic(
        lambda: _run(FilterConfig()), rounds=1, iterations=1
    )
    benchmark.extra_info["messages"] = messages
    benchmark.extra_info["candidates"] = candidates
    print(f"\nfilters on:  messages={messages}, candidates={candidates}")


def test_filters_off(benchmark):
    on_messages, on_candidates = _run(FilterConfig())
    messages, candidates = benchmark.pedantic(
        lambda: _run(FilterConfig(use_position=False, use_length=False)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["messages"] = messages
    benchmark.extra_info["candidates"] = candidates
    print(f"\nfilters off: messages={messages}, candidates={candidates}")
    assert candidates >= on_candidates
    assert messages >= on_messages
