"""Ablation: top-N range estimation (DESIGN.md abl-topn).

Algorithm 4's first probe is sized from local data density; load
balancing makes that estimate representative, so most queries should
finish in one or two range-query rounds.  This benchmark measures the
round distribution and the per-query message cost across N.
"""

import random

import pytest

from repro.core.config import RankFunction
from repro.query.operators.base import OperatorContext
from repro.query.operators.topn import top_n_numeric
from repro.storage.triple import Triple
from repro.bench.experiment import build_network

from benchmarks.conftest import BENCH_CONFIG

ATTR = "reading:value"
PEERS = 256
VALUES = 3000


def _network():
    rng = random.Random(6)
    triples = [
        Triple(f"r:{i:05d}", ATTR, rng.gauss(500.0, 150.0)) for i in range(VALUES)
    ]
    return build_network(triples, PEERS, BENCH_CONFIG)


@pytest.mark.parametrize("n", [5, 10, 15])
def test_topn_round_efficiency(benchmark, n):
    network = _network()
    ctx = OperatorContext(network)
    rng = random.Random(7)

    def run_queries():
        rounds = []
        messages = []
        for __ in range(10):
            network.tracer.reset()
            result = top_n_numeric(
                ctx, ATTR, n, RankFunction.NN, reference=rng.gauss(500.0, 150.0)
            )
            assert len(result.matches) == n
            rounds.append(result.rounds)
            messages.append(network.tracer.message_count)
        return rounds, messages

    rounds, messages = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    mean_rounds = sum(rounds) / len(rounds)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["mean_rounds"] = round(mean_rounds, 2)
    benchmark.extra_info["mean_messages"] = round(sum(messages) / len(messages), 1)
    print(
        f"\nN={n}: mean rounds={mean_rounds:.2f}, "
        f"mean messages={sum(messages) / len(messages):.1f}"
    )
    # Density estimation keeps probing short: three rounds on average
    # would mean the estimate is systematically off.
    assert mean_rounds <= 3.0
