"""Ablation: data-aware vs. uniform trie construction (DESIGN.md abl-trie).

P-Grid balances partitions against the data distribution [2]; the paper
leans on this ("we achieve a reasonable uniform distribution of data
items among peers regardless of the actual data distribution").  This
ablation quantifies the difference on the order-preserved word corpus,
whose keys are anything but uniform.
"""

from repro.core.config import TrieBalancing
from repro.bench.experiment import build_network
from repro.datasets.bible import bible_triples

from benchmarks.conftest import BENCH_CONFIG

CORPUS_SIZE = 2000
PEERS = 256


def _max_load_ratio(balancing: TrieBalancing) -> float:
    config = BENCH_CONFIG.replace(balancing=balancing)
    corpus = bible_triples(CORPUS_SIZE, seed=5)
    network = build_network(corpus, PEERS, config)
    loads = network.load_distribution()
    mean = sum(loads) / len(loads)
    return max(loads) / mean


def test_trie_balancing_ablation(benchmark):
    data_aware = benchmark.pedantic(
        lambda: _max_load_ratio(TrieBalancing.DATA_AWARE), rounds=1, iterations=1
    )
    uniform = _max_load_ratio(TrieBalancing.UNIFORM)
    benchmark.extra_info["max_load_over_mean_data_aware"] = round(data_aware, 1)
    benchmark.extra_info["max_load_over_mean_uniform"] = round(uniform, 1)
    print(
        f"\nmax load / mean: data-aware={data_aware:.1f}, uniform={uniform:.1f}"
    )
    # The load-balanced trie beats the uniform split by a wide margin on
    # order-preserved text keys.
    assert data_aware < uniform / 2
