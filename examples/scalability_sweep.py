"""Mini Figure 1: compare the three strategies across network sizes.

Run with::

    python examples/scalability_sweep.py

A scaled-down version of the paper's evaluation (Section 6): the 6-query
workload (three string top-N queries, three anchored similarity
self-joins) replayed under the ``qsamples``, ``qgrams`` and ``strings``
strategies while the network grows.  For the full harness — all four
panels, CSV output, paper-scale option — use ``python -m repro.bench``.
"""

from repro.core.config import StoreConfig
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.bench.report import format_panel, shape_check
from repro.bench.sweep import sweep

PEER_COUNTS = (64, 256, 1024)
WORD_COUNT = 1200


def main() -> None:
    config = StoreConfig(seed=0, index_values=False, index_schema_grams=False)
    corpus = bible_triples(WORD_COUNT, seed=0)
    strings = [str(t.value) for t in corpus]
    print(
        f"{WORD_COUNT} words, peers {list(PEER_COUNTS)}, "
        "2 x 6-query workload per cell — this takes a minute or two\n"
    )
    result = sweep(
        "bible",
        corpus,
        TEXT_ATTRIBUTE,
        strings,
        peer_counts=PEER_COUNTS,
        config=config,
        repetitions=2,
        progress=lambda message: print(f"  {message}"),
    )
    print()
    print(format_panel("fig1a", result))
    print()
    print(format_panel("fig1b", result))
    print()
    findings = shape_check(result)
    if findings:
        for finding in findings:
            print(f"! {finding}")
    else:
        print(
            "shape checks passed: naive grows linearly and is overtaken; "
            "q-gram strategies grow ~logarithmically; q-samples cheapest."
        )


if __name__ == "__main__":
    main()
