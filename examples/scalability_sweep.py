"""Mini Figure 1: compare the three strategies across network sizes.

Run with::

    python examples/scalability_sweep.py

A scaled-down version of the paper's evaluation (Section 6): the 6-query
workload (three string top-N queries, three anchored similarity
self-joins) replayed under the ``qsamples``, ``qgrams`` and ``strings``
strategies while the network grows.  The expected picture is the paper's:
the naive ``strings`` broadcast grows linearly with the peer count while
both q-gram strategies grow roughly logarithmically, with q-samples
cheapest.

The sweep runs on the incremental engine
(:class:`repro.overlay.incremental.IncrementalNetworkBuilder`): each
cell's network is grown from the trie-derivation state of the previous
cells rather than rebuilt, and naive broadcasts are memoized across the
workload — both bit-identical to a from-scratch run (the engine's
equivalence tests pin this), which is why the printed build times stay
flat while the peer count multiplies.  A fourth, **adaptive** series
rides along: the cost model (docs/ARCHITECTURE.md, "Engine & cost
model") picks naive vs. q-gram per query from collected statistics —
watch it track the cheapest fixed curve as the network grows.  For the
full harness — all four panels, CSV/JSON output, paper-scale option,
the sampled-broadcast estimator — use ``python -m repro.bench``.
"""

from repro.core.config import StoreConfig
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.bench.experiment import ALL_WITH_ADAPTIVE
from repro.bench.report import format_panel, shape_check
from repro.bench.sweep import sweep

PEER_COUNTS = (64, 256, 1024)
WORD_COUNT = 1200


def main() -> None:
    config = StoreConfig(seed=0, index_values=False, index_schema_grams=False)
    corpus = bible_triples(WORD_COUNT, seed=0)
    strings = [str(t.value) for t in corpus]
    print(
        f"{WORD_COUNT} words, peers {list(PEER_COUNTS)}, "
        "2 x 6-query workload per cell — this takes a minute or two\n"
    )
    result = sweep(
        "bible",
        corpus,
        TEXT_ATTRIBUTE,
        strings,
        peer_counts=PEER_COUNTS,
        config=config,
        repetitions=2,
        strategies=ALL_WITH_ADAPTIVE,
        progress=lambda message: print(f"  {message}"),
    )
    print()
    print(format_panel("fig1a", result))
    print()
    print(format_panel("fig1b", result))
    print()
    builds = ", ".join(
        f"{cell.n_peers}p={cell.build_seconds:.2f}s" for cell in result.cells
    )
    print(f"incremental network builds: {builds}")
    for cell in result.cells:
        if cell.adaptive_choices:
            print(
                f"adaptive picks at {cell.n_peers} peers: "
                f"{cell.adaptive_choices} "
                f"(stats walk: {cell.adaptive_stats_messages} messages)"
            )
    findings = shape_check(result)
    if findings:
        for finding in findings:
            print(f"! {finding}")
    else:
        print(
            "shape checks passed: naive grows linearly and is overtaken; "
            "q-gram strategies grow ~logarithmically; q-samples cheapest."
        )


if __name__ == "__main__":
    main()
