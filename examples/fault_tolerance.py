"""Fault tolerance: replicated partitions keep queries alive under churn.

Run with::

    python examples/fault_tolerance.py

Section 2's guarantee — ``Retrieve`` always succeeds "if at least one peer
in each partition is reachable (ensured through redundant routing table
entries and replication)" — made concrete: a replicated network keeps
answering similarity queries while 40% of its peers are offline, and the
availability math shows how to size the replication factor.

Uses ``replication=3`` (three peers per partition) and the
``ChurnController`` from ``repro.overlay.churn``; the replication/
availability formulas live in ``repro.overlay.replication``.  The
engine is built with ``memoize=False``: churn is exactly the dynamic
setting the whole-workload memos are not meant for (the engine's
mutation-token check and per-entry version guards would keep them
correct — peer failures do not change stored data — but this example
demonstrates the plain, unmemoized flow).
"""

from repro import QueryEngine, StoreConfig, Triple
from repro.overlay.churn import ChurnController
from repro.overlay.replication import (
    network_availability,
    partition_availability,
    replicas_needed,
)

WORDS = [
    "resilient", "resilience", "redundant", "redundancy", "replica",
    "replicate", "partition", "partial", "failure", "failover",
    "overlay", "overload", "recover", "recovery", "robust",
]


def main() -> None:
    triples = [
        Triple(f"w:{i:04d}", "word:text", w) for i, w in enumerate(WORDS)
    ]
    config = StoreConfig(seed=21, replication=3)
    store = QueryEngine.build(
        n_peers=48, triples=triples, config=config, memoize=False
    )
    network = store.network
    print(
        f"{network.n_peers} peers, {network.n_partitions} partitions, "
        f"replication k={config.replication}\n"
    )

    # Baseline query on the healthy network.
    result = store.similar("resilent", "word:text", d=2)
    print("healthy network, similar('resilent', d=2):")
    print(f"  {[m.matched for m in result.matches]}")
    print(f"  [{store.last_cost().messages} messages]\n")

    # Knock out 40% of the peers (never the last replica of a partition).
    churn = ChurnController(network, seed=1)
    report = churn.fail_fraction(0.4)
    print(
        f"churn: {len(report.failed_peer_ids)} peers failed, "
        f"{report.online_peers} online, "
        f"all partitions reachable: {report.all_partitions_reachable}"
    )

    result = store.similar("resilent", "word:text", d=2)
    print("under churn, same query:")
    print(f"  {[m.matched for m in result.matches]}")
    print(f"  [{store.last_cost().messages} messages]\n")

    churn.recover_all()

    # Sizing replication: how many replicas for 99.9% per-partition
    # availability at various failure rates?
    print("replication sizing (target: 99.9% per-partition availability):")
    for failure_rate in (0.05, 0.2, 0.5):
        k = replicas_needed(failure_rate, 0.999)
        per_partition = partition_availability(k, failure_rate)
        whole = network_availability(network.n_partitions, k, failure_rate)
        print(
            f"  peer failure {failure_rate:>4.0%}: k={k} "
            f"(partition {per_partition:.4f}, "
            f"whole {network.n_partitions}-partition network {whole:.3f})"
        )


if __name__ == "__main__":
    main()
