"""Fault tolerance: lossy transport, retries, and degraded partial results.

Run with::

    python examples/fault_tolerance.py

Section 2's guarantee — ``Retrieve`` always succeeds "if at least one peer
in each partition is reachable (ensured through redundant routing table
entries and replication)" — made concrete in three acts:

1. a replicated network keeps answering similarity queries *completely*
   while 40% of its peers are offline and 10% of messages drop on the
   wire — the retry/backoff and replica-failover overhead shows up as
   extra messages under the ``retry``/``failover`` phases;
2. when whole partitions go dark (``protect_partitions=False``), the
   engine's ``degraded`` fault mode returns *partial* results annotated
   with a ``Completeness`` record instead of raising;
3. the availability math shows how to size the replication factor.

The fault layer lives in ``repro.overlay.faults``; the replication/
availability formulas in ``repro.overlay.replication``.  The engine is
built with ``memoize=False``: churn is exactly the dynamic setting the
whole-workload memos are not meant for.
"""

from repro import FaultPlan, QueryEngine, StoreConfig, Triple
from repro.overlay.churn import ChurnController
from repro.overlay.replication import (
    audit_replicas,
    network_availability,
    partition_availability,
    repair_partition,
    replicas_needed,
)

WORDS = [
    "resilient", "resilience", "redundant", "redundancy", "replica",
    "replicate", "partition", "partial", "failure", "failover",
    "overlay", "overload", "recover", "recovery", "robust",
]


def main() -> None:
    triples = [
        Triple(f"w:{i:04d}", "word:text", w) for i, w in enumerate(WORDS)
    ]
    config = StoreConfig(seed=21, replication=3)
    # The context manager tears down the engine's fan-out executor even
    # if a demo act raises mid-way.
    with QueryEngine.build(
        n_peers=48, triples=triples, config=config, memoize=False
    ) as store:
        run_demo(store, config)


def run_demo(store: QueryEngine, config: StoreConfig) -> None:
    network = store.network
    print(
        f"{network.n_peers} peers, {network.n_partitions} partitions, "
        f"replication k={config.replication}\n"
    )

    # Baseline query on the healthy network.
    result = store.similar("resilent", "word:text", d=2)
    print("healthy network, similar('resilent', d=2):")
    print(f"  {[m.matched for m in result.matches]}")
    print(f"  [{store.last_cost().messages} messages]\n")

    # Act 1 — lossy transport + 40% churn, every partition kept alive.
    store.install_faults(FaultPlan.lossy(0.10, seed=4), mode="degraded")
    churn = ChurnController(network, seed=1)
    report = churn.fail_fraction(0.4)  # protect_partitions=True
    print(
        f"churn: {len(report.failed_peer_ids)} peers failed, "
        f"{report.online_peers} online, 10% message loss, "
        f"all partitions reachable: {report.all_partitions_reachable}"
    )
    result = store.similar("resilent", "word:text", d=2)
    cost = store.last_cost()
    c = cost.completeness
    print("under lossy churn, same query (complete despite the faults):")
    print(f"  {[m.matched for m in result.matches]}")
    print(
        f"  [{cost.messages} messages, of which "
        f"{cost.by_phase.get('retry', 0)} retries and "
        f"{cost.by_phase.get('failover', 0)} failover contacts; "
        f"completeness={c.fraction:.2f}]\n"
    )

    # Act 2 — hard partition loss: degraded mode returns partial results.
    report = churn.fail_fraction(0.5, protect_partitions=False)
    print(
        f"harder churn: {report.online_peers} peers left, "
        f"dark partitions: {report.dark_partitions}"
    )
    result = store.similar("resilent", "word:text", d=2)
    c = store.last_cost().completeness
    print("partial answer instead of an exception:")
    print(f"  {[m.matched for m in result.matches]}")
    print(
        f"  [completeness={c.fraction:.2f}, "
        f"dark partitions {list(c.dark_partitions)}, "
        f"{c.dropped_candidates} candidates dropped, "
        f"{c.retries} retries, {c.timeouts} timeouts]\n"
    )

    # Recover, repair whatever diverged, and verify the audit.
    churn.recover_all()
    store.clear_faults()
    audit = audit_replicas(network)
    for index in audit.divergent_partitions:
        repair_partition(network, index)
    print(
        "after recover + repair, audit consistent:",
        audit_replicas(network).consistent,
    )
    result = store.similar("resilent", "word:text", d=2)
    print(f"healed network answers fully again: "
          f"{[m.matched for m in result.matches]}\n")

    # Act 3 — sizing replication: how many replicas for 99.9%
    # per-partition availability at various failure rates?
    print("replication sizing (target: 99.9% per-partition availability):")
    for failure_rate in (0.05, 0.2, 0.5):
        k = replicas_needed(failure_rate, 0.999)
        per_partition = partition_availability(k, failure_rate)
        whole = network_availability(network.n_partitions, k, failure_rate)
        print(
            f"  peer failure {failure_rate:>4.0%}: k={k} "
            f"(partition {per_partition:.4f}, "
            f"whole {network.n_partitions}-partition network {whole:.3f})"
        )


if __name__ == "__main__":
    main()
