"""Quickstart: store structured data in the overlay, query it by similarity.

Run with::

    python examples/quickstart.py

Builds a 64-peer P-Grid behind the :class:`repro.QueryEngine` facade,
loads a small word collection as vertical triples, and demonstrates the
four query surfaces: the direct operator API (``similar``), VQL text
queries, cost introspection, and the cost-model-driven **adaptive**
strategy mode (the engine picks naive vs. q-gram per query from
collected statistics and reports predicted-vs-actual cost).  Finishes
in a few seconds and doubles as the documentation smoke test (CI runs
it on every push).  Start here, then see README.md for the module map
and docs/ARCHITECTURE.md for how the pieces fit the paper.
"""

from repro import QueryEngine, SimilarityStrategy, StoreConfig, Triple

WORDS = [
    "overlay", "overlap", "overall", "overload", "oversee",
    "similar", "similarity", "simulate", "stimulate",
    "structure", "structured", "strictured",
    "peer", "pear", "pier", "peers",
    "query", "queries", "quell",
]


def main() -> None:
    # Each word becomes one object with two attributes.
    triples = []
    for index, word in enumerate(WORDS):
        oid = f"word:{index:04d}"
        triples.append(Triple(oid, "word:text", word))
        triples.append(Triple(oid, "word:len", len(word)))

    engine = QueryEngine.build(
        n_peers=64, triples=triples, config=StoreConfig(seed=42)
    )
    print(f"network: {engine.n_peers} peers, "
          f"{engine.network.total_entries()} index entries\n")

    # 1. Direct operator API: strings within edit distance 1 of a typo.
    result = engine.similar("overlai", "word:text", d=1)
    print("similar('overlai', d=1):")
    for match in result.matches:
        print(f"  {match.matched!r}  (edit distance {match.distance:.0f})")
    print(f"  cost: {engine.last_cost().messages} messages, "
          f"{engine.last_cost().payload_bytes} bytes\n")

    # 2. VQL: similarity predicate plus a numeric filter, top-3 longest.
    query = """
        SELECT ?w, ?l
        WHERE { (?o,word:text,?w) (?o,word:len,?l)
        FILTER (dist(?w,'similarity') <= 3) }
        ORDER BY ?l DESC LIMIT 3
    """
    result = engine.query(query)
    print("VQL top-3 longest words within distance 3 of 'similarity':")
    for row in result.rows:
        print(f"  {row['w']!r} (length {row['l']})")
    print(f"  cost: {result.cost.messages} messages")
    print("\nphysical plan:")
    print(result.plan.explain())

    # 3. Adaptive mode: collect statistics, let the cost model pick the
    # strategy per query, and inspect its decision on the cost report.
    engine.analyze(["word:text"])
    engine.ctx.strategy = SimilarityStrategy.ADAPTIVE
    result = engine.similar("strutured", "word:text", d=2)
    print("\nadaptive similar('strutured', d=2):")
    for match in result.matches:
        print(f"  {match.matched!r}  (edit distance {match.distance:.0f})")
    for decision in engine.last_decisions():
        print(f"  [adaptive] {decision.summary()}")

    # 4. Session ledger.
    print(f"\nsession stats: {engine.stats.summary()}")


if __name__ == "__main__":
    main()
