"""Schema discovery and homogenization over heterogeneous public data.

Run with::

    python examples/schema_discovery.py

The paper's motivating use case is *public data management*: many
independent parties publish records with no agreed schema.  This example
simulates three communities publishing sensor readings with drifting
attribute spellings and value formats — bare, self-describing attribute
names, exactly as the vertical scheme allows — then uses schema-level
similarity to discover the attribute variants and instance-level
similarity to reconcile station names, all without a global dictionary.

Schema-level queries are the ``a = ""`` branch of Algorithm 2: the
compared strings are attribute *names*, whose q-grams are indexed under
their own key family (``index_schema_grams``).  See
docs/ARCHITECTURE.md, "storage/" section, for the key families.
"""

import random

from repro import QueryEngine, StoreConfig
from repro.storage.schema import record_to_triples

#: Attribute spellings used by the three publishing communities.
COMMUNITY_ATTRIBUTES = {
    "alpine": {"temp": "temperature", "hum": "humidity", "st": "station"},
    "coastal": {"temp": "temperture", "hum": "humidty", "st": "station"},
    "urban": {"temp": "temperatur", "hum": "humidity", "st": "staton"},
}

STATIONS = ["matterhorn", "jungfrau", "saentis", "rigi", "pilatus"]


def publish(store: QueryEngine, seed: int) -> int:
    """Each community publishes records under its own spellings."""
    rng = random.Random(seed)
    triples = []
    serial = 0
    for community, attrs in COMMUNITY_ATTRIBUTES.items():
        for __ in range(40):
            station = rng.choice(STATIONS)
            if rng.random() < 0.15:  # instance-level noise too
                index = rng.randrange(len(station) - 1)
                station = station[:index] + station[index + 1 :]
            record = {
                attrs["temp"]: round(rng.gauss(8.0, 6.0), 1),
                attrs["hum"]: rng.randrange(20, 100),
                attrs["st"]: station,
            }
            oid = f"{community}:{serial:05d}"
            triples.extend(record_to_triples(oid, record))
            serial += 1
    return store.insert(triples)


def main() -> None:
    store = QueryEngine.build(n_peers=96, config=StoreConfig(seed=13))
    entries = publish(store, seed=13)
    print(f"published {entries} index entries from 3 communities\n")

    # -- 1. discover temperature-attribute variants across communities ------
    result = store.similar("temperature", "", d=2)
    variants = sorted({m.matched for m in result.matches})
    print("schema-level: attribute names within edit distance 2 of "
          "'temperature':")
    for name in variants:
        count = sum(1 for m in result.matches if m.matched == name)
        print(f"  {name:<14} ({count} objects)")
    print(f"  [{store.last_cost().messages} messages]\n")

    # -- 2. reconcile station names across noisy spellings -------------------
    station_attrs = sorted(
        {m.matched for m in store.similar("station", "", d=2).matches}
    )
    print(f"discovered station attributes: {station_attrs}")
    print("instance-level: records for station 'matterhorn' (d <= 2):")
    total = 0
    for attribute in station_attrs:
        matches = store.similar("matterhorn", attribute, d=2).matches
        total += len(matches)
        spellings = sorted({m.matched for m in matches})
        print(f"  via {attribute!r}: {len(matches)} records, "
              f"spellings {spellings}")
    print(f"  reconciled {total} records\n")

    # -- 3. homogenized numeric query across the discovered variants ----------
    print("homogenized: freezing readings (temperature < 0) per variant:")
    for attribute in variants:
        result = store.query(
            f"SELECT ?t WHERE {{ (?o,{attribute},?t) FILTER (?t < 0) }}"
        )
        print(f"  {attribute:<14} {len(result.rows):>3} readings below 0 C")
    print(f"\nsession stats: {store.stats.summary()}")


if __name__ == "__main__":
    main()
