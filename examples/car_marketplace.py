"""The paper's car-marketplace scenario (Section 3), end to end.

Run with::

    python examples/car_marketplace.py

Generates the car/dealer relations with deliberately injected
heterogeneity (typo'd car names, misspelled dealer-id attributes), loads
them into a 128-peer overlay, and runs the paper's three example queries:

1. top-N: the 5 most powerful cars below a price bound;
2. instance-level similarity: the same, restricted to BMW-ish names,
   joined with the selling dealers;
3. schema-level similarity: detect misspelled ``dlrid`` attributes.

The point of the scenario is *heterogeneity tolerance*: no global
schema, typos in both values and attribute names, and yet every query
answers correctly because similarity predicates run inside the overlay
(docs/ARCHITECTURE.md, "query/" section).  Runs in a few seconds.
"""

from repro import QueryEngine, StoreConfig
from repro.datasets.cars import car_database


def main() -> None:
    db = car_database(
        n_cars=300, n_dealers=25, typo_rate=0.12, schema_typo_rate=0.2, seed=7
    )
    store = QueryEngine.build(
        n_peers=128, triples=db.triples, config=StoreConfig(seed=7)
    )
    print(
        f"loaded {db.car_count} cars, {db.dealer_count} dealers onto "
        f"{store.n_peers} peers\n"
    )

    # -- Query 1: the paper's first example --------------------------------
    result = store.query("""
        SELECT ?n, ?h, ?p
        WHERE { (?o,car:name,?n) (?o,car:hp,?h) (?o,car:price,?p)
        FILTER (?p < 50000) }
        ORDER BY ?h DESC LIMIT 5
    """)
    print("Top-5 most powerful cars below 50 000:")
    for row in result.rows:
        print(f"  {row['n']:<24} {row['h']:>4} hp  {row['p']:>7}")
    print(f"  [{result.cost.messages} messages]\n")

    # -- Query 2: similarity on the instance level + dealer join ------------
    result = store.query("""
        SELECT ?n, ?h, ?p, ?dn, ?a
        WHERE { (?x,car:dealer,?d) (?y,dealer:dlrid,?d)
        (?x,car:name,?n) (?x,car:hp,?h) (?x,car:price,?p)
        (?y,dealer:addr,?a) (?y,dealer:name,?dn)
        FILTER (?p < 80000)
        FILTER (dist(?n,'bmw roadster') <= 2) }
        ORDER BY ?h DESC LIMIT 5
    """)
    print("BMW-roadster-like cars (edit distance <= 2) with their dealers:")
    for row in result.rows:
        print(
            f"  {row['n']:<24} {row['h']:>4} hp  {row['p']:>7}  "
            f"{row['dn']} ({row['a']})"
        )
    print(f"  [{result.cost.messages} messages]\n")

    # -- Query 3: schema-level similarity (typo detection) -------------------
    result = store.query("""
        SELECT ?d, ?a, ?dn
        WHERE { (?d,?a,?id) (?d,dealer:name,?dn)
        FILTER (dist(?a,'dealer:dlrid') < 4) }
        ORDER BY ?a NN 'dealer:dlrid'
    """)
    variants: dict[str, int] = {}
    for row in result.rows:
        variants[row["a"]] = variants.get(row["a"], 0) + 1
    print("Attribute names within edit distance 3 of 'dealer:dlrid':")
    for attribute, count in sorted(variants.items()):
        marker = "(canonical)" if attribute == "dealer:dlrid" else "(variant!)"
        print(f"  {attribute:<20} {count:>3} dealers {marker}")
    print(f"  [{result.cost.messages} messages]\n")

    print(f"session stats: {store.stats.summary()}")


if __name__ == "__main__":
    main()
