"""Unit tests for the batched verifier (similarity/verify.py)."""

import pytest

from repro.similarity.edit_distance import edit_distance_within
from repro.similarity.verify import BatchVerifier, VerifierPool

WORDS = [
    "apple", "apply", "ample", "maple", "apples", "applet", "appl", "aple",
    "grape", "grapes", "grace", "trace", "track", "crack", "",
    "banana", "band", "bandana", "bananas", "applicable", "application",
]


def reference(query, candidates, d):
    return {c: edit_distance_within(query, c, d) for c in candidates}


class TestBatchedDistances:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 5])
    def test_matches_reference_on_words(self, d):
        verifier = BatchVerifier("apple", d)
        assert verifier.distances(WORDS) == reference("apple", WORDS, d)

    def test_sentinel_is_d_plus_one(self):
        verifier = BatchVerifier("apple", 1)
        assert verifier.distances(["zzzzz"])["zzzzz"] == 2

    def test_exact_match_zero(self):
        verifier = BatchVerifier("apple", 2)
        assert verifier.distances(["apple"])["apple"] == 0

    def test_empty_query(self):
        verifier = BatchVerifier("", 2)
        assert verifier.distances(["", "a", "ab", "abc"]) == {
            "": 0, "a": 1, "ab": 2, "abc": 3,
        }

    def test_empty_candidate_list(self):
        assert BatchVerifier("apple", 2).distances([]) == {}

    def test_duplicates_collapse(self):
        verifier = BatchVerifier("apple", 2)
        result = verifier.distances(["apply", "apply", "apply"])
        assert result == {"apply": 1}
        assert verifier.computed == 1

    def test_shared_prefix_run(self):
        # A long sorted run sharing prefixes exercises the row stack.
        candidates = ["app", "appl", "apple", "apples", "applesauce", "applet"]
        verifier = BatchVerifier("apple", 3)
        assert verifier.distances(candidates) == reference(
            "apple", candidates, 3
        )

    def test_dead_prefix_rejects_extensions(self):
        # 'zzz' kills the band for d=1; every extension must still be the
        # correct sentinel.
        candidates = ["zzza", "zzzb", "zzzzzz", "zzz"]
        verifier = BatchVerifier("apple", 1)
        assert all(v == 2 for v in verifier.distances(candidates).values())


class TestMemoAndSingles:
    def test_single_path_matches_reference(self):
        verifier = BatchVerifier("grape", 2)
        for word in WORDS:
            assert verifier.distance(word) == edit_distance_within(
                "grape", word, 2
            )

    def test_within_predicate(self):
        verifier = BatchVerifier("grape", 2)
        assert verifier.within("grapes")
        assert not verifier.within("banana")

    def test_batch_seeds_single_memo(self):
        verifier = BatchVerifier("apple", 2)
        verifier.distances(WORDS)
        computed = verifier.computed
        for word in WORDS:
            verifier.distance(word)
        assert verifier.computed == computed

    def test_single_seeds_batch_memo(self):
        verifier = BatchVerifier("apple", 2)
        first = verifier.distance("apply")
        assert verifier.distances(["apply"]) == {"apply": first}
        assert verifier.computed == 1

    def test_length_filter_counts_no_dp(self):
        verifier = BatchVerifier("apple", 1)
        verifier.distances(["intercontinental"])
        assert verifier.computed == 0


class TestVerifierPool:
    def test_same_pair_shares_instance(self):
        pool = VerifierPool()
        assert pool.get("apple", 2) is pool.get("apple", 2)
        assert len(pool) == 1

    def test_distinct_pairs_are_distinct(self):
        pool = VerifierPool()
        assert pool.get("apple", 2) is not pool.get("apple", 3)
        assert pool.get("apple", 2) is not pool.get("grape", 2)
        assert len(pool) == 3

    def test_hit_miss_counters(self):
        pool = VerifierPool()
        pool.get("apple", 2)
        pool.get("apple", 2)
        pool.get("grape", 2)
        assert pool.misses == 2
        assert pool.hits == 1

    def test_lru_eviction_beyond_limit(self):
        pool = VerifierPool(max_verifiers=2)
        pool.get("a", 1)
        pool.get("b", 1)
        pool.get("a", 1)  # refresh 'a' — 'b' becomes LRU
        pool.get("c", 1)  # evicts 'b'
        assert len(pool) == 2
        assert pool.evictions == 1
        first_b = pool.get("b", 1)  # recomputed, not a correctness event
        assert first_b.distance("b") == 0
        assert pool.evictions == 2  # 'a' went this time

    def test_eviction_is_safe_to_recompute(self):
        pool = VerifierPool(max_verifiers=1)
        before = pool.get("apple", 2).distances(WORDS)
        pool.get("grape", 2)  # evicts the 'apple' verifier
        after = pool.get("apple", 2).distances(WORDS)
        assert after == before

    def test_counters_survive_eviction(self):
        pool = VerifierPool(max_verifiers=1)
        pool.get("apple", 2).distances(WORDS)
        computed = pool.counters.computed
        assert computed > 0
        pool.get("grape", 2).distances(WORDS)
        assert pool.counters.computed > computed

    def test_stats_payload(self):
        pool = VerifierPool(max_verifiers=8)
        pool.get("apple", 2).distances(WORDS)
        stats = pool.stats()
        assert stats["verifiers"] == 1
        assert stats["max_verifiers"] == 8
        assert stats["memo_entries"] == len(set(WORDS))
        assert stats["misses"] == 1
        assert stats["kernel"] == pool.kernel.name
        assert stats["computed"] > 0

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            VerifierPool(max_verifiers=0)

    def test_pool_kernel_is_shared_by_verifiers(self):
        from repro.similarity.kernels import ReferenceKernel

        kernel = ReferenceKernel()
        pool = VerifierPool(kernel=kernel)
        assert pool.get("apple", 2).kernel is kernel
