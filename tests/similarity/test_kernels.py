"""Unit tests for the bit-parallel verification kernels."""

import pytest

from repro.core.errors import ConfigError
from repro.similarity import kernels
from repro.similarity.edit_distance import edit_distance, edit_distance_within
from repro.similarity.kernels import (
    KERNEL_ENV,
    MyersKernel,
    MyersQuery,
    ReferenceKernel,
    myers_within,
    numpy_available,
    resolve_kernel,
)
from repro.similarity.verify import BatchVerifier


def pairs_straddling_word_boundary():
    """(a, b) pairs whose query lengths bracket the 64-char block edge."""
    base = "abcdefghij" * 13  # 130 chars
    out = []
    for m in (1, 63, 64, 65, 127, 128, 129):
        a = base[:m]
        out.append((a, a))
        out.append((a, a[:-1] + "z"))
        out.append((a, a[1:]))
        out.append((a, "x" + a))
        out.append((a, a[: m // 2] + "zz" + a[m // 2 :]))
    return out


class TestMyersWithin:
    @pytest.mark.parametrize("d", [0, 1, 2, 3])
    def test_curated_short_pairs(self, d):
        cases = [
            ("", ""), ("", "a"), ("a", ""), ("a", "a"), ("a", "b"),
            ("apple", "apply"), ("apple", "maple"), ("kitten", "sitting"),
            ("abc", "abcabc"), ("zzzz", "aaaa"),
        ]
        for a, b in cases:
            assert myers_within(a, b, d) == edit_distance_within(a, b, d)

    @pytest.mark.parametrize("d", [0, 1, 2, 5])
    def test_word_boundary_pairs(self, d):
        for a, b in pairs_straddling_word_boundary():
            assert myers_within(a, b, d) == edit_distance_within(a, b, d), (
                len(a), len(b), d
            )

    def test_unicode(self):
        cases = [
            ("héllo", "hello"), ("naïve", "naive"), ("日本語", "日本言"),
            ("🙂🙃", "🙂"), ("ß" * 70, "ß" * 68 + "ss"),
        ]
        for a, b in cases:
            for d in (0, 1, 2, 3):
                assert myers_within(a, b, d) == edit_distance_within(a, b, d)

    def test_negative_d_matches_reference_contract(self):
        assert myers_within("same", "same", -1) == 0
        assert myers_within("same", "diff", -1) == 1
        assert edit_distance_within("same", "same", -1) == 0
        assert edit_distance_within("same", "diff", -1) == 1

    def test_sentinel_saturates(self):
        assert myers_within("apple", "zzzzz", 2) == 3
        assert myers_within("a" * 100, "b" * 100, 4) == 5

    def test_exact_value_when_within(self):
        assert myers_within("kitten", "sitting", 5) == edit_distance(
            "kitten", "sitting"
        )

    def test_masks_reused_across_candidates(self):
        state = MyersQuery("portrait of a young woman")
        for text in ("portrait of a young woman", "portrait of a young womn",
                     "portrait of young woman!!"):
            assert state.within(text, 3) == edit_distance_within(
                "portrait of a young woman", text, 3
            )


class TestResolveKernel:
    def test_instance_passthrough(self):
        kernel = ReferenceKernel()
        assert resolve_kernel(kernel) is kernel

    def test_names(self):
        assert resolve_kernel("reference").name == "reference"
        assert isinstance(resolve_kernel("myers"), MyersKernel)
        assert isinstance(resolve_kernel("auto"), MyersKernel)
        assert resolve_kernel(" MYERS ").name in ("myers", "myers+prefilter")

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            resolve_kernel("fastest")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert isinstance(resolve_kernel(None), MyersKernel)
        monkeypatch.setenv(KERNEL_ENV, "reference")
        assert resolve_kernel(None).name == "reference"
        monkeypatch.setenv(KERNEL_ENV, " Myers ")
        assert isinstance(resolve_kernel(None), MyersKernel)

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "quantum")
        with pytest.raises(ConfigError):
            resolve_kernel(None)

    def test_prefilter_gates_on_numpy(self):
        assert MyersKernel(prefilter=True).prefilter == numpy_available()
        assert MyersKernel(prefilter=False).prefilter is False
        assert MyersKernel(prefilter=False).name == "myers"
        if numpy_available():
            assert MyersKernel().name == "myers+prefilter"


class TestKernelBatches:
    CANDIDATES = [
        "apple", "apply", "ample", "maple", "apples", "applet", "appl",
        "aple", "grape", "grapes", "grace", "trace", "track", "crack", "",
        "banana", "band", "bandana", "bananas", "applicable", "application",
        "zzzzz", "qqqqq", "wwwww", "mmmmm",
    ] * 3

    def reference_result(self, query, d):
        return {
            c: edit_distance_within(query, c, d) for c in self.CANDIDATES
        }

    @pytest.mark.parametrize("d", [0, 1, 2, 3])
    def test_flat_path_matches_reference(self, d):
        verifier = BatchVerifier("apple", d, kernel=MyersKernel(prefilter=False))
        assert verifier.distances(self.CANDIDATES) == self.reference_result(
            "apple", d
        )
        assert verifier.counters.batches_flat == 1
        assert verifier.counters.batches_shared == 0

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    @pytest.mark.parametrize("d", [0, 1, 2, 3])
    def test_prefilter_path_matches_reference(self, d):
        verifier = BatchVerifier("apple", d, kernel=MyersKernel(prefilter=True))
        assert verifier.distances(self.CANDIDATES) == self.reference_result(
            "apple", d
        )

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_prefilter_rejections_counted_and_sound(self):
        verifier = BatchVerifier("apple", 1, kernel=MyersKernel(prefilter=True))
        result = verifier.distances(self.CANDIDATES)
        assert verifier.counters.prefilter_rejected > 0
        # Rejections are diagnostics only — values still exact.
        assert result == self.reference_result("apple", 1)
        # Prefilter-rejected candidates never count as computed.
        distinct = len(set(self.CANDIDATES))
        assert verifier.computed < distinct

    def test_shared_fallback_for_long_queries(self):
        query = "x" * 80  # multi-block
        batch = [
            "x" * 79 + suffix for suffix in "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        ] + ["x" * 80, "x" * 81, "y" * 80, "z" * 80, "x" * 78, "x" * 82]
        assert len(set(batch)) >= kernels.SHARED_FALLBACK_MIN_BATCH
        verifier = BatchVerifier(query, 2, kernel=MyersKernel())
        result = verifier.distances(batch)
        assert verifier.counters.batches_shared == 1
        assert result == {
            c: edit_distance_within(query, c, 2) for c in batch
        }

    def test_small_multiblock_batch_stays_flat(self):
        query = "x" * 80
        verifier = BatchVerifier(query, 2, kernel=MyersKernel())
        verifier.distances(["x" * 80, "x" * 79])
        assert verifier.counters.batches_flat == 1

    def test_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        kernel = MyersKernel(prefilter=True)
        assert kernel.prefilter is False
        assert kernel.name == "myers"
        verifier = BatchVerifier("apple", 2, kernel=kernel)
        assert verifier.distances(self.CANDIDATES) == self.reference_result(
            "apple", 2
        )
        assert verifier.counters.prefilter_rejected == 0

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_surrogate_candidates_skip_prefilter_correctly(self):
        # Lone surrogates cannot be UTF-32-encoded; the prefilter must
        # step aside instead of raising, and results stay exact.
        batch = ["appl\ud800", "apple", "apply"] * 4
        verifier = BatchVerifier("apple", 2, kernel=MyersKernel(prefilter=True))
        result = verifier.distances(batch)
        for candidate in set(batch):
            assert result[candidate] == edit_distance_within(
                "apple", candidate, 2
            )

    def test_reference_kernel_uses_shared_path(self):
        verifier = BatchVerifier("apple", 2, kernel=ReferenceKernel())
        verifier.distances(self.CANDIDATES)
        assert verifier.counters.batches_shared == 1
        assert verifier.counters.batches_flat == 0


class TestCounters:
    def test_memo_hits_counted(self):
        verifier = BatchVerifier("apple", 2)
        verifier.distances(["apply", "ample"])
        assert verifier.counters.memo_hits == 0
        verifier.distances(["apply", "ample"])
        assert verifier.counters.memo_hits == 2
        verifier.distance("apply")
        assert verifier.counters.memo_hits == 3

    def test_computed_mirrors_attribute(self):
        verifier = BatchVerifier("apple", 2)
        verifier.distances(["apply", "ample", "zzzzzzzzzzzz"])
        assert verifier.counters.computed == verifier.computed
