"""Unit tests for the q-gram candidate filters."""

from repro.similarity.filters import (
    CountFilter,
    FilterConfig,
    length_filter,
    position_filter,
)
from repro.storage.qgrams import PositionalQGram


class TestElementaryFilters:
    def test_position_filter(self):
        assert position_filter(3, 5, 2)
        assert not position_filter(3, 6, 2)

    def test_length_filter(self):
        assert length_filter(10, 12, 2)
        assert not length_filter(10, 13, 2)


class TestFilterConfig:
    def _grams(self, qpos, qlen, cpos, clen):
        return (
            PositionalQGram("abc", qpos, qlen),
            PositionalQGram("abc", cpos, clen),
        )

    def test_both_filters_pass(self):
        query, candidate = self._grams(2, 10, 3, 11)
        assert FilterConfig().admits(query, candidate, 2)

    def test_position_rejects(self):
        query, candidate = self._grams(0, 10, 5, 10)
        assert not FilterConfig().admits(query, candidate, 2)

    def test_length_rejects(self):
        query, candidate = self._grams(0, 5, 0, 10)
        assert not FilterConfig().admits(query, candidate, 2)

    def test_disabled_position_filter(self):
        query, candidate = self._grams(0, 10, 9, 10)
        config = FilterConfig(use_position=False)
        assert config.admits(query, candidate, 2)

    def test_disabled_length_filter(self):
        query, candidate = self._grams(0, 5, 0, 50)
        config = FilterConfig(use_length=False)
        assert config.admits(query, candidate, 2)

    def test_all_disabled_admits_everything(self):
        query, candidate = self._grams(0, 1, 99, 99)
        config = FilterConfig(use_position=False, use_length=False)
        assert config.admits(query, candidate, 0)


class TestCountFilter:
    def test_admits_candidates_reaching_threshold(self):
        # query length 10, q=3, d=1 -> threshold = max(10, len) - 1.
        counter = CountFilter(query_length=10, q=3, d=1)
        for __ in range(9):
            counter.observe("good", 10)
        counter.observe("bad", 10)
        assert counter.admitted() == ["good"]

    def test_vacuous_threshold_admits_single_hit(self):
        counter = CountFilter(query_length=3, q=3, d=3)
        counter.observe("x", 3)
        assert counter.admitted() == ["x"]

    def test_threshold_uses_candidate_length(self):
        counter = CountFilter(query_length=5, q=3, d=1)
        assert counter.threshold_for(20) == 19

    def test_observed_lists_everything(self):
        counter = CountFilter(query_length=10, q=3, d=1)
        counter.observe("a", 10)
        counter.observe("b", 10)
        assert sorted(counter.observed()) == ["a", "b"]
