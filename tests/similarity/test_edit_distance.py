"""Unit tests for edit distance implementations."""

import pytest

from repro.similarity.edit_distance import (
    edit_distance,
    edit_distance_within,
    within_distance,
)

KNOWN_PAIRS = [
    ("", "", 0),
    ("a", "", 1),
    ("", "abc", 3),
    ("abc", "abc", 0),
    ("kitten", "sitting", 3),
    ("flaw", "lawn", 2),
    ("intention", "execution", 5),
    ("apple", "apply", 1),
    ("apple", "ample", 1),
    ("book", "back", 2),
    ("overlay", "overlap", 1),
]


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", KNOWN_PAIRS)
    def test_known_pairs(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @pytest.mark.parametrize("a,b,expected", KNOWN_PAIRS)
    def test_symmetry(self, a, b, expected):
        assert edit_distance(b, a) == expected


class TestBandedVariant:
    @pytest.mark.parametrize("a,b,expected", KNOWN_PAIRS)
    def test_agrees_inside_band(self, a, b, expected):
        assert edit_distance_within(a, b, expected) == expected
        assert edit_distance_within(a, b, expected + 2) == expected

    @pytest.mark.parametrize("a,b,expected", KNOWN_PAIRS)
    def test_saturates_outside_band(self, a, b, expected):
        if expected > 0:
            assert edit_distance_within(a, b, expected - 1) == expected - 1 + 1

    def test_length_gap_short_circuit(self):
        assert edit_distance_within("ab", "abcdefgh", 3) == 4

    def test_negative_d(self):
        assert edit_distance_within("same", "same", -1) == 0
        assert edit_distance_within("a", "b", -1) == 1

    def test_within_distance_predicate(self):
        assert within_distance("apple", "apply", 1)
        assert not within_distance("apple", "orange", 2)

    def test_band_wide_enough_equals_exact(self):
        words = ["overlay", "overload", "similar", "dissimilar", "peer"]
        for a in words:
            for b in words:
                exact = edit_distance(a, b)
                assert edit_distance_within(a, b, 20) == exact
