"""Unit tests for numeric distance and interval mapping."""

import pytest

from repro.core.errors import QueryError
from repro.similarity.numeric import (
    Interval,
    absolute_distance,
    euclidean_box,
    euclidean_distance,
    similarity_interval,
)


class TestDistances:
    def test_absolute_distance(self):
        assert absolute_distance(3.0, 7.5) == 4.5
        assert absolute_distance(7.5, 3.0) == 4.5

    def test_euclidean_distance(self):
        assert euclidean_distance((0, 0), (3, 4)) == 5.0

    def test_euclidean_dimension_mismatch(self):
        with pytest.raises(QueryError):
            euclidean_distance((1, 2), (1, 2, 3))


class TestInterval:
    def test_contains(self):
        interval = Interval(1.0, 2.0)
        assert interval.contains(1.0)
        assert interval.contains(2.0)
        assert not interval.contains(2.1)

    def test_width(self):
        assert Interval(1.0, 3.5).width() == 2.5

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Interval(2.0, 1.0)

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)

    def test_intersect_disjoint(self):
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_union_bounds(self):
        assert Interval(0, 1).union_bounds(Interval(5, 6)) == Interval(0, 6)


class TestSimilarityMapping:
    def test_similarity_interval(self):
        assert similarity_interval(10.0, 2.0) == Interval(8.0, 12.0)

    def test_zero_distance(self):
        assert similarity_interval(5.0, 0.0) == Interval(5.0, 5.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(QueryError):
            similarity_interval(5.0, -1.0)

    def test_euclidean_box_covers_ball(self):
        box = euclidean_box((1.0, 2.0), 3.0)
        assert box == [Interval(-2.0, 4.0), Interval(-1.0, 5.0)]

    def test_euclidean_box_negative_rejected(self):
        with pytest.raises(QueryError):
            euclidean_box((0.0,), -0.5)
