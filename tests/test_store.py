"""Integration tests for the VerticalStore facade."""


from repro.core.config import RankFunction, SimilarityStrategy, StoreConfig
from repro.core.store import VerticalStore
from repro.storage.schema import RelationSchema
from repro.storage.triple import Triple

from tests.conftest import LEN_ATTR, TEXT_ATTR, WORDS


class TestBuildAndInsert:
    def test_build_empty(self):
        store = VerticalStore.build(8)
        assert store.n_peers == 8

    def test_insert_then_query(self):
        store = VerticalStore.build(16, config=StoreConfig(seed=2))
        store.insert([Triple("x:1", "t:name", "overlay")])
        hits = store.select("t:name", "overlay")
        assert [m.oid for m in hits] == ["x:1"]

    def test_insert_record(self):
        store = VerticalStore.build(16, config=StoreConfig(seed=2))
        store.insert_record("c:1", {"name": "bmw", "hp": 300}, namespace="car")
        assert store.lookup("c:1")

    def test_insert_rows(self):
        store = VerticalStore.build(16, config=StoreConfig(seed=2))
        schema = RelationSchema("w", ("t",))
        store.insert_rows(schema, [{"t": "alpha"}, {"t": "beta"}])
        assert store.select("w:t", "alpha")

    def test_strategy_string_accepted(self):
        store = VerticalStore.build(8, strategy="qsample")
        assert store.ctx.strategy is SimilarityStrategy.QSAMPLE


class TestOperatorFacade:
    def test_similar(self, word_store):
        result = word_store.similar("apple", TEXT_ATTR, 1)
        assert any(m.matched == "apple" for m in result.matches)

    def test_similar_strategy_override(self, word_store):
        naive = word_store.similar("apple", TEXT_ATTR, 1, strategy="strings")
        default = word_store.similar("apple", TEXT_ATTR, 1)
        assert {m.matched for m in naive.matches} == {
            m.matched for m in default.matches
        }

    def test_similar_numeric(self, word_store):
        matches = word_store.similar_numeric(LEN_ATTR, 5.0, 0.0)
        assert {m.value_of(TEXT_ATTR) for m in matches} == {
            w for w in WORDS if len(w) == 5
        }

    def test_sim_join_anchored(self, word_store):
        result = word_store.sim_join_anchored(TEXT_ATTR, "apple", TEXT_ATTR, 1)
        assert any(p.right.matched == "apply" for p in result.pairs)

    def test_top_n(self, word_store):
        result = word_store.top_n(LEN_ATTR, 3, RankFunction.MAX)
        assert len(result.matches) == 3

    def test_top_n_rank_string(self, word_store):
        result = word_store.top_n(LEN_ATTR, 2, "min")
        assert [m.distance for m in result.matches] == sorted(
            float(len(w)) for w in WORDS
        )[:2]

    def test_top_n_string(self, word_store):
        result = word_store.top_n_string(TEXT_ATTR, "apple", 3)
        assert result.matches[0].matched == "apple"

    def test_keyword(self, word_store):
        triples = word_store.keyword("banana")
        assert [(t.attribute, t.value) for t in triples] == [
            (TEXT_ATTR, "banana")
        ]

    def test_lookup(self, word_store):
        triples = word_store.lookup("w:0000")
        assert {t.attribute for t in triples} == {TEXT_ATTR, LEN_ATTR}


class TestCostLedger:
    def test_last_cost_and_stats(self, word_store):
        queries_before = word_store.stats.queries
        word_store.similar("apple", TEXT_ATTR, 1)
        assert word_store.last_cost().messages > 0
        assert word_store.stats.queries == queries_before + 1

    def test_explain_does_not_execute(self, word_store):
        messages_before = word_store.network.tracer.message_count
        text = word_store.explain(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') < 2) }"
        )
        assert "string_similarity" in text
        assert word_store.network.tracer.message_count == messages_before
