"""Unit tests for the VQL shell's command dispatch."""

import pytest

from repro.shell import Shell


@pytest.fixture(scope="module")
def shell():
    s = Shell(n_peers=24, seed=1)
    s.execute(".load words 60")
    return s


class TestCommands:
    def test_help(self, shell):
        assert ".load" in shell.execute(".help")

    def test_load_reports_network(self, shell):
        output = shell.execute(".load words 60")
        assert "24 peers" in output
        assert "60 words" in output

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute(".bogus")

    def test_unknown_dataset(self, shell):
        assert "unknown dataset" in shell.execute(".load planets")

    def test_strategy_get_and_set(self, shell):
        assert "strategy:" in shell.execute(".strategy")
        assert "qsamples" in shell.execute(".strategy qsamples")
        shell.execute(".strategy qgrams")

    def test_peers_rebuild(self):
        s = Shell(n_peers=16, seed=2)
        s.execute(".load words 40")
        output = s.execute(".peers 32")
        assert "32 peers" in output

    def test_analyze(self, shell):
        output = shell.execute(".analyze word:text")
        assert "word:text" in output
        assert "rows" in output

    def test_explain(self, shell):
        output = shell.execute(
            ".explain SELECT ?w WHERE { (?o,word:text,?w) "
            "FILTER (dist(?w,'apple') <= 1) }"
        )
        assert "string_similarity" in output

    def test_stats(self, shell):
        assert "queries" in shell.execute(".stats")

    def test_quit_raises_system_exit(self, shell):
        with pytest.raises(SystemExit):
            shell.execute(".quit")


class TestQueries:
    def test_query_executes(self, shell):
        output = shell.execute(
            "SELECT ?w WHERE { (?o,word:text,?w) } LIMIT 3"
        )
        assert "3 rows" in output
        assert "messages" in output

    def test_syntax_error_reported_not_raised(self, shell):
        output = shell.execute("SELECT bogus syntax {{{")
        assert output.startswith("error:")

    def test_empty_line(self, shell):
        assert shell.execute("   ") == ""
