"""Unit tests for replication analysis and churn injection."""

import pytest

from repro.core.config import StoreConfig
from repro.overlay.churn import ChurnController
from repro.overlay.replication import (
    audit_replicas,
    network_availability,
    partition_availability,
    repair_partition,
    replicas_needed,
)
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, build_word_network


@pytest.fixture()
def replicated_network():
    return build_word_network(n_peers=32, config=StoreConfig(seed=4, replication=2))


class TestReplicationAudit:
    def test_fresh_network_is_consistent(self, replicated_network):
        report = audit_replicas(replicated_network)
        assert report.consistent
        assert report.replication == 2

    def test_divergence_detected_and_repaired(self, replicated_network):
        network = replicated_network
        triple = Triple("w:7777", TEXT_ATTR, "quorum")
        entry = next(iter(network.entry_factory.entries_for(triple)))
        partition = network.partition_for(entry.key)
        # Write to only one replica: divergence.
        network.peer(partition.peer_ids[0]).store.add(entry)
        report = audit_replicas(network)
        assert not report.consistent
        assert partition.index in report.divergent_partitions
        copied = repair_partition(network, partition.index)
        assert copied >= 1
        assert audit_replicas(network).consistent


class TestAvailabilityMath:
    def test_partition_availability(self):
        assert partition_availability(1, 0.1) == pytest.approx(0.9)
        assert partition_availability(3, 0.1) == pytest.approx(1 - 1e-3)

    def test_network_availability_decreases_with_partitions(self):
        one = network_availability(1, 2, 0.2)
        many = network_availability(100, 2, 0.2)
        assert many < one

    def test_replicas_needed(self):
        assert replicas_needed(0.0, 0.999) == 1
        assert replicas_needed(0.1, 0.999) == 3

    def test_replicas_needed_invalid(self):
        with pytest.raises(ValueError):
            replicas_needed(0.1, 1.5)
        with pytest.raises(ValueError):
            replicas_needed(1.0, 0.9)

    def test_partition_availability_invalid_probability(self):
        with pytest.raises(ValueError):
            partition_availability(2, 1.5)


class TestChurn:
    def test_fail_fraction_protects_partitions(self, replicated_network):
        controller = ChurnController(replicated_network, seed=1)
        report = controller.fail_fraction(0.5)
        assert report.all_partitions_reachable
        assert report.online_peers >= replicated_network.n_partitions
        controller.recover_all()

    def test_queries_survive_churn(self, replicated_network):
        network = replicated_network
        controller = ChurnController(network, seed=2)
        controller.fail_fraction(0.4)
        try:
            key = network.codec.attr_value_key(TEXT_ATTR, "apple")
            start = network.random_peer_id()
            entries, __ = network.router.retrieve(key, start)
            values = {e.triple.value for e in entries}
            assert "apple" in values
        finally:
            controller.recover_all()

    def test_unprotected_failures_can_darken_partitions(self, replicated_network):
        controller = ChurnController(replicated_network, seed=3)
        report = controller.fail_fraction(1.0, protect_partitions=False)
        assert not report.all_partitions_reachable
        controller.recover_all()

    def test_fail_specific_peers(self, replicated_network):
        controller = ChurnController(replicated_network, seed=4)
        report = controller.fail_peers([0, 1])
        assert 0 in report.failed_peer_ids
        assert not replicated_network.peer(0).online
        assert controller.recover_all() == 2

    def test_recover_all_counts(self, replicated_network):
        controller = ChurnController(replicated_network, seed=5)
        controller.fail_fraction(0.3)
        recovered = controller.recover_all()
        assert recovered > 0
        assert all(p.online for p in replicated_network.peers)

    def test_invalid_fraction_rejected(self, replicated_network):
        controller = ChurnController(replicated_network, seed=6)
        from repro.core.errors import OverlayError

        with pytest.raises(OverlayError):
            controller.fail_fraction(1.5)
