"""Unit tests for replication analysis and churn injection."""

import pytest

from repro.core.config import StoreConfig
from repro.core.errors import OverlayError
from repro.overlay.churn import ChurnController
from repro.overlay.replication import (
    audit_replicas,
    entry_signature,
    network_availability,
    partition_availability,
    repair_partition,
    replicas_needed,
)
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, build_word_network


@pytest.fixture()
def replicated_network():
    return build_word_network(n_peers=32, config=StoreConfig(seed=4, replication=2))


class TestReplicationAudit:
    def test_fresh_network_is_consistent(self, replicated_network):
        report = audit_replicas(replicated_network)
        assert report.consistent
        assert report.replication == 2

    def test_divergence_detected_and_repaired(self, replicated_network):
        network = replicated_network
        triple = Triple("w:7777", TEXT_ATTR, "quorum")
        entry = next(iter(network.entry_factory.entries_for(triple)))
        partition = network.partition_for(entry.key)
        # Write to only one replica: divergence.
        network.peer(partition.peer_ids[0]).store.add(entry)
        report = audit_replicas(network)
        assert not report.consistent
        assert partition.index in report.divergent_partitions
        copied = repair_partition(network, partition.index)
        assert copied >= 1
        assert audit_replicas(network).consistent

    def test_signature_distinguishes_gram_positions(self, replicated_network):
        """Repeated q-grams of one string repair per position (the
        signature includes ``position``; a position-less key would
        collapse them and leave the audit divergent after repair)."""
        network = replicated_network
        triple = Triple("w:8888", TEXT_ATTR, "banana")
        entries = list(network.entry_factory.entries_for(triple))
        signatures = {entry_signature(e) for e in entries}
        assert len(signatures) == len(entries), "positions must not collapse"
        # Write the whole object to one replica of each partition only.
        touched = set()
        for entry in entries:
            partition = network.partition_for(entry.key)
            network.peer(partition.peer_ids[0]).store.add(entry)
            touched.add(partition.index)
        report = audit_replicas(network)
        assert set(report.divergent_partitions) <= touched
        for index in report.divergent_partitions:
            repair_partition(network, index)
        assert audit_replicas(network).consistent
        # Every replica now holds all per-position gram entries.
        for entry in entries:
            partition = network.partition_for(entry.key)
            for peer_id in partition.peer_ids:
                present = {
                    entry_signature(e)
                    for e in network.peer(peer_id).store.lookup(entry.key)
                }
                assert entry_signature(entry) in present

    def test_repair_charges_messages_when_asked(self, replicated_network):
        network = replicated_network
        triple = Triple("w:9999", TEXT_ATTR, "charged")
        entry = next(iter(network.entry_factory.entries_for(triple)))
        partition = network.partition_for(entry.key)
        network.peer(partition.peer_ids[0]).store.add(entry)
        before = network.tracer.snapshot()
        copied = repair_partition(network, partition.index, charge_messages=True)
        delta = before.delta(network.tracer.snapshot())
        assert copied >= 1
        assert delta.by_phase.get("repair", 0) >= 1
        assert delta.payload_bytes > 0

    def test_silent_repair_charges_nothing(self, replicated_network):
        network = replicated_network
        triple = Triple("w:9998", TEXT_ATTR, "silent")
        entry = next(iter(network.entry_factory.entries_for(triple)))
        partition = network.partition_for(entry.key)
        network.peer(partition.peer_ids[0]).store.add(entry)
        before = network.tracer.snapshot()
        repair_partition(network, partition.index)
        assert before.delta(network.tracer.snapshot()).messages == 0


class TestAvailabilityMath:
    def test_partition_availability(self):
        assert partition_availability(1, 0.1) == pytest.approx(0.9)
        assert partition_availability(3, 0.1) == pytest.approx(1 - 1e-3)

    def test_network_availability_decreases_with_partitions(self):
        one = network_availability(1, 2, 0.2)
        many = network_availability(100, 2, 0.2)
        assert many < one

    def test_replicas_needed(self):
        assert replicas_needed(0.0, 0.999) == 1
        assert replicas_needed(0.1, 0.999) == 3

    def test_replicas_needed_invalid(self):
        with pytest.raises(ValueError):
            replicas_needed(0.1, 1.5)
        with pytest.raises(ValueError):
            replicas_needed(1.0, 0.9)

    def test_partition_availability_invalid_probability(self):
        with pytest.raises(ValueError):
            partition_availability(2, 1.5)


class TestChurn:
    def test_fail_fraction_protects_partitions(self, replicated_network):
        controller = ChurnController(replicated_network, seed=1)
        report = controller.fail_fraction(0.5)
        assert report.all_partitions_reachable
        assert report.online_peers >= replicated_network.n_partitions
        controller.recover_all()

    def test_queries_survive_churn(self, replicated_network):
        network = replicated_network
        controller = ChurnController(network, seed=2)
        controller.fail_fraction(0.4)
        try:
            key = network.codec.attr_value_key(TEXT_ATTR, "apple")
            start = network.random_peer_id()
            entries, __ = network.router.retrieve(key, start)
            values = {e.triple.value for e in entries}
            assert "apple" in values
        finally:
            controller.recover_all()

    def test_unprotected_failures_can_darken_partitions(self, replicated_network):
        controller = ChurnController(replicated_network, seed=3)
        report = controller.fail_fraction(1.0, protect_partitions=False)
        assert not report.all_partitions_reachable
        controller.recover_all()

    def test_fail_specific_peers(self, replicated_network):
        controller = ChurnController(replicated_network, seed=4)
        report = controller.fail_peers([0, 1])
        assert 0 in report.failed_peer_ids
        assert not replicated_network.peer(0).online
        assert controller.recover_all() == 2

    def test_recover_all_counts(self, replicated_network):
        controller = ChurnController(replicated_network, seed=5)
        controller.fail_fraction(0.3)
        recovered = controller.recover_all()
        assert recovered > 0
        assert all(p.online for p in replicated_network.peers)

    def test_invalid_fraction_rejected(self, replicated_network):
        controller = ChurnController(replicated_network, seed=6)

        with pytest.raises(OverlayError):
            controller.fail_fraction(1.5)

    def test_fail_peers_rejects_unknown_ids(self, replicated_network):
        controller = ChurnController(replicated_network, seed=7)
        with pytest.raises(OverlayError) as excinfo:
            controller.fail_peers([0, replicated_network.n_peers + 5])
        assert excinfo.value.peer_id == replicated_network.n_peers + 5
        # Validation happens before any peer goes down.
        assert replicated_network.peer(0).online

    def test_fail_peers_skips_already_offline(self, replicated_network):
        controller = ChurnController(replicated_network, seed=8)
        try:
            first = controller.fail_peers([3])
            assert first.failed_peer_ids == [3]
            second = controller.fail_peers([3, 3, 5])
            # 3 was already down and the duplicate is deduped: only 5 counts.
            assert second.failed_peer_ids == [5]
        finally:
            controller.recover_all()

    def test_fail_peers_can_protect_partitions(self, replicated_network):
        network = replicated_network
        controller = ChurnController(network, seed=9)
        partition = network.partition(0)
        try:
            report = controller.fail_peers(
                list(partition.peer_ids), protect_partitions=True
            )
            # The last replica stays online: the partition never darkens.
            assert len(report.failed_peer_ids) == len(partition.peer_ids) - 1
            assert report.all_partitions_reachable
        finally:
            controller.recover_all()
