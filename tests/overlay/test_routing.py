"""Unit tests for prefix routing (Algorithm 1) and its variants."""

import pytest

from repro.core.config import StoreConfig
from repro.core.errors import PartitionUnreachableError

from tests.conftest import TEXT_ATTR, build_word_network


@pytest.fixture(scope="module")
def network():
    return build_word_network(n_peers=64)


class TestRoute:
    def test_reaches_responsible_peer(self, network):
        codec = network.codec
        key = codec.attr_value_key(TEXT_ATTR, "apple")
        for start in range(0, network.n_peers, 7):
            peer = network.router.route(key, start)
            assert peer.responsible_for(key)

    def test_logarithmic_hops(self, network):
        codec = network.codec
        key = codec.attr_value_key(TEXT_ATTR, "cherry")
        network.tracer.reset()
        trials = 20
        for start in range(trials):
            network.router.route(key, start % network.n_peers)
        mean_hops = network.tracer.message_count / trials
        # Expected 0.5 * log2(64) = 3; allow generous slack.
        assert mean_hops <= 8

    def test_route_from_responsible_peer_is_free(self, network):
        codec = network.codec
        key = codec.attr_value_key(TEXT_ATTR, "apple")
        owner = network.partition_for(key).peer_ids[0]
        network.tracer.reset()
        peer = network.router.route(key, owner)
        assert peer.peer_id == owner
        assert network.tracer.message_count == 0


class TestRetrieve:
    def test_exact_lookup_finds_word(self, network):
        codec = network.codec
        key = codec.attr_value_key(TEXT_ATTR, "banana")
        entries, __ = network.router.retrieve(key, 0)
        values = {e.triple.value for e in entries if e.kind.value == "attr_value"}
        assert "banana" in values

    def test_prefix_retrieve_spans_partitions(self, network):
        # Truncated attribute prefixes may collide across attributes, so
        # the attribute is re-checked — as peers do (Section 3).
        prefix = network.codec.attr_prefix(TEXT_ATTR)
        entries, __ = network.router.retrieve(prefix, 0)
        values = {
            e.triple.value
            for e in entries
            if e.kind.value == "attr_value" and e.triple.attribute == TEXT_ATTR
        }
        from tests.conftest import WORDS

        assert values == set(WORDS)

    def test_missing_key_returns_empty(self, network):
        key = network.codec.attr_value_key(TEXT_ATTR, "zzzzzz")
        entries, __ = network.router.retrieve(key, 0)
        matching = [e for e in entries if e.triple.value == "zzzzzz"]
        assert matching == []


class TestMulticast:
    def test_contacts_every_partition_once(self, network):
        prefix = ""
        network.tracer.reset()
        peers = network.router.multicast_prefix(prefix, 0)
        partitions = {network.partition_for(p.path).index for p in peers}
        assert len(peers) == network.n_partitions
        assert len(partitions) == network.n_partitions

    def test_forward_messages_bounded(self, network):
        network.tracer.reset()
        network.router.multicast_prefix("", 0)
        forwards = network.tracer.counts_by_type["forward"]
        assert forwards == network.n_partitions - 1


class TestRouteMany:
    def test_batches_by_partition(self, network):
        codec = network.codec
        keys = [codec.attr_value_key(TEXT_ATTR, w) for w in ("apple", "apply", "band")]
        network.tracer.reset()
        answers = network.router.route_many(keys, 0)
        assert set(answers) == set(keys)
        for key, peer in answers.items():
            assert peer.responsible_for(key)

    def test_batching_beats_individual_routing(self, network):
        codec = network.codec
        from tests.conftest import WORDS

        keys = [codec.attr_value_key(TEXT_ATTR, w) for w in WORDS]
        network.tracer.reset()
        network.router.route_many(keys, 0)
        batched = network.tracer.message_count
        network.tracer.reset()
        for key in keys:
            network.router.route(key, 0)
        individual = network.tracer.message_count
        assert batched < individual

    def test_empty_batch(self, network):
        assert network.router.route_many([], 0) == {}

    def test_retrieve_many_returns_entries(self, network):
        codec = network.codec
        keys = [codec.attr_value_key(TEXT_ATTR, "apple")]
        answers = network.router.retrieve_many(keys, 0)
        values = {e.triple.value for e in answers[keys[0]]}
        assert "apple" in values


class TestFailureHandling:
    def test_routing_survives_dead_reference(self):
        config = StoreConfig(seed=9, replication=2)
        network = build_word_network(n_peers=32, config=config)
        key = network.codec.attr_value_key(TEXT_ATTR, "apple")
        target = network.partition_for(key)
        # Kill one replica of the target partition; lookups must still work.
        network.peer(target.peer_ids[0]).online = False
        peer = network.router.route(key, network.peer(0).peer_id)
        assert peer.responsible_for(key)
        assert peer.online

    def test_unreachable_partition_raises(self):
        config = StoreConfig(seed=9)
        network = build_word_network(n_peers=16, config=config)
        key = network.codec.attr_value_key(TEXT_ATTR, "apple")
        target = network.partition_for(key)
        for peer_id in target.peer_ids:
            network.peer(peer_id).online = False
        start = next(
            p.peer_id
            for p in network.peers
            if p.online and not p.responsible_for(key)
        )
        with pytest.raises(PartitionUnreachableError):
            network.router.route(key, start)

    def test_offline_initiator_uses_replica(self):
        config = StoreConfig(seed=9, replication=2)
        network = build_word_network(n_peers=32, config=config)
        network.peer(0).online = False
        key = network.codec.attr_value_key(TEXT_ATTR, "apple")
        peer = network.router.route(key, 0)
        assert peer.responsible_for(key)
