"""Unit tests for the fault-injected transport and degraded queries."""

import pytest

from repro.core.config import StoreConfig
from repro.core.errors import (
    ConfigError,
    OverlayError,
    PartitionUnreachableError,
    RoutingError,
)
from repro.engine import QueryEngine
from repro.overlay.churn import ChurnController
from repro.overlay.faults import (
    Completeness,
    DeliveryOutcome,
    FaultInjector,
    FaultMode,
    FaultPlan,
    FaultSession,
    RetryPolicy,
)
from repro.storage.indexing import EntryKind

from tests.conftest import TEXT_ATTR, WORDS, word_triples


def build_engine(**config_overrides) -> QueryEngine:
    options = {"seed": 7, "replication": 3}
    options.update(config_overrides)
    return QueryEngine.build(
        n_peers=32, triples=word_triples(), config=StoreConfig(**options)
    )


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop
        assert FaultPlan.none().is_noop

    def test_lossy_plan_is_active(self):
        plan = FaultPlan.lossy(0.25, seed=3)
        assert not plan.is_noop
        assert plan.drop_probability == 0.25
        assert not FaultInjector(plan).active is False or True  # injector builds

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(drop_probability=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(link_latency=-1.0)
        with pytest.raises(ConfigError):
            FaultPlan(unavailable_windows=((0, 5, 2),))  # end before start

    def test_mode_from_name(self):
        assert FaultMode.from_name("strict") is FaultMode.STRICT
        assert FaultMode.from_name("degraded") is FaultMode.DEGRADED
        assert FaultMode.from_name(FaultMode.DEGRADED) is FaultMode.DEGRADED
        with pytest.raises(ConfigError):
            FaultMode.from_name("lenient")


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=0.1, backoff_factor=2.0, max_backoff=0.5)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(retry_budget=-1)


class TestInjector:
    def test_noop_plan_never_activates(self):
        injector = FaultInjector(FaultPlan.none())
        assert not injector.active

    def test_seeded_drops_are_deterministic(self):
        outcomes_a = [
            FaultInjector(FaultPlan.lossy(0.5, seed=9)).attempt(0, 1)
            for __ in range(1)
        ]
        injector_b = FaultInjector(FaultPlan.lossy(0.5, seed=9))
        assert injector_b.attempt(0, 1) == outcomes_a[0]

    def test_unavailability_window_on_attempt_clock(self):
        # Half-open [start, end) on the attempt clock, which ticks
        # before the check: attempts 1 and 2 fall inside (1, 3).
        plan = FaultPlan(unavailable_windows=((1, 1, 3),), seed=0)
        injector = FaultInjector(plan)
        assert injector.attempt(0, 1) is DeliveryOutcome.UNAVAILABLE  # clock 1
        assert injector.attempt(0, 1) is DeliveryOutcome.UNAVAILABLE  # clock 2
        assert injector.attempt(0, 1) is DeliveryOutcome.DELIVERED  # clock 3

    def test_slow_links_override_default_latency(self):
        plan = FaultPlan(slow_links=((0, 1, 0.25),), link_latency=0.01)
        injector = FaultInjector(plan)
        assert injector.link_latency(0, 1) == pytest.approx(0.25)
        assert injector.link_latency(1, 0) == pytest.approx(0.01)


class TestSessionCompleteness:
    def test_empty_session_is_complete(self):
        session = FaultSession(retry_budget_left=8)
        completeness = session.completeness()
        assert completeness.fraction == 1.0
        assert not completeness.is_partial

    def test_dark_mass_uses_partition_spans(self):
        session = FaultSession(retry_budget_left=8)

        class P:  # minimal partition stand-in
            def __init__(self, index, path):
                self.index, self.path = index, path

        session.record_target(P(0, "00"))  # mass 1/4
        session.record_target(P(1, "01"))  # mass 1/4
        session.record_dark(P(1, "01"))
        completeness = session.completeness()
        assert completeness.fraction == pytest.approx(0.5)
        assert completeness.dark_partitions == (1,)
        assert completeness.is_partial

    def test_dropped_candidates_mark_partial(self):
        complete = Completeness.complete()
        assert not complete.is_partial
        session = FaultSession(retry_budget_left=8)
        session.dropped_candidates = 3
        assert session.completeness().is_partial


class TestEngineFaultWiring:
    def test_fault_mode_toggle(self):
        engine = build_engine()
        assert engine.fault_mode == "strict"
        engine.fault_mode = "degraded"
        assert engine.fault_mode == "degraded"
        with pytest.raises(ConfigError):
            engine.fault_mode = "bogus"

    def test_healthy_engine_reports_no_completeness(self):
        engine = build_engine()
        engine.similar("apple", TEXT_ATTR, 1)
        assert engine.last_cost().completeness is None

    def test_noop_plan_reports_no_completeness(self):
        engine = build_engine()
        engine.install_faults(FaultPlan.none(), mode="degraded")
        engine.similar("apple", TEXT_ATTR, 1)
        assert engine.last_cost().completeness is None

    def test_retry_phase_charged_under_loss(self):
        engine = build_engine()
        engine.install_faults(FaultPlan.lossy(0.15, seed=2), mode="degraded")
        retry_total = 0
        for word in WORDS[:8]:
            engine.similar(word, TEXT_ATTR, 1)
            retry_total += engine.last_cost().by_phase.get("retry", 0)
        assert retry_total > 0
        completeness = engine.last_cost().completeness
        assert completeness is not None
        assert completeness.retries + completeness.dropped_messages >= 0

    def test_lossy_but_fully_replicated_stays_complete(self):
        """Acceptance: 40% churn with protection + k=3 keeps answers whole."""
        engine = build_engine()
        engine.install_faults(FaultPlan.lossy(0.05, seed=9), mode="degraded")
        ChurnController(engine.network, seed=2).fail_fraction(
            0.4, protect_partitions=True
        )
        for word in WORDS[:8]:
            engine.similar(word, TEXT_ATTR, 1)
            assert engine.last_cost().completeness.fraction == 1.0


def _dark_oid(engine, dark_index):
    partition = engine.network.partition(dark_index)
    store = engine.network.peer(partition.peer_ids[0]).store
    return next(
        (e.triple.oid for e in store if e.kind is EntryKind.OID), None
    )


class TestDegradedQueries:
    def test_hard_partition_loss_yields_partial_results(self):
        """Acceptance: dark partitions -> partial answers + accurate record."""
        engine = build_engine()
        engine.install_faults(FaultPlan.lossy(0.02, seed=5), mode="degraded")
        churn = ChurnController(engine.network, seed=1)
        report = churn.fail_fraction(0.5, protect_partitions=False)
        assert report.dark_partitions, "scenario needs at least one dark partition"
        dark_index = report.dark_partitions[0]
        oid = _dark_oid(engine, dark_index)
        assert oid is not None
        result = engine.lookup(oid)
        completeness = engine.last_cost().completeness
        assert result == ()
        assert completeness.fraction < 1.0
        assert dark_index in completeness.dark_partitions

    def test_strict_mode_raises_on_dark_partition(self):
        engine = build_engine()
        engine.install_faults(FaultPlan.none(), mode="strict")
        # Force activity so the injector path runs: tiny loss, strict.
        engine.install_faults(FaultPlan.lossy(0.01, seed=5), mode="strict")
        churn = ChurnController(engine.network, seed=1)
        report = churn.fail_fraction(0.5, protect_partitions=False)
        assert report.dark_partitions
        oid = _dark_oid(engine, report.dark_partitions[0])
        with pytest.raises((PartitionUnreachableError, RoutingError)) as excinfo:
            engine.lookup(oid)
        error = excinfo.value
        assert (
            error.partition_index is not None
            or error.peer_id is not None
            or error.partition_path is not None
        )

    def test_degraded_naive_broadcast_skips_dark_region(self):
        engine = build_engine()
        engine.install_faults(FaultPlan.lossy(0.02, seed=5), mode="degraded")
        # Darken the attribute region's first partition explicitly.
        prefix = engine.network.codec.attr_prefix(TEXT_ATTR)
        region = engine.network.partitions_under(prefix)
        churn = ChurnController(engine.network, seed=0)
        churn.fail_peers(list(region[0].peer_ids), protect_partitions=False)
        engine.similar("apple", TEXT_ATTR, 1, strategy="strings")
        completeness = engine.last_cost().completeness
        assert region[0].index in completeness.dark_partitions
        assert completeness.fraction < 1.0


class TestBitIdentity:
    """Acceptance property: empty plan == no injector, bit for bit."""

    def _series(self, install_noop: bool):
        engine = build_engine()
        if install_noop:
            engine.install_faults(FaultPlan.none(), mode="degraded")
        series = []
        for word in WORDS:
            for strategy in ("qgrams", "strings", "qsamples"):
                result = engine.similar(word, TEXT_ATTR, 1, strategy=strategy)
                cost = engine.last_cost()
                series.append(
                    (
                        strategy,
                        tuple(m.oid for m in result.matches),
                        cost.messages,
                        cost.payload_bytes,
                        tuple(sorted(cost.by_type.items())),
                        tuple(sorted(cost.by_phase.items())),
                    )
                )
        join = engine.sim_join_anchored(TEXT_ATTR, "apple", TEXT_ATTR, 2)
        cost = engine.last_cost()
        series.append(("join", len(join.pairs), cost.messages, cost.payload_bytes))
        return series

    def test_empty_plan_is_bit_identical_to_direct_path(self):
        assert self._series(False) == self._series(True)


class TestStructuredOverlayErrors:
    def test_overlay_error_carries_context(self):
        error = OverlayError("boom", partition_index=4, partition_path="0100", peer_id=9)
        assert error.partition_index == 4
        assert error.partition_path == "0100"
        assert error.peer_id == 9

    def test_context_defaults_to_none(self):
        error = PartitionUnreachableError("dark")
        assert error.partition_index is None
        assert error.peer_id is None

    def test_no_online_replica_raise_carries_partition(self):
        engine = build_engine()
        partition = engine.network.partition(0)
        for peer_id in partition.peer_ids:
            engine.network.peer(peer_id).online = False
        with pytest.raises(PartitionUnreachableError) as excinfo:
            engine.network.router._live_replica(partition)
        assert excinfo.value.partition_index == 0
        assert excinfo.value.partition_path == partition.path
        for peer_id in partition.peer_ids:
            engine.network.peer(peer_id).online = True
