"""Unit tests for shower range queries."""

import pytest

from repro.core.errors import RoutingError
from repro.overlay.range_query import range_query
from repro.storage.indexing import EntryKind

from tests.conftest import LEN_ATTR, WORDS, build_word_network


@pytest.fixture(scope="module")
def network():
    return build_word_network(n_peers=32)


def _len_range(network, lo, hi, start=0, collect=True):
    lo_key, hi_key = network.codec.attr_value_range(LEN_ATTR, lo, hi)
    return range_query(
        network.router, lo_key, hi_key, start, collect_results=collect
    )


class TestRangeQuery:
    def test_finds_exactly_in_range_values(self, network):
        outcome = _len_range(network, 5.0, 6.0)
        values = sorted(
            e.triple.value
            for e in outcome.entries
            if e.kind is EntryKind.ATTR_VALUE and e.triple.attribute == LEN_ATTR
        )
        expected = sorted(len(w) for w in WORDS if 5 <= len(w) <= 6)
        assert values == expected

    def test_narrow_range_touches_few_partitions(self, network):
        narrow = _len_range(network, 5.0, 5.0)
        wide = _len_range(network, 1.0, 1000.0)
        assert narrow.partitions_touched <= wide.partitions_touched

    def test_contacted_peers_cover_partitions(self, network):
        outcome = _len_range(network, 4.0, 10.0)
        assert len(outcome.contacted_peer_ids) == outcome.partitions_touched

    def test_result_messages_charged(self, network):
        network.tracer.reset()
        _len_range(network, 4.0, 20.0)
        assert network.tracer.counts_by_type["result"] > 0
        assert network.tracer.payload_bytes > 0

    def test_collect_results_off_charges_no_results(self, network):
        network.tracer.reset()
        _len_range(network, 4.0, 20.0, collect=False)
        assert network.tracer.counts_by_type["result"] == 0

    def test_rejects_inverted_range(self, network):
        lo_key, hi_key = network.codec.attr_value_range(LEN_ATTR, 4.0, 20.0)
        with pytest.raises(RoutingError):
            range_query(network.router, hi_key, lo_key, 0)

    def test_rejects_mismatched_widths(self, network):
        with pytest.raises(RoutingError):
            range_query(network.router, "0101", "01011", 0)

    def test_empty_region_returns_nothing(self, network):
        outcome = _len_range(network, 900.0, 901.0)
        values = [
            e
            for e in outcome.entries
            if e.kind is EntryKind.ATTR_VALUE and e.triple.attribute == LEN_ATTR
        ]
        assert values == []
