"""Unit tests for dynamic membership (joins, leaves, merges)."""

import pytest

from repro.core.config import StoreConfig
from repro.core.errors import OverlayError
from repro.overlay import trie
from repro.overlay.membership import MembershipManager
from repro.storage.indexing import EntryKind

from tests.conftest import TEXT_ATTR, WORDS, build_word_network


def all_words_reachable(network) -> bool:
    start = network.random_peer_id()
    for word in WORDS:
        key = network.codec.attr_value_key(TEXT_ATTR, word)
        entries, __ = network.router.retrieve(key, start)
        found = {
            e.triple.value
            for e in entries
            if e.kind is EntryKind.ATTR_VALUE and e.triple.attribute == TEXT_ATTR
        }
        if word not in found:
            return False
    return True


class TestJoin:
    def test_join_grows_network(self):
        network = build_word_network(n_peers=16)
        manager = MembershipManager(network)
        peer = manager.join()
        assert network.n_peers == 17
        assert peer.peer_id == 16

    def test_cover_stays_valid_after_joins(self):
        network = build_word_network(n_peers=8)
        manager = MembershipManager(network)
        for __ in range(10):
            manager.join()
            trie.validate_cover([p.path for p in network.partitions])

    def test_data_reachable_after_joins(self):
        network = build_word_network(n_peers=8)
        manager = MembershipManager(network)
        for __ in range(6):
            manager.join()
        assert all_words_reachable(network)

    def test_join_splits_heaviest_partition(self):
        network = build_word_network(n_peers=8)
        heaviest = max(
            network.partitions,
            key=lambda p: len(network.peer(p.peer_ids[0]).store),
        )
        old_path = heaviest.path
        MembershipManager(network).join()
        paths = [p.path for p in network.partitions]
        assert old_path not in paths
        assert old_path + "0" in paths
        assert old_path + "1" in paths

    def test_split_moves_entries_by_key(self):
        network = build_word_network(n_peers=8)
        MembershipManager(network).join()
        for peer in network.peers:
            if not peer.online:
                continue
            for entry in peer.store:
                assert entry.key.startswith(peer.path)

    def test_join_fills_under_replicated_partition_first(self):
        network = build_word_network(
            n_peers=8, config=StoreConfig(seed=7, replication=2)
        )
        # Make one partition under-replicated.
        MembershipManager(network).leave(network.partitions[0].peer_ids[0])
        partitions_before = network.n_partitions
        MembershipManager(network).join()
        assert network.n_partitions == partitions_before
        assert all(
            len(p.peer_ids) == 2 for p in network.partitions
        )

    def test_join_charges_transfer_messages(self):
        network = build_word_network(n_peers=8)
        network.tracer.reset()
        MembershipManager(network).join()
        assert network.tracer.counts_by_phase["membership"] >= 1

    def test_queries_work_after_join(self):
        from repro.query.operators.base import OperatorContext
        from repro.query.operators.similar import similar
        from repro.similarity.edit_distance import edit_distance

        network = build_word_network(n_peers=8)
        manager = MembershipManager(network)
        for __ in range(4):
            manager.join()
        ctx = OperatorContext(network)
        result = similar(ctx, "apple", TEXT_ATTR, 1)
        expected = sorted(w for w in WORDS if edit_distance("apple", w) <= 1)
        assert sorted(m.matched for m in result.matches) == expected


class TestLeave:
    def test_replica_leave_keeps_partition(self):
        network = build_word_network(
            n_peers=16, config=StoreConfig(seed=7, replication=2)
        )
        partition = network.partitions[0]
        MembershipManager(network).leave(partition.peer_ids[0])
        assert len(network.partitions[0].peer_ids) == 1
        assert all_words_reachable(network)

    def test_leaf_sibling_merge(self):
        network = build_word_network(n_peers=8)
        manager = MembershipManager(network)
        # Split once so a fresh leaf pair exists, then remove one side.
        new_peer = manager.join()
        partitions_before = network.n_partitions
        manager.leave(new_peer.peer_id)
        assert network.n_partitions == partitions_before - 2 + 1
        trie.validate_cover([p.path for p in network.partitions])
        assert all_words_reachable(network)

    def test_deep_sibling_leave_rejected(self):
        network = build_word_network(n_peers=8)
        # Find a partition whose sibling subtree is deep.
        target = None
        for partition in network.partitions:
            path = partition.path
            sibling = path[:-1] + ("1" if path[-1] == "0" else "0")
            siblings = [
                p for p in network.partitions if p.path.startswith(sibling)
            ]
            if len(siblings) > 1:
                target = partition
                break
        if target is None:
            pytest.skip("balanced trie has no deep siblings at this size")
        with pytest.raises(OverlayError):
            MembershipManager(network).leave(target.peer_ids[0])

    def test_double_leave_rejected(self):
        network = build_word_network(
            n_peers=16, config=StoreConfig(seed=7, replication=2)
        )
        manager = MembershipManager(network)
        peer_id = network.partitions[0].peer_ids[0]
        manager.leave(peer_id)
        with pytest.raises(OverlayError):
            manager.leave(peer_id)


class TestChurnCycle:
    def test_join_leave_cycle_preserves_data(self):
        network = build_word_network(n_peers=8)
        manager = MembershipManager(network)
        joined = [manager.join() for __ in range(5)]
        for peer in reversed(joined):
            try:
                manager.leave(peer.peer_id)
            except OverlayError:
                pass  # deep-sibling cases stay joined
        trie.validate_cover([p.path for p in network.partitions])
        assert all_words_reachable(network)
