"""Unit tests for network construction and data placement."""

import pytest

from repro.core.config import StoreConfig, TrieBalancing
from repro.core.errors import OverlayError
from repro.overlay.network import PGridNetwork
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, WORDS, build_word_network, word_triples


class TestConstruction:
    def test_peer_count(self):
        network = PGridNetwork(24, StoreConfig(seed=1))
        assert network.n_peers == 24

    def test_replication_splits_partitions(self):
        network = PGridNetwork(24, StoreConfig(seed=1, replication=3))
        assert network.n_partitions == 8
        assert all(len(p.peer_ids) == 3 for p in network.partitions)

    def test_replica_references_wired(self):
        network = PGridNetwork(8, StoreConfig(seed=1, replication=2))
        for partition in network.partitions:
            for peer_id in partition.peer_ids:
                peer = network.peer(peer_id)
                assert set(peer.replicas) == set(partition.peer_ids) - {peer_id}

    def test_routing_tables_cover_all_levels(self):
        network = build_word_network(n_peers=32)
        for peer in network.peers:
            assert len(peer.routing_table) == len(peer.path)
            for level, refs in enumerate(peer.routing_table):
                assert refs, f"peer {peer.peer_id} level {level} empty"

    def test_routing_references_point_to_complement(self):
        from repro.overlay import keys as keyspace

        network = build_word_network(n_peers=32)
        for peer in network.peers[::5]:
            for level in range(len(peer.path)):
                sibling = keyspace.sibling_prefix(peer.path, level)
                for ref in peer.references(level):
                    assert network.peer(ref).path.startswith(sibling)

    def test_uniform_balancing_option(self):
        config = StoreConfig(seed=1, balancing=TrieBalancing.UNIFORM)
        network = PGridNetwork(16, config, sample_keys=["0" * 32] * 100)
        depths = {len(p.path) for p in network.partitions}
        assert depths == {4}

    def test_rejects_zero_peers(self):
        with pytest.raises(OverlayError):
            PGridNetwork(0, StoreConfig(seed=1))

    def test_deterministic_given_seed(self):
        a = build_word_network(n_peers=16, config=StoreConfig(seed=3))
        b = build_word_network(n_peers=16, config=StoreConfig(seed=3))
        assert [p.path for p in a.partitions] == [p.path for p in b.partitions]
        assert a.peers[5].routing_table == b.peers[5].routing_table


class TestDataPlacement:
    def test_entries_placed_on_responsible_peers(self):
        network = build_word_network()
        for peer in network.peers:
            for entry in peer.store:
                assert entry.key.startswith(peer.path)

    def test_insert_returns_entry_count(self):
        network = PGridNetwork(8, StoreConfig(seed=2))
        count = network.insert_triples(word_triples())
        assert count == network.total_entries()
        assert count > len(WORDS) * 3  # base entries plus grams

    def test_replication_duplicates_entries(self):
        config = StoreConfig(seed=2, replication=2)
        single = PGridNetwork(8, StoreConfig(seed=2))
        single.insert_triples(word_triples())
        replicated = PGridNetwork(16, config)
        replicated.insert_triples(word_triples())
        assert replicated.total_entries() == 2 * single.total_entries()

    def test_incremental_insert(self):
        network = build_word_network()
        triple = Triple("w:9999", TEXT_ATTR, "quince")
        for entry in network.entry_factory.entries_for(triple):
            network.insert_entry(entry)
        key = network.codec.attr_value_key(TEXT_ATTR, "quince")
        entries, __ = network.router.retrieve(key, 0)
        assert any(e.triple.value == "quince" for e in entries)

    def test_load_balance_with_data_aware_trie(self):
        # Schema-gram entries of a single-attribute corpus all share a
        # handful of identical keys — an indivisible hotspot no trie split
        # can balance (see EXPERIMENTS.md).  Balance is therefore asserted
        # on the divisible index families only.  Enough peers are needed
        # for the attribute-region sliver to amortize its ~attr_bits
        # forced empty-sibling leaves (a complete-trie constraint).
        config = StoreConfig(seed=7, index_schema_grams=False)
        network = build_word_network(n_peers=64, config=config)
        loads = network.load_distribution()
        mean = sum(loads) / len(loads)
        assert max(loads) <= 6 * mean

    def test_schema_gram_hotspot_is_real(self):
        # The complementary fact: with schema grams on, the single shared
        # attribute name concentrates one entry per triple on a few keys.
        network = build_word_network(n_peers=16, config=StoreConfig(seed=7))
        loads = network.load_distribution()
        mean = sum(loads) / len(loads)
        assert max(loads) > 3 * mean

    def test_estimate_insert_messages_positive(self):
        network = build_word_network(n_peers=16)
        estimate = network.estimate_insert_messages(word_triples()[:4])
        assert estimate > 0


class TestOracles:
    def test_partition_for_matches_paths(self):
        network = build_word_network()
        key = network.codec.attr_value_key(TEXT_ATTR, "apple")
        partition = network.partition_for(key)
        assert key.startswith(partition.path)

    def test_partitions_under_root_is_all(self):
        network = build_word_network()
        assert len(network.partitions_under("")) == network.n_partitions

    def test_partitions_under_deep_prefix_inside_partition(self):
        network = build_word_network()
        partition = network.partitions[0]
        deep = partition.path + "0" * 3
        found = network.partitions_under(deep)
        assert found == [partition]

    def test_partitions_in_range_ordered_and_covering(self):
        network = build_word_network()
        bits = network.config.key_bits
        partitions = network.partitions_in_range(0, (1 << bits) - 1)
        assert len(partitions) == network.n_partitions

    def test_random_peer_id_skips_offline(self):
        network = build_word_network(n_peers=16)
        for peer in network.peers[1:]:
            peer.online = False
        try:
            assert network.random_peer_id() == 0
        finally:
            for peer in network.peers:
                peer.online = True
