"""Unit tests for trie construction and the partition oracle."""

import pytest

from repro.core.errors import OverlayError
from repro.overlay import trie
from repro.overlay.hashing import OrderPreservingStringHash


class TestUniformPaths:
    def test_power_of_two(self):
        paths = trie.uniform_paths(8)
        assert len(paths) == 8
        assert all(len(p) == 3 for p in paths)

    def test_single_partition(self):
        assert trie.uniform_paths(1) == [""]

    def test_non_power_of_two_depth_spread(self):
        paths = trie.uniform_paths(6)
        depths = {len(p) for p in paths}
        assert depths <= {2, 3}
        assert len(paths) == 6

    def test_cover_validates(self):
        for count in (1, 2, 3, 5, 8, 13, 100):
            trie.validate_cover(trie.uniform_paths(count))

    def test_rejects_zero(self):
        with pytest.raises(OverlayError):
            trie.uniform_paths(0)


class TestDataAwarePaths:
    def _keys(self, words, bits=16):
        hasher = OrderPreservingStringHash(bits)
        return [hasher.key(w) for w in words]

    def test_cover_complete(self):
        keys = self._keys(["apple"] * 50 + ["banana"] * 30 + ["zebra"] * 5)
        paths = trie.data_aware_paths(8, keys, 16)
        trie.validate_cover(paths)
        assert len(paths) == 8

    def test_balances_skewed_data(self):
        # Heavy lexicographic skew: every word starts with "aa", so a
        # uniform split would dump the whole corpus into one partition.
        import random

        rng = random.Random(4)
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        words = [
            "aa" + "".join(rng.choice(alphabet) for __ in range(6))
            for __ in range(300)
        ]
        # A complete trie must still spend one leaf per empty sibling
        # level (the "aa" prefix pins ~11 of them), so enough peers are
        # needed for the waste to amortize — as in any real P-Grid.
        keys = self._keys(words, bits=32)
        paths = trie.data_aware_paths(64, keys, 32)
        loads = trie.partition_load(sorted(paths), keys)
        uniform_loads = trie.partition_load(
            sorted(trie.uniform_paths(64)), keys
        )
        mean = len(words) / 64
        assert max(loads) <= 4 * mean
        assert max(uniform_loads) >= 10 * mean  # the skew is real

    def test_uniform_fallback_without_samples(self):
        assert trie.data_aware_paths(4, [], 16) == trie.uniform_paths(4)

    def test_depth_capped_by_key_bits(self):
        keys = self._keys(["same"] * 100, bits=8)
        paths = trie.data_aware_paths(64, keys, 8)
        assert all(len(p) <= 8 for p in paths)


class TestValidateCover:
    def test_detects_overlap(self):
        with pytest.raises(OverlayError):
            trie.validate_cover(["0", "01", "1"])

    def test_detects_gap(self):
        with pytest.raises(OverlayError):
            trie.validate_cover(["00", "1"])

    def test_detects_missing_top(self):
        with pytest.raises(OverlayError):
            trie.validate_cover(["00", "01", "10"])

    def test_accepts_root(self):
        trie.validate_cover([""])


class TestFindResponsible:
    def test_full_key(self):
        paths = sorted(trie.uniform_paths(8))
        index = trie.find_responsible(paths, "0110")
        assert paths[index] == "011"

    def test_key_shorter_than_paths(self):
        paths = sorted(trie.uniform_paths(8))
        index = trie.find_responsible(paths, "01")
        assert paths[index].startswith("01")

    def test_every_key_has_owner(self):
        paths = sorted(trie.uniform_paths(5))
        for value in range(16):
            key = format(value, "04b")
            index = trie.find_responsible(paths, key)
            assert key.startswith(paths[index])

    def test_partition_load_counts(self):
        paths = sorted(trie.uniform_paths(4))
        keys = ["0000", "0001", "1000", "1111"]
        loads = trie.partition_load(paths, keys)
        assert sum(loads) == len(keys)
