"""Incremental sweep construction == from-scratch construction.

The incremental engine's whole contract is *bit-identical equivalence*:
a network grown by :class:`IncrementalNetworkBuilder` (shared trie split
counts, span-sampled routing tables, merge-walk placement) must be
structurally indistinguishable from one built from scratch with the
reference scan construction.  These tests pin that contract directly and
via random peer-count schedules.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import StoreConfig, TrieBalancing
from repro.core.errors import OverlayError
from repro.overlay.incremental import (
    IncrementalNetworkBuilder,
    assert_networks_equivalent,
)
from repro.overlay.network import PGridNetwork

from tests.conftest import word_triples


def prepared_entries(config):
    """Key-sorted entries + sample keys for the shared word collection."""
    probe = PGridNetwork(1, config)
    entries = sorted(
        probe.entry_factory.entries_for_all(word_triples()),
        key=lambda entry: entry.key,
    )
    return entries, [entry.key for entry in entries]


def scratch_network(config, entries, sample_keys, n_peers):
    """Reference build: fresh network, scan-built routing tables."""
    network = PGridNetwork(n_peers, config, sample_keys=sample_keys)
    network.rng = random.Random(config.seed)
    network._build_routing_tables_scan()
    network.place_entries(entries)
    return network


class TestRoutingConstructionEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        n_peers=st.integers(min_value=1, max_value=80),
        seed=st.integers(0, 10),
        replication=st.integers(1, 3),
        refs=st.integers(1, 3),
    )
    def test_span_sampling_matches_scan_reference(
        self, n_peers, seed, replication, refs
    ):
        """Fast construction consumes the RNG draw-for-draw like the scan."""
        config = StoreConfig(
            seed=seed, replication=replication, refs_per_level=refs
        )
        __, sample = prepared_entries(config)
        fast = PGridNetwork(n_peers, config, sample_keys=sample)
        reference = PGridNetwork(n_peers, config, sample_keys=sample)
        reference.rng = random.Random(config.seed)
        reference._build_routing_tables_scan()
        for peer_fast, peer_ref in zip(fast.peers, reference.peers):
            assert peer_fast.routing_table == peer_ref.routing_table

    @settings(max_examples=30, deadline=None)
    @given(
        n_peers=st.integers(min_value=1, max_value=60),
        seed=st.integers(0, 5),
        uniform=st.booleans(),
        prefixes=st.lists(
            st.text(alphabet="01", min_size=0, max_size=12), max_size=8
        ),
    )
    def test_partition_span_matches_scan(self, n_peers, seed, uniform, prefixes):
        """The bisected span and the startswith scan agree on any prefix."""
        balancing = TrieBalancing.UNIFORM if uniform else TrieBalancing.DATA_AWARE
        config = StoreConfig(seed=seed, balancing=balancing)
        __, sample = prepared_entries(config)
        network = PGridNetwork(n_peers, config, sample_keys=sample)
        probes = list(prefixes) + ["", "0", "1"] + network._paths[:3]
        for prefix in probes:
            assert (
                network._partition_range(prefix)
                == network._partition_range_scan(prefix)
            ), prefix


class TestIncrementalBuilder:
    @settings(max_examples=20, deadline=None)
    @given(
        schedule=st.lists(
            st.integers(min_value=1, max_value=64), min_size=1, max_size=5
        ),
        seed=st.integers(0, 5),
        replication=st.integers(1, 2),
    )
    def test_random_schedule_equals_scratch(self, schedule, seed, replication):
        """Any peer-count schedule yields scratch-identical networks.

        This is the property the sweep engine rests on: no matter which
        cells ran before (and thus what the shared trie-count cache
        contains), the next cell's network equals a from-scratch build.
        """
        config = StoreConfig(seed=seed, replication=replication)
        entries, sample = prepared_entries(config)
        builder = IncrementalNetworkBuilder(config, entries, sample)
        for n_peers in schedule:
            grown = builder.build(n_peers)
            reference = scratch_network(config, entries, sample, n_peers)
            assert_networks_equivalent(grown, reference)

    def test_check_equivalence_mode_runs(self):
        config = StoreConfig(seed=3)
        entries, sample = prepared_entries(config)
        builder = IncrementalNetworkBuilder(
            config, entries, sample, check_equivalence=True
        )
        network = builder.build(24)
        assert network.n_peers == 24
        assert builder.last_report.check_seconds > 0

    def test_trie_counts_accumulate_across_cells(self):
        config = StoreConfig(seed=0)
        entries, sample = prepared_entries(config)
        builder = IncrementalNetworkBuilder(config, entries, sample)
        builder.build(16)
        first = builder.last_report
        builder.build(64)
        second = builder.last_report
        assert first.trie_counts_reused == 0
        assert first.trie_counts_added > 0
        # The larger cell starts from the smaller cell's splits.
        assert second.trie_counts_reused >= first.trie_counts_added

    def test_build_reports_record_timings(self):
        config = StoreConfig(seed=1)
        entries, sample = prepared_entries(config)
        builder = IncrementalNetworkBuilder(config, entries, sample)
        builder.build(8)
        builder.build(32)
        assert [r.n_peers for r in builder.reports] == [8, 32]
        for report in builder.reports:
            assert report.construct_seconds >= 0
            assert report.place_seconds >= 0
            assert report.build_seconds >= report.construct_seconds

    def test_detects_divergent_networks(self):
        config = StoreConfig(seed=0)
        entries, sample = prepared_entries(config)
        a = PGridNetwork(16, config, sample_keys=sample)
        b = PGridNetwork(16, config, sample_keys=sample)
        b.peers[3].routing_table[0] = [0]
        with pytest.raises(OverlayError, match="routing tables differ"):
            assert_networks_equivalent(a, b)

    def test_detects_divergent_tries(self):
        config = StoreConfig(seed=0)
        entries, sample = prepared_entries(config)
        a = PGridNetwork(16, config, sample_keys=sample)
        b = PGridNetwork(32, config, sample_keys=sample)
        with pytest.raises(OverlayError, match="trie covers differ"):
            assert_networks_equivalent(a, b)
