"""Unit tests for the order-preserving and uniform hash functions."""

import pytest

from repro.core.config import StoreConfig
from repro.core.errors import HashingError
from repro.overlay.hashing import (
    CompositeKeyCodec,
    NumericKeyCodec,
    OrderPreservingStringHash,
    float_to_ordered_int,
    uniform_key,
)


class TestOrderPreservingStringHash:
    def setup_method(self):
        self.hash = OrderPreservingStringHash(32)

    def test_monotone_on_simple_words(self):
        words = sorted(["apple", "banana", "cherry", "date", "fig"])
        values = [self.hash.key_value(w) for w in words]
        assert values == sorted(values)

    def test_strictly_monotone_on_prefix_pairs(self):
        assert self.hash.key_value("a") < self.hash.key_value("ab")
        assert self.hash.key_value("ab") < self.hash.key_value("b")

    def test_case_folding(self):
        assert self.hash.key("Apple") == self.hash.key("apple")

    def test_key_width(self):
        assert len(self.hash.key("anything")) == 32

    def test_empty_string_is_minimum(self):
        assert self.hash.key_value("") == 0

    def test_unknown_characters_fold_to_neighbours(self):
        # '~' sorts above the alphabet; folding keeps the map total.
        assert self.hash.key_value("~") >= self.hash.key_value("z")

    def test_rejects_unsorted_alphabet(self):
        with pytest.raises(HashingError):
            OrderPreservingStringHash(16, alphabet="ba")

    def test_rejects_duplicate_alphabet(self):
        with pytest.raises(HashingError):
            OrderPreservingStringHash(16, alphabet="aab")

    def test_rejects_zero_bits(self):
        with pytest.raises(HashingError):
            OrderPreservingStringHash(0)

    def test_long_common_prefixes_order(self):
        a = "x" * 50 + "a"
        b = "x" * 50 + "b"
        # Beyond the bit budget the keys may collide, but never invert.
        assert self.hash.key_value(a) <= self.hash.key_value(b)


class TestNumericHashing:
    def test_float_ordering(self):
        values = [-1e9, -3.5, -1.0, 0.0, 0.5, 2.0, 1e9]
        mapped = [float_to_ordered_int(v) for v in values]
        assert mapped == sorted(mapped)

    def test_nan_rejected(self):
        with pytest.raises(HashingError):
            float_to_ordered_int(float("nan"))

    def test_codec_monotone(self):
        codec = NumericKeyCodec(20)
        keys = [codec.key(v) for v in (-10.0, -1.0, 0.0, 1.0, 10.0, 1e6)]
        assert keys == sorted(keys)

    def test_codec_key_width(self):
        assert len(NumericKeyCodec(20).key(3.14)) == 20

    def test_codec_range(self):
        codec = NumericKeyCodec(20)
        lo, hi = codec.range_keys(1.0, 2.0)
        assert lo <= hi

    def test_codec_empty_range_rejected(self):
        with pytest.raises(HashingError):
            NumericKeyCodec(20).range_keys(2.0, 1.0)

    def test_codec_bits_bounds(self):
        with pytest.raises(HashingError):
            NumericKeyCodec(0)
        with pytest.raises(HashingError):
            NumericKeyCodec(65)


class TestUniformKey:
    def test_deterministic(self):
        assert uniform_key("car:0001", 32) == uniform_key("car:0001", 32)

    def test_width(self):
        assert len(uniform_key("x", 24)) == 24

    def test_spread(self):
        # Sequential oids should not cluster: all four quadrant prefixes
        # appear among a hundred keys.
        prefixes = {uniform_key(f"car:{i:04d}", 32)[:2] for i in range(100)}
        assert prefixes == {"00", "01", "10", "11"}


class TestCompositeKeyCodec:
    def setup_method(self):
        self.codec = CompositeKeyCodec(StoreConfig(seed=1))

    def test_attr_value_key_width(self):
        key = self.codec.attr_value_key("car:price", 42)
        assert len(key) == StoreConfig().key_bits

    def test_attr_prefix_is_prefix_of_value_keys(self):
        prefix = self.codec.attr_prefix("car:price")
        key = self.codec.attr_value_key("car:price", 42)
        assert key.startswith(prefix)

    def test_numeric_order_within_attribute(self):
        keys = [self.codec.attr_value_key("a", v) for v in (1, 5, 100, 10_000)]
        assert keys == sorted(keys)

    def test_string_order_within_attribute(self):
        keys = [self.codec.attr_value_key("a", v) for v in ("ant", "bee", "cow")]
        assert keys == sorted(keys)

    def test_attr_value_range_covers_point(self):
        lo, hi = self.codec.attr_value_range("a", 10.0, 20.0)
        point = self.codec.attr_value_key("a", 15)
        assert lo <= point <= hi

    def test_attr_string_range_orders(self):
        lo, hi = self.codec.attr_string_range("a", "apple", "mango")
        assert lo <= hi

    def test_attr_string_range_empty_rejected(self):
        with pytest.raises(HashingError):
            self.codec.attr_string_range("a", "z", "a")

    def test_oid_key_width(self):
        assert len(self.codec.oid_key("car:0001")) == StoreConfig().key_bits

    def test_value_key_numeric_vs_string(self):
        assert self.codec.value_key(42) != self.codec.value_key("42")

    def test_schema_gram_key_deterministic(self):
        assert self.codec.schema_gram_key("abc") == self.codec.schema_gram_key("abc")
