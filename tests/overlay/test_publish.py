"""Unit tests for online routed publication."""


from repro.core.config import StoreConfig
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, build_word_network


class TestPublishTriple:
    def test_published_data_is_queryable(self):
        network = build_word_network(n_peers=32)
        triple = Triple("w:5000", TEXT_ATTR, "published")
        messages = network.publish_triple(triple, publisher_id=0)
        assert messages > 0
        key = network.codec.attr_value_key(TEXT_ATTR, "published")
        entries, __ = network.router.retrieve(key, 3)
        assert any(e.triple.value == "published" for e in entries)

    def test_oid_lookup_after_publish(self):
        network = build_word_network(n_peers=32)
        network.publish_triple(Triple("w:5001", TEXT_ATTR, "fresh"), 0)
        key = network.codec.oid_key("w:5001")
        entries, __ = network.router.retrieve(key, 1)
        assert any(e.triple.oid == "w:5001" for e in entries)

    def test_replication_fans_out(self):
        config = StoreConfig(seed=9, replication=3)
        network = build_word_network(n_peers=24, config=config)
        network.tracer.reset()
        network.publish_triple(Triple("w:5002", TEXT_ATTR, "triple"), 0)
        # Every contacted partition sends two replica forwards.
        assert network.tracer.counts_by_type["forward"] >= 2

    def test_publish_cost_near_estimate(self):
        network = build_word_network(n_peers=64)
        triples = [Triple(f"w:6{i:03d}", TEXT_ATTR, f"word{i:04d}") for i in range(10)]
        estimate = network.estimate_insert_messages(triples)
        network.tracer.reset()
        actual = network.publish_triples(triples, publisher_id=0)
        # Batching per triple makes the routed publish cheaper than the
        # per-entry analytical estimate, but both are the same order.
        assert actual <= 2 * estimate
        assert actual >= estimate / 10

    def test_publish_counts_messages_in_phase(self):
        network = build_word_network(n_peers=32)
        network.tracer.reset()
        network.publish_triple(Triple("w:5003", TEXT_ATTR, "phased"), 0)
        assert network.tracer.counts_by_phase["publish"] == (
            network.tracer.message_count
        )
