"""Unit tests for the binary key algebra."""

import pytest

from repro.core.errors import KeyspaceError
from repro.overlay import keys


class TestValidateKey:
    def test_accepts_binary_strings(self):
        assert keys.validate_key("0101") == "0101"

    def test_accepts_empty(self):
        assert keys.validate_key("") == ""

    def test_rejects_other_characters(self):
        with pytest.raises(KeyspaceError):
            keys.validate_key("01a1")


class TestPrefixAlgebra:
    def test_is_prefix_true(self):
        assert keys.is_prefix("01", "0110")

    def test_is_prefix_reflexive(self):
        assert keys.is_prefix("0110", "0110")

    def test_is_prefix_false(self):
        assert not keys.is_prefix("10", "0110")

    def test_common_prefix_len(self):
        assert keys.common_prefix_len("0110", "0101") == 2

    def test_common_prefix_len_identical(self):
        assert keys.common_prefix_len("0110", "0110") == 4

    def test_common_prefix_len_disjoint(self):
        assert keys.common_prefix_len("1", "0") == 0

    def test_common_prefix_len_different_widths(self):
        assert keys.common_prefix_len("01", "0110") == 2


class TestFlipAndSibling:
    def test_flip_bit(self):
        assert keys.flip_bit("0110", 1) == "0010"

    def test_flip_bit_out_of_range(self):
        with pytest.raises(KeyspaceError):
            keys.flip_bit("01", 2)

    def test_sibling_prefix(self):
        assert keys.sibling_prefix("0110", 2) == "010"

    def test_sibling_prefix_level_zero(self):
        assert keys.sibling_prefix("0110", 0) == "1"

    def test_sibling_prefix_bad_level(self):
        with pytest.raises(KeyspaceError):
            keys.sibling_prefix("01", 5)


class TestIntConversion:
    def test_key_to_int(self):
        assert keys.key_to_int("0110") == 6

    def test_key_to_int_empty(self):
        assert keys.key_to_int("") == 0

    def test_int_to_key(self):
        assert keys.int_to_key(6, 4) == "0110"

    def test_int_to_key_zero_width(self):
        assert keys.int_to_key(0, 0) == ""

    def test_roundtrip(self):
        for value in (0, 1, 255, 1 << 20):
            assert keys.key_to_int(keys.int_to_key(value, 24)) == value

    def test_int_to_key_overflow(self):
        with pytest.raises(KeyspaceError):
            keys.int_to_key(16, 4)

    def test_int_to_key_negative(self):
        with pytest.raises(KeyspaceError):
            keys.int_to_key(-1, 4)


class TestIntervals:
    def test_prefix_interval(self):
        assert keys.prefix_interval("01", 4) == (4, 7)

    def test_prefix_interval_full_width(self):
        assert keys.prefix_interval("0110", 4) == (6, 6)

    def test_prefix_interval_root(self):
        assert keys.prefix_interval("", 4) == (0, 15)

    def test_prefix_too_long(self):
        with pytest.raises(KeyspaceError):
            keys.prefix_interval("01010", 4)

    def test_overlap_inside(self):
        assert keys.interval_overlaps_prefix(5, 6, "01", 4)

    def test_overlap_boundary(self):
        assert keys.interval_overlaps_prefix(7, 12, "01", 4)

    def test_overlap_disjoint(self):
        assert not keys.interval_overlaps_prefix(8, 12, "01", 4)


class TestNextKey:
    def test_next_key(self):
        assert keys.next_key("0110") == "0111"

    def test_next_key_carries(self):
        assert keys.next_key("0111") == "1000"

    def test_next_key_max(self):
        assert keys.next_key("1111") is None
