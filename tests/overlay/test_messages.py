"""Unit tests for message accounting."""

from repro.overlay.messages import CostReport, MessageTracer, MessageType


class TestMessageTracer:
    def test_counts_messages_and_bytes(self):
        tracer = MessageTracer()
        tracer.send(MessageType.ROUTE, 0, 1)
        tracer.send(MessageType.RESULT, 1, 0, payload_bytes=100)
        assert tracer.message_count == 2
        assert tracer.payload_bytes == 100

    def test_counts_by_type_and_phase(self):
        tracer = MessageTracer()
        tracer.send(MessageType.ROUTE, 0, 1, phase="gram_lookup")
        tracer.send(MessageType.ROUTE, 1, 2, phase="gram_lookup")
        tracer.send(MessageType.RESULT, 2, 0, 50, phase="oid_lookup")
        assert tracer.counts_by_type["route"] == 2
        assert tracer.counts_by_phase["gram_lookup"] == 2
        assert tracer.bytes_by_phase["oid_lookup"] == 50

    def test_log_disabled_by_default(self):
        tracer = MessageTracer()
        tracer.send(MessageType.ROUTE, 0, 1)
        assert tracer.log == []

    def test_log_recorded_when_enabled(self):
        tracer = MessageTracer(record_log=True)
        tracer.send(MessageType.FORWARD, 3, 4, 7, phase="range")
        assert len(tracer.log) == 1
        message = tracer.log[0]
        assert (message.sender, message.receiver) == (3, 4)
        assert message.payload_bytes == 7

    def test_reset(self):
        tracer = MessageTracer(record_log=True)
        tracer.send(MessageType.ROUTE, 0, 1, 5)
        tracer.reset()
        assert tracer.message_count == 0
        assert tracer.payload_bytes == 0
        assert not tracer.counts_by_type
        assert tracer.log == []


class TestSnapshots:
    def test_delta(self):
        tracer = MessageTracer()
        tracer.send(MessageType.ROUTE, 0, 1)
        before = tracer.snapshot()
        tracer.send(MessageType.RESULT, 1, 0, 30)
        tracer.send(MessageType.RESULT, 1, 0, 20)
        delta = before.delta(tracer.snapshot())
        assert delta.messages == 2
        assert delta.payload_bytes == 50
        assert delta.by_type["result"] == 2
        assert delta.by_type.get("route", 0) == 0

    def test_cost_report_from_delta(self):
        tracer = MessageTracer()
        before = tracer.snapshot()
        tracer.send(MessageType.DELEGATE, 0, 1, 1_000_000, phase="x")
        report = CostReport.from_delta(before, tracer.snapshot())
        assert report.messages == 1
        assert report.payload_megabytes == 1.0
        assert report.by_phase == {"x": 1}

    def test_cost_report_drops_zero_entries(self):
        tracer = MessageTracer()
        tracer.send(MessageType.ROUTE, 0, 1)
        before = tracer.snapshot()
        tracer.send(MessageType.RESULT, 1, 0)
        report = CostReport.from_delta(before, tracer.snapshot())
        assert "route" not in report.by_type
