"""Integration tests for the QueryEngine facade (engine.py)."""

import pytest

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.engine import QueryEngine
from repro.storage.triple import Triple

from tests.conftest import LEN_ATTR, TEXT_ATTR, WORDS, word_triples


@pytest.fixture()
def engine():
    return QueryEngine.build(32, word_triples(), StoreConfig(seed=7))


@pytest.fixture()
def adaptive_engine():
    engine = QueryEngine.build(
        32, word_triples(), StoreConfig(seed=7), strategy="adaptive"
    )
    engine.analyze([TEXT_ATTR])
    return engine


class TestFacade:
    def test_build_and_query(self, engine):
        result = engine.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') <= 1) }"
        )
        assert {row["w"] for row in result.rows} >= {"apple", "apply"}
        assert result.cost.messages > 0

    def test_strategy_string_accepted(self):
        engine = QueryEngine.build(8, strategy="qsample")
        assert engine.ctx.strategy is SimilarityStrategy.QSAMPLE

    def test_owns_all_memos_and_pool(self, engine):
        assert engine.naive_memo is not None
        assert engine.gram_scan_memo is not None
        assert engine.fetch_memo is not None
        assert engine.verifier_pool is not None
        assert engine.cost_model is not None

    def test_memoize_master_switch(self):
        engine = QueryEngine.build(8, memoize=False)
        assert engine.naive_memo is None
        assert engine.gram_scan_memo is None
        assert engine.fetch_memo is None

    def test_context_shares_engine_wiring(self, engine):
        ctx = engine.context(strategy=SimilarityStrategy.QGRAM)
        assert ctx.naive_memo is engine.naive_memo
        assert ctx.gram_scan_memo is engine.gram_scan_memo
        assert ctx.fetch_memo is engine.fetch_memo
        assert ctx.verifier_pool is engine.verifier_pool
        assert ctx.cost_model is engine.cost_model
        assert ctx.strategy is SimilarityStrategy.QGRAM

    def test_context_accepts_strategy_name(self, engine):
        ctx = engine.context(strategy="strings")
        assert ctx.strategy is SimilarityStrategy.NAIVE


class TestAnalyze:
    def test_analyze_installs_catalog(self, engine):
        # A fresh engine starts with an empty (but shared) catalog, so
        # contexts handed out before the first analyze see later stats.
        assert engine.catalog is not None
        assert engine.catalog.get(TEXT_ATTR) is None
        early_ctx = engine.context(strategy="qgrams")
        catalog = engine.analyze([TEXT_ATTR])
        assert engine.catalog is catalog
        assert early_ctx.catalog is catalog
        assert catalog.get(TEXT_ATTR).row_count == len(WORDS)
        # The executor consults the installed catalog automatically.
        result = engine.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') <= 1) }"
        )
        assert result.plan.steps[0].estimated_rows is not None

    def test_analyze_merges(self, engine):
        engine.analyze([TEXT_ATTR])
        engine.analyze([LEN_ATTR])
        assert engine.catalog.get(TEXT_ATTR) is not None
        assert engine.catalog.get(LEN_ATTR) is not None

    def test_analyze_charges_messages(self, engine):
        engine.analyze([TEXT_ATTR])
        assert engine.last_cost().messages > 0


class TestAdaptive:
    def test_similar_records_decision(self, adaptive_engine):
        result = adaptive_engine.similar("aple", TEXT_ATTR, 1)
        assert any(m.matched == "apple" for m in result.matches)
        decisions = adaptive_engine.last_decisions()
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.chosen.is_physical
        assert decision.predicted.messages > 0
        assert decision.actual_messages is not None
        assert decision.actual_messages > 0

    def test_vql_query_carries_decisions(self, adaptive_engine):
        result = adaptive_engine.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'grape') <= 1) }"
        )
        assert result.cost.decisions
        for decision in result.cost.decisions:
            assert decision.chosen.is_physical
            assert decision.actual_messages is not None

    def test_fixed_strategy_queries_record_no_decisions(self, engine):
        engine.similar("apple", TEXT_ATTR, 1)
        assert engine.last_decisions() == []

    def test_predict_similar(self, adaptive_engine):
        predictions = adaptive_engine.predict_similar("apple", TEXT_ATTR, 1)
        assert set(predictions) == {"qsamples", "qgrams", "strings"}

    def test_adaptive_without_analyze_still_answers(self):
        engine = QueryEngine.build(
            16, word_triples(), StoreConfig(seed=7), strategy="adaptive"
        )
        result = engine.similar("apple", TEXT_ATTR, 0)
        assert any(m.matched == "apple" for m in result.matches)
        assert engine.last_decisions()[0].chosen.is_physical


class TestMutationInvalidation:
    def test_insert_invalidates_affected_partitions(self, engine):
        engine.similar("apple", TEXT_ATTR, 1, strategy="strings")
        engine.similar("apple", TEXT_ATTR, 1)
        assert len(engine.naive_memo) > 0
        assert len(engine.fetch_memo) > 0
        before = len(engine.fetch_memo)
        engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        # Whole-region memos overlap the written partitions and drop;
        # per-partition fetch entries for untouched partitions survive.
        assert len(engine.naive_memo) == 0
        assert len(engine.gram_scan_memo) == 0
        assert len(engine.fetch_memo) < before
        assert engine.fetch_memo.invalidations > 0

    def test_insert_clears_memos_in_drop_mode(self):
        engine = QueryEngine.build(
            16, word_triples(), StoreConfig(seed=7), memo_maintenance="drop"
        )
        engine.similar("apple", TEXT_ATTR, 1, strategy="strings")
        engine.similar("apple", TEXT_ATTR, 1)
        assert len(engine.fetch_memo) > 0
        engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        assert len(engine.naive_memo) == 0
        assert len(engine.gram_scan_memo) == 0
        assert len(engine.fetch_memo) == 0

    def test_out_of_band_mutation_detected(self, engine):
        """Even a direct store write trips the token check."""
        engine.similar("apple", TEXT_ATTR, 1, strategy="strings")
        assert len(engine.naive_memo) > 0
        peer = engine.network.peer(0)
        peer.store.version += 1  # simulate an untracked mutation
        assert engine.check_mutations() is True
        assert len(engine.naive_memo) == 0
        assert engine.check_mutations() is False

    def test_queries_after_insert_see_new_data(self, engine):
        engine.similar("apple", TEXT_ATTR, 1)
        engine.insert([Triple("x:new", TEXT_ATTR, "appla")])
        result = engine.similar("apple", TEXT_ATTR, 1)
        assert "appla" in {m.matched for m in result.matches}


class TestLedger:
    def test_stats_accumulate(self, engine):
        before = engine.stats.queries
        engine.similar("apple", TEXT_ATTR, 1)
        engine.query(f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) }} LIMIT 2")
        assert engine.stats.queries == before + 2
        assert engine.stats.messages > 0

    def test_explain_does_not_execute(self, engine):
        before = engine.network.tracer.message_count
        text = engine.explain(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') < 2) }"
        )
        assert "string_similarity" in text
        assert engine.network.tracer.message_count == before
