"""Unit tests for the discrete-event latency replay."""

import pytest

from repro.core.config import SimilarityStrategy
from repro.overlay.messages import Message, MessageType
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.simulation.replay import replay_latency, replay_operation
from repro.simulation.timing import LatencyDistribution

from tests.conftest import TEXT_ATTR, build_word_network

FIXED = LatencyDistribution(median_ms=10.0, sigma=0.0, per_kb_ms=0.0)


def message(type, sender, receiver, payload=0, phase="q"):
    return Message(type, sender, receiver, payload, phase)


class TestReplayMechanics:
    def test_sequential_chain_sums(self):
        log = [
            message(MessageType.ROUTE, 0, 1),
            message(MessageType.ROUTE, 1, 2),
            message(MessageType.RESULT, 2, 0),
        ]
        outcome = replay_latency(log, initiator_id=0, model=FIXED)
        assert outcome.completion_ms == pytest.approx(30.0)

    def test_fan_out_is_parallel(self):
        # One sender, three receivers, all answering: 1 hop out + 1 back.
        log = [
            message(MessageType.FORWARD, 0, i) for i in (1, 2, 3)
        ] + [
            message(MessageType.RESULT, i, 0) for i in (1, 2, 3)
        ]
        outcome = replay_latency(log, initiator_id=0, model=FIXED)
        assert outcome.completion_ms == pytest.approx(20.0)

    def test_join_waits_for_slowest_branch(self):
        log = [
            message(MessageType.ROUTE, 0, 1),  # short branch
            message(MessageType.ROUTE, 0, 2),  # long branch ...
            message(MessageType.ROUTE, 2, 3),
            message(MessageType.RESULT, 1, 9),
            message(MessageType.RESULT, 3, 9),
        ]
        outcome = replay_latency(log, initiator_id=9, model=FIXED)
        assert outcome.completion_ms == pytest.approx(30.0)

    def test_delegate_rides_the_route(self):
        log = [
            message(MessageType.ROUTE, 0, 1),
            message(MessageType.DELEGATE, 0, 1, payload=0),
            message(MessageType.RESULT, 1, 0),
        ]
        outcome = replay_latency(log, initiator_id=0, model=FIXED)
        assert outcome.completion_ms == pytest.approx(20.0)

    def test_payload_adds_bandwidth_time(self):
        model = LatencyDistribution(median_ms=0.0, sigma=0.0, per_kb_ms=1.0)
        log = [message(MessageType.RESULT, 1, 0, payload=2048)]
        outcome = replay_latency(log, initiator_id=0, model=model)
        assert outcome.completion_ms == pytest.approx(2.0)

    def test_empty_log(self):
        outcome = replay_latency([], initiator_id=0, model=FIXED)
        assert outcome.completion_ms == 0.0
        assert outcome.messages == 0

    def test_deterministic_given_seed(self):
        model = LatencyDistribution(median_ms=10.0, sigma=0.5)
        log = [message(MessageType.ROUTE, 0, 1) for __ in range(5)]
        a = replay_latency(log, 0, model, seed=3)
        b = replay_latency(log, 0, model, seed=3)
        assert a.completion_ms == b.completion_ms

    def test_phase_makespans_recorded(self):
        log = [
            message(MessageType.ROUTE, 0, 1, phase="gram"),
            message(MessageType.RESULT, 1, 0, phase="oid"),
        ]
        outcome = replay_latency(log, initiator_id=0, model=FIXED)
        assert set(outcome.makespan_by_phase) == {"gram", "oid"}


class TestReplayOperation:
    @pytest.fixture(scope="class")
    def network(self):
        return build_word_network(n_peers=48)

    def test_similar_replay_produces_latency(self, network):
        ctx = OperatorContext(network)
        initiator = 0
        result, timing = replay_operation(
            network,
            lambda: similar(ctx, "apple", TEXT_ATTR, 1, initiator),
            initiator,
            model=FIXED,
        )
        assert result.matches
        assert timing.completion_ms > 0
        assert timing.messages > 0

    def test_log_not_retained_when_disabled(self, network):
        ctx = OperatorContext(network)
        assert not network.tracer.record_log
        replay_operation(
            network,
            lambda: similar(ctx, "apple", TEXT_ATTR, 1, 0),
            0,
            model=FIXED,
        )
        assert network.tracer.log == []

    def test_qsample_not_slower_than_qgram(self, network):
        """Fewer gram lookups should not lengthen the critical path."""
        ctx = OperatorContext(network)
        __, qgram = replay_operation(
            network,
            lambda: similar(
                ctx, "bandana", TEXT_ATTR, 2, 0,
                strategy=SimilarityStrategy.QGRAM,
            ),
            0,
            model=FIXED,
        )
        __, qsample = replay_operation(
            network,
            lambda: similar(
                ctx, "bandana", TEXT_ATTR, 2, 0,
                strategy=SimilarityStrategy.QSAMPLE,
            ),
            0,
            model=FIXED,
        )
        assert qsample.completion_ms <= qgram.completion_ms * 1.5
