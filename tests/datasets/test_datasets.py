"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.datasets.bible import (
    MAX_LENGTH as WORD_MAX,
    MIN_LENGTH as WORD_MIN,
    PAPER_MEAN_LENGTH as WORD_MEAN,
    TEXT_ATTRIBUTE,
    bible_triples,
    bible_words,
)
from repro.datasets.cars import DLRID_VARIANTS, car_database
from repro.datasets.paintings import (
    MAX_LENGTH as TITLE_MAX,
    PAPER_MEAN_LENGTH as TITLE_MEAN,
    TITLE_ATTRIBUTE,
    painting_titles,
    painting_triples,
)
from repro.datasets.wordgen import WordGenerator, mean_length, sample_lengths


class TestWordGenerator:
    def test_exact_lengths(self):
        generator = WordGenerator(seed=1)
        for length in (1, 3, 5, 9, 14):
            assert len(generator.word(length)) == length

    def test_deterministic(self):
        a = WordGenerator(seed=3).word(8)
        b = WordGenerator(seed=3).word(8)
        assert a == b

    def test_lowercase_letters_only(self):
        word = WordGenerator(seed=2).word(20)
        assert word.isalpha() and word.islower()

    def test_unique_words(self):
        words = WordGenerator(seed=4).unique_words([5] * 200)
        assert len(set(words)) == 200

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            WordGenerator(seed=0).word(0)

    def test_sample_lengths_respects_support(self):
        import random

        lengths = sample_lengths(random.Random(0), 500, [(3, 0.5), (7, 0.5)])
        assert set(lengths) <= {3, 7}

    def test_mean_length_empty(self):
        assert mean_length([]) == 0.0


class TestBibleWords:
    def test_count_and_uniqueness(self):
        words = bible_words(3000, seed=2)
        assert len(words) == 3000
        assert len(set(words)) == 3000

    def test_length_envelope(self):
        words = bible_words(3000, seed=2)
        assert all(WORD_MIN <= len(w) <= WORD_MAX for w in words)

    def test_mean_close_to_paper(self):
        words = bible_words(20000, seed=0)
        assert abs(mean_length(words) - WORD_MEAN) < 0.15

    def test_deterministic(self):
        assert bible_words(100, seed=5) == bible_words(100, seed=5)

    def test_seed_changes_corpus(self):
        assert bible_words(100, seed=5) != bible_words(100, seed=6)

    def test_triples_shape(self):
        triples = bible_triples(50, seed=1)
        assert len(triples) == 50
        assert all(t.attribute == TEXT_ATTRIBUTE for t in triples)
        assert len({t.oid for t in triples}) == 50


class TestPaintingTitles:
    def test_count(self):
        assert len(painting_titles(2000, seed=1)) == 2000

    def test_length_envelope(self):
        titles = painting_titles(5000, seed=1)
        assert all(1 <= len(t) <= TITLE_MAX for t in titles)

    def test_mean_close_to_paper(self):
        titles = painting_titles(20000, seed=0)
        assert abs(mean_length(titles) - TITLE_MEAN) < 2.0

    def test_titles_contain_spaces(self):
        titles = painting_titles(1000, seed=1)
        with_spaces = sum(1 for t in titles if " " in t)
        assert with_spaces > 0.8 * len(titles)

    def test_short_tail_exists(self):
        titles = painting_titles(5000, seed=1)
        assert any(len(t) <= 10 for t in titles)

    def test_triples_shape(self):
        triples = painting_triples(20, seed=1)
        assert all(t.attribute == TITLE_ATTRIBUTE for t in triples)


class TestCarDatabase:
    def test_counts(self):
        db = car_database(n_cars=50, n_dealers=8, seed=1)
        assert db.car_count == 50
        assert db.dealer_count == 8
        assert db.triples

    def test_schema_heterogeneity_injected(self):
        db = car_database(n_cars=10, n_dealers=40, schema_typo_rate=0.5, seed=1)
        attributes = {a for row in db.dealer_rows for a in row}
        assert attributes & set(DLRID_VARIANTS[1:])
        assert DLRID_VARIANTS[0] in attributes

    def test_instance_typos_injected(self):
        clean = car_database(n_cars=100, typo_rate=0.0, seed=2)
        noisy = car_database(n_cars=100, typo_rate=1.0, seed=2)
        clean_names = {row["name"] for row in clean.car_rows}
        noisy_names = {row["name"] for row in noisy.car_rows}
        assert noisy_names - clean_names

    def test_dealer_references_valid(self):
        db = car_database(n_cars=30, n_dealers=5, seed=3)
        dealer_ids = {f"d{i:03d}" for i in range(5)}
        assert all(row["dealer"] in dealer_ids for row in db.car_rows)

    def test_deterministic(self):
        a = car_database(n_cars=20, seed=4)
        b = car_database(n_cars=20, seed=4)
        assert a.car_rows == b.car_rows
