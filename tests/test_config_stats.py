"""Unit tests for configuration validation and the stats accumulators."""

import pytest

from repro.core.config import (
    RankFunction,
    SimilarityStrategy,
    StoreConfig,
    TrieBalancing,
)
from repro.core.errors import ConfigError
from repro.core.stats import QueryStats
from repro.overlay.messages import CostReport


class TestStoreConfigValidation:
    def test_defaults_valid(self):
        config = StoreConfig()
        assert config.value_bits == config.key_bits - config.attr_bits

    @pytest.mark.parametrize("field,value", [
        ("key_bits", 2),
        ("key_bits", 200),
        ("attr_bits", 0),
        ("attr_bits", 32),
        ("q", 0),
        ("refs_per_level", 0),
        ("replication", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            StoreConfig(**{field: value})

    def test_replace_preserves_other_fields(self):
        config = StoreConfig(seed=9, q=4)
        changed = config.replace(replication=2)
        assert changed.seed == 9
        assert changed.q == 4
        assert changed.replication == 2
        assert config.replication == 1  # original untouched

    def test_with_strategy_string(self):
        config = StoreConfig().with_strategy("qsamples")
        assert config.strategy is SimilarityStrategy.QSAMPLE

    def test_frozen(self):
        with pytest.raises(Exception):
            StoreConfig().q = 5  # type: ignore[misc]


class TestSimilarityStrategyNames:
    @pytest.mark.parametrize("name,expected", [
        ("qgrams", SimilarityStrategy.QGRAM),
        ("QGRAM", SimilarityStrategy.QGRAM),
        ("qgram", SimilarityStrategy.QGRAM),
        ("qsamples", SimilarityStrategy.QSAMPLE),
        ("qsample", SimilarityStrategy.QSAMPLE),
        ("strings", SimilarityStrategy.NAIVE),
        ("naive", SimilarityStrategy.NAIVE),
        ("string", SimilarityStrategy.NAIVE),
    ])
    def test_aliases(self, name, expected):
        assert SimilarityStrategy.from_name(name) is expected

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityStrategy.from_name("bloom")


class TestEnums:
    def test_rank_functions(self):
        assert RankFunction("NN") is RankFunction.NN

    def test_balancing_values(self):
        assert TrieBalancing.DATA_AWARE.value == "data-aware"


class TestQueryStats:
    def _cost(self, messages, bytes_):
        return CostReport(
            messages=messages,
            payload_bytes=bytes_,
            by_type={"route": messages},
            by_phase={"q": messages},
        )

    def test_record_accumulates(self):
        stats = QueryStats()
        stats.record(self._cost(10, 1000))
        stats.record(self._cost(5, 500))
        assert stats.queries == 2
        assert stats.messages == 15
        assert stats.payload_bytes == 1500
        assert stats.by_type["route"] == 15

    def test_per_query_averages(self):
        stats = QueryStats()
        stats.record(self._cost(10, 2_000_000))
        assert stats.messages_per_query == 10
        assert stats.bytes_per_query == 2_000_000
        assert stats.payload_megabytes == 2.0

    def test_empty_averages(self):
        stats = QueryStats()
        assert stats.messages_per_query == 0.0
        assert stats.bytes_per_query == 0.0

    def test_merge(self):
        a = QueryStats()
        a.record(self._cost(10, 100))
        b = QueryStats()
        b.record(self._cost(20, 200))
        a.merge(b)
        assert a.queries == 2
        assert a.messages == 30

    def test_summary_format(self):
        stats = QueryStats()
        stats.record(self._cost(3, 1_234_567))
        assert "1 queries" in stats.summary()
        assert "1.235 MB" in stats.summary()
