"""Unit tests for the VQL tokenizer."""

import pytest

from repro.core.errors import VQLSyntaxError
from repro.query.lexer import TokenType, tokenize


def types(text):
    return [t.type for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert types("select WHERE Filter") == [TokenType.KEYWORD] * 3
        assert texts("select WHERE Filter") == ["SELECT", "WHERE", "FILTER"]

    def test_variables(self):
        tokens = tokenize("?name ?x_1")
        assert tokens[0].type is TokenType.VAR
        assert tokens[0].text == "name"
        assert tokens[1].text == "x_1"

    def test_var_requires_name(self):
        with pytest.raises(VQLSyntaxError):
            tokenize("? name")

    def test_identifiers_with_namespace(self):
        tokens = tokenize("car:price word_attr a.b-c")
        assert [t.text for t in tokens[:-1]] == ["car:price", "word_attr", "a.b-c"]
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_dist_is_identifier(self):
        assert tokenize("dist")[0].type is TokenType.IDENT

    def test_strings(self):
        token = tokenize("'hello world'")[0]
        assert token.type is TokenType.STRING
        assert token.text == "hello world"

    def test_string_quote_escape(self):
        token = tokenize("'it''s'")[0]
        assert token.text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(VQLSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.14 -7")
        assert [t.text for t in tokens[:-1]] == ["42", "3.14", "-7"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_operators(self):
        tokens = tokenize("< <= > >= = !=")
        assert [t.text for t in tokens[:-1]] == ["<", "<=", ">", ">=", "=", "!="]

    def test_bare_bang_rejected(self):
        with pytest.raises(VQLSyntaxError):
            tokenize("! =")

    def test_punctuation(self):
        assert types("( ) { } ,") == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.COMMA,
        ]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT ?x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_junk_rejected_with_position(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            tokenize("SELECT @")
        assert excinfo.value.position == 7

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_whole_query_tokenizes(self):
        text = (
            "SELECT ?n WHERE { (?o,name,?n) FILTER (dist(?n,'BMW') < 2) } "
            "ORDER BY ?n NN 'BMW' LIMIT 5 OFFSET 2"
        )
        tokens = tokenize(text)
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) > 20
