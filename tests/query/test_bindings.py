"""Unit tests for binding sets and local joins."""

from repro.query.bindings import BindingSet


class TestBasics:
    def test_unit(self):
        unit = BindingSet.unit()
        assert len(unit) == 1
        assert unit.variables() == set()

    def test_variables(self):
        bindings = BindingSet([{"a": 1, "b": 2}])
        assert bindings.variables() == {"a", "b"}

    def test_empty_is_falsy(self):
        assert not BindingSet()
        assert BindingSet([{"a": 1}])

    def test_distinct_values(self):
        bindings = BindingSet([{"a": 2}, {"a": 1}, {"a": 2}])
        assert bindings.distinct_values("a") == [1, 2]


class TestJoin:
    def test_hash_join_on_shared_variable(self):
        left = BindingSet([{"o": "x", "n": 1}, {"o": "y", "n": 2}])
        right = BindingSet([{"o": "x", "p": 10}, {"o": "z", "p": 30}])
        joined = left.join(right)
        assert joined.rows == [{"o": "x", "n": 1, "p": 10}]

    def test_join_multiple_matches(self):
        left = BindingSet([{"o": "x"}])
        right = BindingSet([{"o": "x", "p": 1}, {"o": "x", "p": 2}])
        assert len(left.join(right)) == 2

    def test_cross_product_without_shared_vars(self):
        left = BindingSet([{"a": 1}, {"a": 2}])
        right = BindingSet([{"b": 10}])
        joined = left.join(right)
        assert len(joined) == 2
        assert joined.rows[0] == {"a": 1, "b": 10}

    def test_join_with_unit_is_identity(self):
        rows = BindingSet([{"a": 1}])
        assert BindingSet.unit().join(rows).rows == rows.rows

    def test_join_on_two_shared_vars(self):
        left = BindingSet([{"a": 1, "b": 2}, {"a": 1, "b": 3}])
        right = BindingSet([{"a": 1, "b": 2, "c": 9}])
        assert left.join(right).rows == [{"a": 1, "b": 2, "c": 9}]


class TestTransforms:
    def test_filter(self):
        bindings = BindingSet([{"a": 1}, {"a": 5}])
        assert bindings.filter(lambda r: r["a"] > 2).rows == [{"a": 5}]

    def test_project(self):
        bindings = BindingSet([{"a": 1, "b": 2}])
        assert bindings.project(["b"]).rows == [{"b": 2}]

    def test_extend_each(self):
        bindings = BindingSet([{"a": 1}, {"a": 2}])
        extended = bindings.extend_each(
            lambda row: [{"b": row["a"] * 10}] if row["a"] == 1 else []
        )
        assert extended.rows == [{"a": 1, "b": 10}]

    def test_deduplicate(self):
        bindings = BindingSet([{"a": 1}, {"a": 1}, {"a": 2}])
        assert bindings.deduplicate().rows == [{"a": 1}, {"a": 2}]
