"""Executor edge cases: constant subjects, NN numerics, error paths."""

import pytest

from repro.core.errors import ExecutionError, QueryError
from repro.query.executor import _distance, _evaluate_filter, _numeric_value
from repro.query.ast import CompareOp, Comparison, Const, DistCall, Var

from tests.conftest import LEN_ATTR, TEXT_ATTR, WORDS


class TestConstantSubjects:
    def test_const_subject_pattern(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (w:0000,{TEXT_ATTR},?w) }}"
        )
        assert result.rows == [{"w": "apple"}]

    def test_const_subject_mismatch_empty(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (w:9999,{TEXT_ATTR},?w) }}"
        )
        assert result.rows == []

    def test_const_subject_and_object_check(self, word_store):
        result = word_store.query(
            f"SELECT ?l WHERE {{ (w:0000,{TEXT_ATTR},'apple') "
            f"(w:0000,{LEN_ATTR},?l) }}"
        )
        assert result.rows == [{"l": 5}]


class TestNumericNN:
    def test_order_by_nn_number(self, word_store):
        result = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) }} ORDER BY ?l NN 6 LIMIT 4"
        )
        got = result.column("l")
        expected = sorted(
            (len(w) for w in WORDS), key=lambda v: (abs(v - 6), v)
        )[:4]
        assert sorted(got) == sorted(expected)

    def test_numeric_dist_filter(self, word_store):
        result = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) FILTER (dist(?l,5) <= 1) }}"
        )
        assert set(result.column("l")) <= {4, 5, 6}
        assert result.rows


class TestHelperFunctions:
    def test_distance_strings(self):
        assert _distance("abc", "abd") == 1.0

    def test_distance_numbers(self):
        assert _distance(3, 7.5) == 4.5

    def test_distance_mixed_rejected(self):
        with pytest.raises(ExecutionError):
            _distance("abc", 3)

    def test_numeric_value_int_recovery(self):
        assert _numeric_value("42.0") == 42
        assert isinstance(_numeric_value("42.0"), int)

    def test_numeric_value_float(self):
        assert _numeric_value("2.5") == 2.5

    def test_evaluate_filter_ne(self):
        comparison = Comparison(Var("x"), CompareOp.NE, Const(3))
        assert _evaluate_filter(comparison, {"x": 4})
        assert not _evaluate_filter(comparison, {"x": 3})

    def test_evaluate_filter_dist_nested(self):
        comparison = Comparison(
            DistCall(Var("a"), Var("b")), CompareOp.LE, Const(1)
        )
        assert _evaluate_filter(comparison, {"a": "cat", "b": "cut"})
        assert not _evaluate_filter(comparison, {"a": "cat", "b": "dog"})

    def test_evaluate_filter_incomparable(self):
        comparison = Comparison(Var("x"), CompareOp.LT, Const("abc"))
        with pytest.raises(ExecutionError):
            _evaluate_filter(comparison, {"x": 3})


class TestModifierEdges:
    def test_limit_zero(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) }} LIMIT 0"
        )
        assert result.rows == []

    def test_offset_beyond_results(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},'apple') (?o,{TEXT_ATTR},?w) }}"
            " LIMIT 5 OFFSET 100"
        )
        assert result.rows == []

    def test_order_by_string_values(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) }} ORDER BY ?w LIMIT 3"
        )
        assert result.column("w") == sorted(WORDS)[:3]

    def test_unbound_select_raises_at_parse(self, word_store):
        with pytest.raises(QueryError):
            word_store.query(
                f"SELECT ?zz WHERE {{ (?o,{TEXT_ATTR},?w) }}"
            )


class TestEmptyIntermediateResults:
    def test_join_short_circuits_on_empty(self, word_store):
        messages_before = word_store.network.tracer.message_count
        result = word_store.query(
            f"SELECT ?w,?l WHERE {{ (?o,{TEXT_ATTR},'nosuchvalue') "
            f"(?o,{TEXT_ATTR},?w) (?o,{LEN_ATTR},?l) }}"
        )
        assert result.rows == []
        # The follow-up patterns never ran a scan: cost stays small.
        assert word_store.network.tracer.message_count - messages_before < 60
