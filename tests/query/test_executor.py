"""Integration tests for the VQL executor on the word and car stores."""


from repro.similarity.edit_distance import edit_distance

from tests.conftest import LEN_ATTR, TEXT_ATTR, WORDS


class TestSinglePattern:
    def test_scan_all(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) }}"
        )
        assert sorted(result.column("w")) == sorted(WORDS)

    def test_exact_object(self, word_store):
        result = word_store.query(
            f"SELECT ?o WHERE {{ (?o,{TEXT_ATTR},'banana') }}"
        )
        assert len(result) == 1

    def test_similarity_filter(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') <= 1) }"
        )
        expected = sorted(w for w in WORDS if edit_distance("apple", w) <= 1)
        assert sorted(result.column("w")) == expected

    def test_numeric_range_filter(self, word_store):
        result = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) FILTER (?l <= 5) }}"
        )
        expected = sorted(len(w) for w in WORDS if len(w) <= 5)
        assert sorted(result.column("l")) == expected

    def test_equality_filter_via_range(self, word_store):
        result = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) FILTER (?l = 4) }}"
        )
        assert result.column("l") == [4] * sum(1 for w in WORDS if len(w) == 4)


class TestJoins:
    def test_subject_join_two_patterns(self, word_store):
        result = word_store.query(
            f"SELECT ?w,?l WHERE {{ (?o,{TEXT_ATTR},?w) (?o,{LEN_ATTR},?l) "
            "FILTER (dist(?w,'grape') <= 1) }"
        )
        for row in result.rows:
            assert row["l"] == len(row["w"])

    def test_residual_filter_applied(self, word_store):
        result = word_store.query(
            f"SELECT ?w,?l WHERE {{ (?o,{TEXT_ATTR},?w) (?o,{LEN_ATTR},?l) "
            "FILTER (dist(?w,'apple') <= 2) FILTER (?l != 5) }"
        )
        assert all(row["l"] != 5 for row in result.rows)
        assert result.rows  # 'apples', 'applet', ...

    def test_similarity_join_between_variables(self, word_store):
        result = word_store.query(
            f"SELECT ?a,?b WHERE {{ (?x,{TEXT_ATTR},?a) (?y,{TEXT_ATTR},?b) "
            "FILTER (dist(?a,'band') <= 0) FILTER (dist(?b,?a) <= 2) }"
        )
        expected = sorted(w for w in WORDS if edit_distance("band", w) <= 2)
        assert sorted(result.column("b")) == expected


class TestModifiers:
    def test_order_by_asc(self, word_store):
        result = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) }} ORDER BY ?l"
        )
        assert result.column("l") == sorted(len(w) for w in WORDS)

    def test_order_by_desc_limit(self, word_store):
        result = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) }} ORDER BY ?l DESC LIMIT 3"
        )
        assert result.column("l") == sorted(
            (len(w) for w in WORDS), reverse=True
        )[:3]

    def test_order_by_nn_string(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) }} "
            "ORDER BY ?w NN 'apple' LIMIT 4"
        )
        got = [edit_distance("apple", w) for w in result.column("w")]
        expected = sorted(edit_distance("apple", w) for w in WORDS)[:4]
        assert got == expected

    def test_offset(self, word_store):
        full = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) }} ORDER BY ?l LIMIT 10"
        )
        shifted = word_store.query(
            f"SELECT ?l WHERE {{ (?o,{LEN_ATTR},?l) }} "
            "ORDER BY ?l LIMIT 5 OFFSET 5"
        )
        assert shifted.column("l") == full.column("l")[5:10]

    def test_top_n_pushdown_survives_join_filtering(self, word_store):
        # The top-N push-down must overfetch past rows the filter kills.
        result = word_store.query(
            f"SELECT ?w,?l WHERE {{ (?o,{LEN_ATTR},?l) (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') <= 2) } ORDER BY ?l DESC LIMIT 2"
        )
        similar_words = [w for w in WORDS if edit_distance("apple", w) <= 2]
        expected = sorted((len(w) for w in similar_words), reverse=True)[:2]
        assert result.column("l") == expected


class TestCostReporting:
    def test_cost_positive(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') <= 1) }"
        )
        assert result.cost.messages > 0
        assert result.plan.steps

    def test_stats_accumulate(self, word_store):
        before = word_store.stats.queries
        word_store.query(f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},'apple') (?o,{TEXT_ATTR},?w) }}")
        assert word_store.stats.queries == before + 1


class TestCarScenarios:
    def test_paper_example_one_shape(self, car_store):
        result = car_store.query(
            """
            SELECT ?n,?h,?p
            WHERE { (?o,car:name,?n) (?o,car:hp,?h) (?o,car:price,?p)
            FILTER (?p < 50000) }
            ORDER BY ?h DESC LIMIT 5
            """
        )
        assert len(result) <= 5
        hps = result.column("h")
        assert hps == sorted(hps, reverse=True)
        assert all(row["p"] < 50000 for row in result.rows)

    def test_schema_level_typo_detection(self, car_store):
        result = car_store.query(
            """
            SELECT ?d,?a
            WHERE { (?d,?a,?id) FILTER (dist(?a,'dealer:dlrid') < 3) }
            ORDER BY ?a NN 'dealer:dlrid'
            """
        )
        attributes = set(result.column("a"))
        assert "dealer:dlrid" in attributes
        assert any(a != "dealer:dlrid" for a in attributes)  # typo variants

    def test_instance_similarity_finds_typos(self, car_store):
        result = car_store.query(
            """
            SELECT ?n WHERE { (?o,car:name,?n)
            FILTER (dist(?n,'bmw roadster') <= 2) }
            """
        )
        names = set(result.column("n"))
        assert "bmw roadster" in names
