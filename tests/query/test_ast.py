"""Unit tests for AST validation and introspection."""

import pytest

from repro.core.errors import QueryError
from repro.query.ast import (
    CompareOp,
    Comparison,
    Const,
    DistCall,
    OrderBy,
    SelectQuery,
    TriplePattern,
    Var,
)


def pattern(s="o", p="name", o="v"):
    return TriplePattern(Var(s), Const(p), Var(o))


class TestTriplePattern:
    def test_variables(self):
        tp = TriplePattern(Var("o"), Var("a"), Const(5))
        assert tp.variables() == {"o", "a"}

    def test_str(self):
        assert str(pattern()) == "(?o,'name',?v)"


class TestComparison:
    def test_variables_include_dist_operands(self):
        comparison = Comparison(
            DistCall(Var("a"), Var("b")), CompareOp.LT, Const(2)
        )
        assert comparison.variables() == {"a", "b"}

    def test_distance_predicate_detection(self):
        good = Comparison(DistCall(Var("a"), Const("x")), CompareOp.LT, Const(2))
        assert good.is_distance_predicate()
        bad = Comparison(Var("a"), CompareOp.LT, Const(2))
        assert not bad.is_distance_predicate()
        ge = Comparison(DistCall(Var("a"), Const("x")), CompareOp.GE, Const(2))
        assert not ge.is_distance_predicate()


class TestSelectQueryValidation:
    def test_valid_query(self):
        query = SelectQuery(select=(Var("v"),), patterns=(pattern(),))
        assert query.pattern_variables() == {"o", "v"}

    def test_rejects_empty_select(self):
        with pytest.raises(QueryError):
            SelectQuery(select=(), patterns=(pattern(),))

    def test_rejects_no_patterns(self):
        with pytest.raises(QueryError):
            SelectQuery(select=(Var("v"),), patterns=())

    def test_rejects_unbound_select_variable(self):
        with pytest.raises(QueryError):
            SelectQuery(select=(Var("zz"),), patterns=(pattern(),))

    def test_rejects_unbound_filter_variable(self):
        comparison = Comparison(Var("zz"), CompareOp.LT, Const(1))
        with pytest.raises(QueryError):
            SelectQuery(
                select=(Var("v"),), patterns=(pattern(),), filters=(comparison,)
            )

    def test_rejects_unbound_order_variable(self):
        with pytest.raises(QueryError):
            SelectQuery(
                select=(Var("v"),),
                patterns=(pattern(),),
                order_by=OrderBy(Var("zz")),
            )

    def test_rejects_negative_limit(self):
        with pytest.raises(QueryError):
            SelectQuery(select=(Var("v"),), patterns=(pattern(),), limit=-1)

    def test_rejects_negative_offset(self):
        with pytest.raises(QueryError):
            SelectQuery(select=(Var("v"),), patterns=(pattern(),), offset=-1)

    def test_str_round_trippable_through_parser(self):
        from repro.query.parser import parse

        query = SelectQuery(
            select=(Var("v"),),
            patterns=(pattern(),),
            filters=(Comparison(Var("v"), CompareOp.NE, Const(3)),),
            order_by=OrderBy(Var("v")),
            limit=4,
            offset=1,
        )
        reparsed = parse(str(query))
        assert reparsed.select == query.select
        assert reparsed.limit == 4
        assert reparsed.offset == 1
