"""Unit tests for statistics collection and cost-based planning."""

import pytest

from repro.core.errors import QueryError
from repro.query.operators.base import OperatorContext
from repro.query.parser import parse
from repro.query.planner import AccessMethod, plan
from repro.query.statistics import (
    AttributeStatistics,
    collect_statistics,
)

from tests.conftest import LEN_ATTR, TEXT_ATTR, WORDS, build_word_network


@pytest.fixture(scope="module")
def ctx():
    return OperatorContext(build_word_network(n_peers=48))


@pytest.fixture(scope="module")
def catalog(ctx):
    return collect_statistics(ctx, [TEXT_ATTR, LEN_ATTR], sample_partitions=64)


class TestCollection:
    def test_row_counts_exact_with_full_sampling(self, catalog):
        assert catalog.get(TEXT_ATTR).row_count == len(WORDS)
        assert catalog.get(LEN_ATTR).row_count == len(WORDS)

    def test_distinct_estimate(self, catalog):
        assert catalog.get(TEXT_ATTR).distinct_estimate == len(set(WORDS))

    def test_numeric_bounds(self, catalog):
        stats = catalog.get(LEN_ATTR)
        assert stats.numeric_min == min(len(w) for w in WORDS)
        assert stats.numeric_max == max(len(w) for w in WORDS)
        assert stats.is_numeric

    def test_string_attribute_shape(self, catalog):
        stats = catalog.get(TEXT_ATTR)
        assert not stats.is_numeric
        expected_mean = sum(len(w) for w in WORDS) / len(WORDS)
        assert stats.mean_string_length == pytest.approx(expected_mean, rel=0.01)

    def test_histogram_sums_to_rows(self, catalog):
        stats = catalog.get(LEN_ATTR)
        assert sum(stats.histogram) >= stats.numeric_rows

    def test_sampling_costs_messages(self, ctx):
        ctx.network.tracer.reset()
        collect_statistics(ctx, [TEXT_ATTR], sample_partitions=2)
        assert ctx.network.tracer.counts_by_phase["stats"] > 0

    def test_sampled_extrapolation_close(self, ctx):
        sampled = collect_statistics(ctx, [TEXT_ATTR], sample_partitions=3)
        rows = sampled.get(TEXT_ATTR).row_count
        assert rows == pytest.approx(len(WORDS), rel=1.5)

    def test_invalid_sample_count(self, ctx):
        with pytest.raises(QueryError):
            collect_statistics(ctx, [TEXT_ATTR], sample_partitions=0)


class TestSelectivityEstimators:
    def _stats(self):
        return AttributeStatistics(
            attribute="a",
            row_count=1000,
            distinct_estimate=100,
            numeric_min=0.0,
            numeric_max=100.0,
            histogram=[62] * 16,
            numeric_rows=1000,
        )

    def test_equality(self):
        assert self._stats().estimate_equality_rows() == 10.0

    def test_range_full_span(self):
        stats = self._stats()
        assert stats.estimate_range_rows(0.0, 100.0) == pytest.approx(
            sum(stats.histogram)
        )

    def test_range_partial(self):
        stats = self._stats()
        half = stats.estimate_range_rows(0.0, 50.0)
        assert half == pytest.approx(sum(stats.histogram) / 2, rel=0.1)

    def test_range_outside(self):
        assert self._stats().estimate_range_rows(200.0, 300.0) == 0.0

    def test_similarity_monotone_in_d(self):
        stats = self._stats()
        stats.mean_string_length = 8.0
        assert (
            stats.estimate_similarity_rows(0)
            <= stats.estimate_similarity_rows(1)
            <= stats.estimate_similarity_rows(3)
        )

    def test_similarity_capped_at_rows(self):
        stats = self._stats()
        stats.mean_string_length = 8.0
        assert stats.estimate_similarity_rows(5) <= stats.row_count


class TestCostBasedPlanning:
    def test_estimates_annotated(self, catalog):
        plan_ = plan(
            parse(
                f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
                "FILTER (dist(?w,'apple') <= 1) }"
            ),
            catalog,
        )
        assert plan_.steps[0].estimated_rows is not None
        assert "rows" in plan_.explain()

    def test_selective_range_ordered_before_loose_similarity(self, catalog):
        # A very narrow range (few rows) should run before a broad d=3
        # similarity predicate under cost-based ordering.
        plan_ = plan(
            parse(
                f"SELECT ?w,?l WHERE {{ (?o,{TEXT_ATTR},?w) (?o,{LEN_ATTR},?l) "
                "FILTER (?l >= 8) FILTER (?l <= 8) "
                "FILTER (dist(?w,'apple') <= 3) }"
            ),
            catalog,
        )
        assert plan_.steps[0].method is AccessMethod.RANGE

    def test_tight_similarity_ordered_before_wide_range(self, catalog):
        # Exact-ish similarity (d=0) beats a whole-domain range.
        plan_ = plan(
            parse(
                f"SELECT ?w,?l WHERE {{ (?o,{TEXT_ATTR},?w) (?o,{LEN_ATTR},?l) "
                "FILTER (?l >= 0) FILTER (dist(?w,'apple') <= 0) }"
            ),
            catalog,
        )
        assert plan_.steps[0].method is AccessMethod.STRING_SIMILARITY

    def test_without_catalog_static_ranks(self):
        plan_ = plan(
            parse(
                f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
                "FILTER (dist(?w,'apple') <= 1) }"
            )
        )
        assert plan_.steps[0].estimated_rows is None

    def test_store_analyze_roundtrip(self, word_store):
        catalog = word_store.analyze([TEXT_ATTR, LEN_ATTR])
        assert word_store.catalog is catalog
        text = word_store.explain(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (dist(?w,'apple') <= 1) }"
        )
        assert "rows" in text
        word_store.catalog = None  # leave shared fixture unchanged
