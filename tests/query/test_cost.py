"""Unit and property tests for the strategy cost model (query/cost.py)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.overlay.network import PGridNetwork
from repro.query.cost import (
    CANDIDATE_STRATEGIES,
    CostPrediction,
    StrategyCostModel,
    StrategyDecision,
)
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.query.statistics import collect_statistics
from repro.similarity.edit_distance import edit_distance
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, build_word_network

ATTR = "t:v"


def build_ctx(words, n_peers, seed=2):
    config = StoreConfig(seed=seed)
    triples = [Triple(f"x:{i:03d}", ATTR, w) for i, w in enumerate(words)]
    probe = PGridNetwork(1, config)
    sample = [e.key for e in probe.entry_factory.entries_for_all(triples)]
    network = PGridNetwork(n_peers, config, sample_keys=sample)
    network.insert_triples(triples)
    return OperatorContext(network)


@pytest.fixture(scope="module")
def word_model_ctx():
    ctx = OperatorContext(build_word_network(n_peers=48))
    ctx.catalog = collect_statistics(ctx, [TEXT_ATTR], sample_partitions=64)
    return ctx


class TestPredictions:
    def test_all_candidates_predicted(self, word_model_ctx):
        model = StrategyCostModel(word_model_ctx.network)
        predictions = model.predict_all(
            "apple", TEXT_ATTR, 1, word_model_ctx.catalog
        )
        assert set(predictions) == {s.value for s in CANDIDATE_STRATEGIES}
        for prediction in predictions.values():
            assert isinstance(prediction, CostPrediction)
            assert prediction.messages > 0
            assert prediction.payload_bytes > 0
            assert prediction.latency_ms > 0

    def test_naive_grows_with_network_fixed_grams_do_not(self):
        """The crossover driver: naive is Θ(region), grams are Θ(log)."""
        words = [f"word{i:02d}" for i in range(40)]
        small = build_ctx(words, 16)
        large = build_ctx(words, 256)
        naive_small = StrategyCostModel(small.network).predict(
            "word01", ATTR, 1, SimilarityStrategy.NAIVE
        )
        naive_large = StrategyCostModel(large.network).predict(
            "word01", ATTR, 1, SimilarityStrategy.NAIVE
        )
        gram_small = StrategyCostModel(small.network).predict(
            "word01", ATTR, 1, SimilarityStrategy.QGRAM
        )
        gram_large = StrategyCostModel(large.network).predict(
            "word01", ATTR, 1, SimilarityStrategy.QGRAM
        )
        naive_growth = naive_large.messages / naive_small.messages
        gram_growth = gram_large.messages / gram_small.messages
        assert naive_growth > gram_growth
        assert naive_large.messages > naive_small.messages

    def test_qsample_at_most_qgram_lookups(self, word_model_ctx):
        model = StrategyCostModel(word_model_ctx.network)
        qgram = model.predict(
            "similarity", TEXT_ATTR, 1, SimilarityStrategy.QGRAM,
            word_model_ctx.catalog,
        )
        qsample = model.predict(
            "similarity", TEXT_ATTR, 1, SimilarityStrategy.QSAMPLE,
            word_model_ctx.catalog,
        )
        assert qsample.messages <= qgram.messages

    def test_monotone_in_distance(self, word_model_ctx):
        model = StrategyCostModel(word_model_ctx.network)
        costs = [
            model.predict(
                "apple", TEXT_ATTR, d, SimilarityStrategy.QGRAM,
                word_model_ctx.catalog,
            ).messages
            for d in (0, 1, 2, 3)
        ]
        assert costs == sorted(costs)

    def test_adaptive_itself_not_predictable(self, word_model_ctx):
        from repro.core.errors import ExecutionError

        model = StrategyCostModel(word_model_ctx.network)
        with pytest.raises(ExecutionError):
            model.predict(
                "apple", TEXT_ATTR, 1, SimilarityStrategy.ADAPTIVE
            )


class TestChoose:
    def test_decision_shape(self, word_model_ctx):
        model = StrategyCostModel(word_model_ctx.network)
        decision = model.choose("apple", TEXT_ATTR, 1, word_model_ctx.catalog)
        assert isinstance(decision, StrategyDecision)
        assert decision.chosen in CANDIDATE_STRATEGIES
        assert decision.chosen.is_physical
        assert decision.predicted is decision.predictions[decision.chosen.value]
        assert decision.actual_messages is None
        decision.record_actual(10, 200)
        assert decision.actual_messages == 10
        assert "->" in decision.summary()

    def test_empty_statistics_fallback(self):
        """No catalog: the decision degrades to structure, still sane."""
        ctx = build_ctx(["alpha", "beta", "gamma"], 16)
        model = StrategyCostModel(ctx.network)
        decision = model.choose("alpha", ATTR, 1, catalog=None)
        assert decision.chosen.is_physical
        assert set(decision.predictions) == {
            s.value for s in CANDIDATE_STRATEGIES
        }

    def test_deterministic(self, word_model_ctx):
        model = StrategyCostModel(word_model_ctx.network)
        first = model.choose("apple", TEXT_ATTR, 2, word_model_ctx.catalog)
        second = model.choose("apple", TEXT_ATTR, 2, word_model_ctx.catalog)
        assert first.chosen is second.chosen
        assert first.predicted.messages == second.predicted.messages


class TestAdaptiveOperator:
    def test_adaptive_matches_brute_force(self):
        """Whatever the model picks, results stay correct."""
        words = ["apple", "apply", "ample", "maple", "grape", "grace"]
        ctx = build_ctx(words, 24)
        ctx.strategy = SimilarityStrategy.ADAPTIVE
        result = similar(ctx, "aple", ATTR, 1)
        expected = sorted(w for w in words if edit_distance("aple", w) <= 1)
        assert sorted(m.matched for m in result.matches) == expected
        assert result.extras.get("adaptive") == 1

    def test_decision_logged_with_actuals(self):
        ctx = build_ctx(["apple", "apply", "ample"], 16)
        ctx.strategy = SimilarityStrategy.ADAPTIVE
        assert ctx.decision_log == []
        similar(ctx, "apple", ATTR, 1)
        assert len(ctx.decision_log) == 1
        decision = ctx.decision_log[0]
        assert decision.search == "apple"
        assert decision.d == 1
        assert decision.actual_messages is not None
        assert decision.actual_messages > 0
        assert decision.actual_payload_bytes is not None

    def test_adaptive_without_stats_runs(self):
        """Empty-catalog fallback through the operator path."""
        ctx = build_ctx(["solo"], 8)
        ctx.strategy = SimilarityStrategy.ADAPTIVE
        result = similar(ctx, "solo", ATTR, 0)
        assert [m.matched for m in result.matches] == ["solo"]
        assert ctx.catalog is None
        assert ctx.cost_model is not None  # lazily created

    def test_collected_variant_resolves_adaptive(self):
        """The non-delegated operator resolves ADAPTIVE the same way."""
        from repro.query.operators.collected import similar_collected

        words = ["apple", "apply", "ample", "maple", "grape", "grace"]
        ctx = build_ctx(words, 24)
        ctx.strategy = SimilarityStrategy.ADAPTIVE
        result = similar_collected(ctx, "aple", ATTR, 1)
        expected = sorted(w for w in words if edit_distance("aple", w) <= 1)
        assert sorted(m.matched for m in result.matches) == expected
        assert result.extras.get("adaptive") == 1
        assert len(ctx.decision_log) == 1
        assert ctx.decision_log[0].actual_messages is not None

    def test_from_name(self):
        assert (
            SimilarityStrategy.from_name("adaptive")
            is SimilarityStrategy.ADAPTIVE
        )


class TestRankingProperty:
    """The acceptance bound: the model's pick is never a disaster.

    On small random networks the strategy the model ranks cheapest must
    measure within 2x of the actually-cheapest strategy (plus a small
    absolute slack for degenerate, single-digit-message cases).
    """

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.text(alphabet="abcdef", min_size=2, max_size=10),
            min_size=4,
            max_size=16,
            unique=True,
        ),
        st.integers(min_value=8, max_value=48),
        st.integers(min_value=0, max_value=2),
    )
    def test_predicted_ranking_tracks_measured_messages(
        self, words, n_peers, d
    ):
        ctx = build_ctx(words, n_peers)
        ctx.catalog = collect_statistics(ctx, [ATTR], sample_partitions=8)
        model = StrategyCostModel(ctx.network)
        query = words[0]
        decision = model.choose(query, ATTR, d, ctx.catalog)
        tracer = ctx.network.tracer
        measured = {}
        for strategy in CANDIDATE_STRATEGIES:
            before = tracer.snapshot()
            similar(ctx, query, ATTR, d, initiator_id=0, strategy=strategy)
            measured[strategy] = before.delta(tracer.snapshot()).messages
        best = min(measured.values())
        assert measured[decision.chosen] <= 2 * best + 16
