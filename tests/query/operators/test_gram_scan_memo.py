"""Gram-peer scan memoization is cost- and result-transparent.

``GramScanMemo`` replaces the per-query posting scan + threshold
filters with a precomputed minimal-admitting-distance table; these
tests pin that the replacement changes nothing observable — matches,
tallies, messages — across strategies, distances, and filter configs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import GramScanMemo, similar
from repro.similarity.filters import FilterConfig
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, WORDS, build_word_network

PROBES = [
    ("apple", 0), ("apple", 1), ("apple", 2), ("apple", 3),
    ("grape", 1), ("banana", 2), ("overlay", 1), ("apple", 1),
]


def run_probes(strategy, memoize, filters=None):
    network = build_word_network(n_peers=48)
    ctx = OperatorContext(
        network,
        strategy=strategy,
        filters=filters if filters is not None else FilterConfig(),
        gram_scan_memo=GramScanMemo(network) if memoize else None,
    )
    observations = []
    for index, (search, d) in enumerate(PROBES):
        network.tracer.reset()
        result = similar(
            ctx, search, TEXT_ATTR, d, initiator_id=index % network.n_peers
        )
        snapshot = network.tracer.snapshot()
        observations.append(
            (
                [(m.oid, m.matched, m.distance) for m in result.matches],
                result.candidates_after_filters,
                result.candidates_verified,
                snapshot.messages,
                snapshot.payload_bytes,
                snapshot.by_type,
                snapshot.by_phase,
            )
        )
    return ctx.gram_scan_memo, observations


class TestGramScanMemo:
    def test_qgram_probes_identical_with_memo(self):
        memo, memoized = run_probes(SimilarityStrategy.QGRAM, memoize=True)
        __, plain = run_probes(SimilarityStrategy.QGRAM, memoize=False)
        assert memoized == plain
        assert memo.hits > 0

    def test_qsample_probes_identical_with_memo(self):
        memo, memoized = run_probes(SimilarityStrategy.QSAMPLE, memoize=True)
        __, plain = run_probes(SimilarityStrategy.QSAMPLE, memoize=False)
        assert memoized == plain

    @settings(max_examples=10, deadline=None)
    @given(
        use_position=st.booleans(),
        use_length=st.booleans(),
        word_index=st.integers(0, len(WORDS) - 1),
        d=st.integers(0, 3),
    )
    def test_filter_configs_identical_with_memo(
        self, use_position, use_length, word_index, d
    ):
        """The threshold translation is exact for every filter subset."""
        filters = FilterConfig(use_position=use_position, use_length=use_length)
        search = WORDS[word_index]

        def one(memoize):
            network = build_word_network(n_peers=32)
            ctx = OperatorContext(
                network,
                strategy=SimilarityStrategy.QGRAM,
                filters=filters,
                gram_scan_memo=GramScanMemo(network) if memoize else None,
            )
            result = similar(ctx, search, TEXT_ATTR, d, initiator_id=0)
            return (
                [(m.oid, m.distance) for m in result.matches],
                result.candidates_after_filters,
                network.tracer.snapshot().messages,
            )

        assert one(True) == one(False)

    def test_store_mutation_invalidates_cached_scans(self):
        network = build_word_network(n_peers=32)
        memo = GramScanMemo(network)
        ctx = OperatorContext(
            network, strategy=SimilarityStrategy.QGRAM, gram_scan_memo=memo
        )
        before = similar(ctx, "apple", TEXT_ATTR, 0, initiator_id=0)
        network.insert_triples([Triple("w:9999", TEXT_ATTR, "apple")])
        after = similar(ctx, "apple", TEXT_ATTR, 0, initiator_id=0)
        assert memo.invalidations >= 1
        assert {m.oid for m in after.matches} == (
            {m.oid for m in before.matches} | {"w:9999"}
        )

    def test_clear_resets_cache(self):
        network = build_word_network(n_peers=32)
        memo = GramScanMemo(network)
        ctx = OperatorContext(
            network, strategy=SimilarityStrategy.QGRAM, gram_scan_memo=memo
        )
        similar(ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
        assert len(memo) > 0
        memo.clear()
        assert len(memo) == 0
