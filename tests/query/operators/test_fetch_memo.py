"""FetchObjectsMemo: cost transparency and the static-store contract.

The memo may only change wall-clock: reconstructed objects, match sets,
and every charged message/byte must be identical with it on or off, and
any store mutation must invalidate affected entries (enforced through
the per-entry version check even without an engine-level clear).
"""


from repro.core.config import SimilarityStrategy, StoreConfig
from repro.query.operators.base import FetchObjectsMemo, OperatorContext
from repro.query.operators.similar import similar
from repro.query.operators.topn import top_n_string_nn
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, build_word_network

QUERIES = [("apple", 1), ("grape", 2), ("apple", 1), ("berry", 1)]


def fresh_ctx(memoize: bool):
    network = build_word_network(n_peers=32, config=StoreConfig(seed=11))
    memo = FetchObjectsMemo(network) if memoize else None
    return OperatorContext(
        network, strategy=SimilarityStrategy.QGRAM, fetch_memo=memo
    )


class TestCostTransparency:
    def test_similar_series_identical(self):
        plain = fresh_ctx(memoize=False)
        memoized = fresh_ctx(memoize=True)
        for ctx in (plain, memoized):
            ctx.network.tracer.reset()
        for search, d in QUERIES:
            for ctx in (plain, memoized):
                result = similar(ctx, search, TEXT_ATTR, d, initiator_id=3)
                result.matches  # noqa: B018 - force evaluation
        plain_snap = plain.network.tracer.snapshot()
        memo_snap = memoized.network.tracer.snapshot()
        assert plain_snap.messages == memo_snap.messages
        assert plain_snap.payload_bytes == memo_snap.payload_bytes
        assert plain_snap.by_type == memo_snap.by_type
        assert memoized.fetch_memo.hits > 0  # repeats actually replayed

    def test_matches_identical(self):
        plain = fresh_ctx(memoize=False)
        memoized = fresh_ctx(memoize=True)
        for search, d in QUERIES:
            a = similar(plain, search, TEXT_ATTR, d, initiator_id=5)
            b = similar(memoized, search, TEXT_ATTR, d, initiator_id=5)
            assert [(m.oid, m.matched, m.distance, m.triples) for m in a.matches] == [
                (m.oid, m.matched, m.distance, m.triples) for m in b.matches
            ]

    def test_topn_deepening_hits_memo(self):
        ctx = fresh_ctx(memoize=True)
        top_n_string_nn(ctx, TEXT_ATTR, "apple", 5, initiator_id=1)
        assert ctx.fetch_memo.hits > 0


class TestInvalidation:
    def test_version_bump_recomputes(self):
        ctx = fresh_ctx(memoize=True)
        first = similar(ctx, "apple", TEXT_ATTR, 0, initiator_id=2)
        oid = first.matches[0].oid
        assert len(ctx.fetch_memo) > 0
        # Grow the matched object out-of-band: the oid peer's store
        # version changes, so the cached rebuild must not be replayed.
        ctx.network.insert_triples([Triple(oid, "word:lang", "en")])
        again = similar(ctx, "apple", TEXT_ATTR, 0, initiator_id=2)
        match = next(m for m in again.matches if m.oid == oid)
        assert any(t.attribute == "word:lang" for t in match.triples)
        assert ctx.fetch_memo.invalidations > 0

    def test_clear(self):
        ctx = fresh_ctx(memoize=True)
        similar(ctx, "apple", TEXT_ATTR, 1, initiator_id=2)
        assert len(ctx.fetch_memo) > 0
        ctx.fetch_memo.clear()
        assert len(ctx.fetch_memo) == 0
