"""Unit tests for string range and prefix selections."""

import pytest

from repro.core.errors import ExecutionError
from repro.query.operators.base import OperatorContext
from repro.query.operators.string_range import select_prefix, select_string_range

from tests.conftest import TEXT_ATTR, WORDS, build_word_network


@pytest.fixture(scope="module")
def ctx():
    return OperatorContext(build_word_network(n_peers=48))


class TestStringRange:
    def test_inclusive_range(self, ctx):
        triples = select_string_range(ctx, TEXT_ATTR, "apple", "banana")
        expected = sorted(w for w in WORDS if "apple" <= w <= "banana")
        assert [t.value for t in triples] == expected

    def test_strict_bounds(self, ctx):
        triples = select_string_range(
            ctx, TEXT_ATTR, "apple", "banana", lo_strict=True, hi_strict=True
        )
        expected = sorted(w for w in WORDS if "apple" < w < "banana")
        assert [t.value for t in triples] == expected

    def test_empty_range_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            select_string_range(ctx, TEXT_ATTR, "z", "a")

    def test_point_range(self, ctx):
        triples = select_string_range(ctx, TEXT_ATTR, "cherry", "cherry")
        assert [t.value for t in triples] == ["cherry"]

    def test_full_range(self, ctx):
        triples = select_string_range(ctx, TEXT_ATTR, "", "\x7f")
        assert sorted(t.value for t in triples) == sorted(WORDS)


class TestPrefix:
    def test_prefix_search(self, ctx):
        triples = select_prefix(ctx, TEXT_ATTR, "app")
        expected = sorted(w for w in WORDS if w.startswith("app"))
        assert [t.value for t in triples] == expected

    def test_prefix_no_matches(self, ctx):
        assert select_prefix(ctx, TEXT_ATTR, "zzz") == []

    def test_single_char_prefix(self, ctx):
        triples = select_prefix(ctx, TEXT_ATTR, "o")
        expected = sorted(w for w in WORDS if w.startswith("o"))
        assert [t.value for t in triples] == expected

    def test_empty_prefix_scans_all(self, ctx):
        triples = select_prefix(ctx, TEXT_ATTR, "")
        assert sorted(t.value for t in triples) == sorted(WORDS)

    def test_whole_word_prefix(self, ctx):
        triples = select_prefix(ctx, TEXT_ATTR, "grape")
        assert sorted(t.value for t in triples) == ["grape", "grapes"]


class TestVQLIntegration:
    def test_string_range_pushdown_planned(self, word_store):
        text = (
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (?w >= 'apple') FILTER (?w <= 'banana') }"
        )
        assert "string_range" in word_store.explain(text)

    def test_string_range_query_results(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) "
            "FILTER (?w >= 'apple') FILTER (?w < 'banana') }"
        )
        expected = sorted(w for w in WORDS if "apple" <= w < "banana")
        assert sorted(result.column("w")) == expected

    def test_one_sided_string_range(self, word_store):
        result = word_store.query(
            f"SELECT ?w WHERE {{ (?o,{TEXT_ATTR},?w) FILTER (?w > 'pear') }}"
        )
        expected = sorted(w for w in WORDS if w > "pear")
        assert sorted(result.column("w")) == expected
