"""Unit tests for the Similar operator (Algorithm 2), all strategies."""

import pytest

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.core.errors import ExecutionError
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.similarity.edit_distance import edit_distance

from tests.conftest import TEXT_ATTR, WORDS, build_word_network


@pytest.fixture(scope="module")
def ctx():
    return OperatorContext(build_word_network(n_peers=48))


def brute_force(query, d):
    return sorted(w for w in WORDS if edit_distance(query, w) <= d)


GRAM_STRATEGIES = [SimilarityStrategy.QGRAM, SimilarityStrategy.QSAMPLE]
ALL = GRAM_STRATEGIES + [SimilarityStrategy.NAIVE]


class TestInstanceLevel:
    @pytest.mark.parametrize("strategy", ALL)
    @pytest.mark.parametrize("query,d", [
        ("apple", 1), ("apple", 2), ("grape", 1), ("band", 2),
        ("cherry", 2), ("overlay", 1), ("overlay", 2),
    ])
    def test_matches_brute_force(self, ctx, strategy, query, d):
        result = similar(ctx, query, TEXT_ATTR, d, strategy=strategy)
        assert sorted(m.matched for m in result.matches) == brute_force(query, d)

    @pytest.mark.parametrize("strategy", ALL)
    def test_no_matches_for_distant_string(self, ctx, strategy):
        result = similar(ctx, "zzzzzzzz", TEXT_ATTR, 1, strategy=strategy)
        assert result.matches == []

    @pytest.mark.parametrize("strategy", ALL)
    def test_exact_match_d_zero(self, ctx, strategy):
        result = similar(ctx, "banana", TEXT_ATTR, 0, strategy=strategy)
        assert [m.matched for m in result.matches] == ["banana"]
        assert result.matches[0].distance == 0

    def test_matches_carry_complete_objects(self, ctx):
        result = similar(ctx, "apple", TEXT_ATTR, 0)
        match = result.matches[0]
        attributes = {t.attribute for t in match.triples}
        assert attributes == {TEXT_ATTR, "word:len"}

    def test_results_sorted_by_distance(self, ctx):
        result = similar(ctx, "apple", TEXT_ATTR, 2)
        distances = [m.distance for m in result.matches]
        assert distances == sorted(distances)

    def test_negative_distance_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            similar(ctx, "apple", TEXT_ATTR, -1)

    def test_unknown_attribute_empty(self, ctx):
        result = similar(ctx, "apple", "word:nosuch", 2)
        assert result.matches == []


class TestSchemaLevel:
    @pytest.mark.parametrize("strategy", ALL)
    def test_finds_attribute_names(self, ctx, strategy):
        result = similar(ctx, "word:textt", "", 1, strategy=strategy)
        matched = {m.matched for m in result.matches}
        assert matched == {TEXT_ATTR}

    def test_distance_zero_schema(self, ctx):
        result = similar(ctx, "word:len", "", 0)
        assert all(m.matched == "word:len" for m in result.matches)
        assert len(result.matches) == len(WORDS)


class TestCostCharacteristics:
    def test_qsample_cheaper_than_qgram(self, ctx):
        tracer = ctx.network.tracer
        tracer.reset()
        similar(ctx, "bandana", TEXT_ATTR, 2, strategy=SimilarityStrategy.QGRAM)
        qgram_cost = tracer.message_count
        tracer.reset()
        similar(ctx, "bandana", TEXT_ATTR, 2, strategy=SimilarityStrategy.QSAMPLE)
        qsample_cost = tracer.message_count
        assert qsample_cost < qgram_cost

    def test_diagnostics_populated(self, ctx):
        result = similar(ctx, "apple", TEXT_ATTR, 2)
        assert result.grams_looked_up > 0
        assert result.gram_partitions_contacted > 0
        assert result.candidates_after_filters >= len(result.matches)

    def test_messages_charged(self, ctx):
        ctx.network.tracer.reset()
        similar(ctx, "apple", TEXT_ATTR, 1)
        assert ctx.network.tracer.message_count > 0
        assert ctx.network.tracer.payload_bytes > 0

    def test_filters_reduce_candidates(self):
        from repro.similarity.filters import FilterConfig

        network = build_word_network(n_peers=48)
        with_filters = OperatorContext(network, filters=FilterConfig())
        without = OperatorContext(
            network, filters=FilterConfig(use_position=False, use_length=False)
        )
        a = similar(with_filters, "apple", TEXT_ATTR, 1)
        b = similar(without, "apple", TEXT_ATTR, 1)
        assert a.candidates_after_filters <= b.candidates_after_filters
        # Correctness is unaffected either way.
        assert [m.matched for m in a.matches] == [m.matched for m in b.matches]


class TestStrictCompleteness:
    def test_fallback_to_naive_outside_guarantee(self):
        config = StoreConfig(seed=7, strict_completeness=True)
        ctx = OperatorContext(build_word_network(n_peers=32, config=config))
        ctx.network.tracer.reset()
        # len("aple") = 4 < 2 + (3-1)*3 = 8: outside the guarantee.
        result = similar(ctx, "aple", TEXT_ATTR, 3)
        assert ctx.network.tracer.counts_by_type.get("broadcast", 0) > 0
        expected = brute_force("aple", 3)
        assert sorted(m.matched for m in result.matches) == expected
