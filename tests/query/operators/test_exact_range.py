"""Unit tests for exact-match and range operators."""

import pytest

from repro.query.operators.base import OperatorContext, object_from_triples
from repro.query.operators.exact import (
    equi_join,
    keyword_lookup,
    lookup_object,
    scan_attribute,
    select_equals,
)
from repro.query.operators.range_scan import numeric_similar, select_range
from repro.similarity.numeric import Interval
from repro.storage.triple import Triple

from tests.conftest import LEN_ATTR, TEXT_ATTR, WORDS, build_word_network


@pytest.fixture(scope="module")
def ctx():
    return OperatorContext(build_word_network(n_peers=48))


class TestLookupObject:
    def test_full_object(self, ctx):
        triples = lookup_object(ctx, "w:0000")
        assert {t.attribute for t in triples} == {TEXT_ATTR, LEN_ATTR}
        assert all(t.oid == "w:0000" for t in triples)

    def test_missing_object(self, ctx):
        assert lookup_object(ctx, "w:nosuch") == ()

    def test_object_from_triples_grouping(self, ctx):
        triples = lookup_object(ctx, "w:0000")
        grouped = object_from_triples(triples)
        assert grouped[TEXT_ATTR] == ["apple"]


class TestSelectEquals:
    def test_string_selection(self, ctx):
        matches = select_equals(ctx, TEXT_ATTR, "banana")
        assert [m.matched for m in matches] == ["banana"]
        assert matches[0].value_of(LEN_ATTR) == len("banana")

    def test_numeric_selection(self, ctx):
        matches = select_equals(ctx, LEN_ATTR, 5)
        expected = {w for w in WORDS if len(w) == 5}
        assert {m.value_of(TEXT_ATTR) for m in matches} == expected

    def test_no_match(self, ctx):
        assert select_equals(ctx, TEXT_ATTR, "nosuchword") == []

    def test_without_object_fetch(self, ctx):
        matches = select_equals(ctx, TEXT_ATTR, "banana", fetch_full_objects=False)
        assert len(matches) == 1
        assert matches[0].value_of(LEN_ATTR) is None  # only the hit triple


class TestKeywordLookup:
    def test_finds_value_anywhere(self, ctx):
        triples = keyword_lookup(ctx, "cherry")
        assert [(t.attribute, t.value) for t in triples] == [(TEXT_ATTR, "cherry")]

    def test_numeric_keyword(self, ctx):
        triples = keyword_lookup(ctx, 5)
        assert all(t.value == 5 for t in triples)
        assert len(triples) == sum(1 for w in WORDS if len(w) == 5)


class TestScanAttribute:
    def test_scans_all_values(self, ctx):
        triples = scan_attribute(ctx, TEXT_ATTR)
        assert {t.value for t in triples} == set(WORDS)

    def test_costs_scale_with_region(self, ctx):
        ctx.network.tracer.reset()
        scan_attribute(ctx, TEXT_ATTR)
        scan_cost = ctx.network.tracer.message_count
        ctx.network.tracer.reset()
        select_equals(ctx, TEXT_ATTR, "banana", fetch_full_objects=False)
        exact_cost = ctx.network.tracer.message_count
        assert exact_cost < scan_cost


class TestEquiJoin:
    def test_join_on_value(self):
        left = [Triple("a:1", "x", "k"), Triple("a:2", "x", "m")]
        right = [Triple("b:1", "y", "k"), Triple("b:2", "y", "k")]
        pairs = equi_join(left, right)
        assert len(pairs) == 2
        assert all(l.value == r.value for l, r in pairs)

    def test_empty_sides(self):
        assert equi_join([], [Triple("b:1", "y", "k")]) == []
        assert equi_join([Triple("a:1", "x", "k")], []) == []


class TestSelectRange:
    def test_inclusive_bounds(self, ctx):
        triples = select_range(ctx, LEN_ATTR, Interval(5.0, 7.0))
        values = sorted(t.value for t in triples)
        assert values == sorted(len(w) for w in WORDS if 5 <= len(w) <= 7)

    def test_empty_range_region(self, ctx):
        assert select_range(ctx, LEN_ATTR, Interval(500.0, 600.0)) == []

    def test_results_sorted_by_value(self, ctx):
        triples = select_range(ctx, LEN_ATTR, Interval(4.0, 10.0))
        values = [float(t.value) for t in triples]
        assert values == sorted(values)


class TestNumericSimilar:
    def test_within_distance(self, ctx):
        matches = numeric_similar(ctx, LEN_ATTR, 6.0, 1.0)
        expected = sorted(
            abs(len(w) - 6.0) for w in WORDS if abs(len(w) - 6.0) <= 1.0
        )
        assert sorted(m.distance for m in matches) == expected

    def test_full_objects_fetched(self, ctx):
        matches = numeric_similar(ctx, LEN_ATTR, 4.0, 0.0)
        assert all(m.value_of(TEXT_ATTR) is not None for m in matches)

    def test_negative_distance_rejected(self, ctx):
        from repro.core.errors import ExecutionError

        with pytest.raises(ExecutionError):
            numeric_similar(ctx, LEN_ATTR, 4.0, -1.0)
