"""Naive-broadcast memoization and the sampled-broadcast estimator.

The memo's contract mirrors the incremental builder's: *cost
transparency*.  A memoized workload must produce the same matches and
charge the same messages and bytes — phase by phase, type by type — as
an unmemoized one; only the local comparison work is skipped.  The
sampled estimator, by contrast, is openly approximate and must say so in
its result extras and keep the structural broadcast cost exact.
"""


from repro.core.config import SimilarityStrategy, StoreConfig
from repro.query.operators.base import OperatorContext
from repro.query.operators.naive import NaiveWorkloadMemo, naive_similar
from repro.storage.triple import Triple
from repro.bench.experiment import run_cell
from repro.bench.workload import make_workload

from tests.conftest import TEXT_ATTR, build_word_network, word_triples

#: A probe mix with deliberate repeats — the memo's bread and butter.
PROBES = [
    ("apple", 1), ("apple", 1), ("apple", 2), ("grape", 1),
    ("banana", 2), ("apple", 1), ("grape", 1), ("cherry", 3),
]


def run_probes(memo):
    """Replay PROBES on a fresh network; returns (tracer totals, matches)."""
    network = build_word_network(n_peers=48)
    ctx = OperatorContext(
        network, strategy=SimilarityStrategy.NAIVE, naive_memo=memo(network)
        if memo else None,
    )
    totals = []
    matches = []
    for index, (search, d) in enumerate(PROBES):
        network.tracer.reset()
        result = naive_similar(
            ctx, search, TEXT_ATTR, d, initiator_id=index % network.n_peers
        )
        snapshot = network.tracer.snapshot()
        totals.append(
            (snapshot.messages, snapshot.payload_bytes, snapshot.by_type,
             snapshot.by_phase)
        )
        matches.append([(m.oid, m.matched, m.distance) for m in result.matches])
    return totals, matches


class TestNaiveWorkloadMemo:
    def test_memoized_probes_charge_identical_costs(self):
        plain_totals, plain_matches = run_probes(memo=None)
        memo_totals, memo_matches = run_probes(memo=NaiveWorkloadMemo)
        assert memo_totals == plain_totals
        assert memo_matches == plain_matches

    def test_memo_hits_repeated_queries(self):
        network = build_word_network(n_peers=48)
        memo = NaiveWorkloadMemo(network)
        ctx = OperatorContext(
            network, strategy=SimilarityStrategy.NAIVE, naive_memo=memo
        )
        for __, (search, d) in enumerate(PROBES):
            naive_similar(ctx, search, TEXT_ATTR, d, initiator_id=0)
        # The memo computes once per (s, attribute) region at its band,
        # so every later distance on the same search string is a hit.
        unique = len({search for search, __ in PROBES})
        assert memo.misses == unique
        assert memo.hits == len(PROBES) - unique
        assert len(memo) == unique

    def test_store_mutation_invalidates_cached_outcomes(self):
        """The static-store contract is enforced, not just documented.

        Inserting data after a memoized query must invalidate the cached
        region comparison — a stale replay would silently miss the new
        match.
        """
        network = build_word_network(n_peers=48)
        memo = NaiveWorkloadMemo(network)
        ctx = OperatorContext(
            network, strategy=SimilarityStrategy.NAIVE, naive_memo=memo
        )
        before = naive_similar(ctx, "apple", TEXT_ATTR, 0, initiator_id=0)
        network.insert_triples([Triple("w:9999", TEXT_ATTR, "apple")])
        after = naive_similar(ctx, "apple", TEXT_ATTR, 0, initiator_id=0)
        assert memo.invalidations >= 1
        assert {m.oid for m in after.matches} == (
            {m.oid for m in before.matches} | {"w:9999"}
        )

    def test_clear_forces_recomputation(self):
        network = build_word_network(n_peers=48)
        memo = NaiveWorkloadMemo(network)
        ctx = OperatorContext(
            network, strategy=SimilarityStrategy.NAIVE, naive_memo=memo
        )
        naive_similar(ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
        memo.clear()
        naive_similar(ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
        assert memo.misses == 2

    def test_memoized_cell_matches_unmemoized_cell(self):
        """Whole-workload equivalence through the bench harness itself."""
        triples = word_triples()
        strings = [
            str(t.value) for t in triples if t.attribute == TEXT_ATTR
        ]
        config = StoreConfig(seed=7)
        workload = make_workload(strings, 48, repetitions=2, seed=7)
        cells = {}
        for memoize in (False, True):
            cells[memoize] = run_cell(
                triples, TEXT_ATTR, strings, 48,
                config=config, workload=workload, memoize_naive=memoize,
            )
        for strategy in cells[True].by_strategy:
            plain = cells[False].by_strategy[strategy]
            memoized = cells[True].by_strategy[strategy]
            assert memoized.messages == plain.messages
            assert memoized.payload_bytes == plain.payload_bytes
            assert memoized.by_type == plain.by_type
            assert memoized.by_phase == plain.by_phase


class TestSampledBroadcastEstimator:
    def test_off_by_default(self):
        network = build_word_network(n_peers=48)
        ctx = OperatorContext(network, strategy=SimilarityStrategy.NAIVE)
        result = naive_similar(ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
        assert "sampled" not in result.extras

    def test_sampled_run_is_flagged_and_structural_cost_exact(self):
        exact_network = build_word_network(n_peers=48)
        exact_ctx = OperatorContext(
            exact_network, strategy=SimilarityStrategy.NAIVE
        )
        exact_network.tracer.reset()
        exact = naive_similar(exact_ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
        exact_types = dict(exact_network.tracer.counts_by_type)

        sampled_network = build_word_network(n_peers=48)
        sampled_ctx = OperatorContext(
            sampled_network,
            strategy=SimilarityStrategy.NAIVE,
            naive_sample_rate=0.25,
        )
        sampled_network.tracer.reset()
        sampled = naive_similar(
            sampled_ctx, "apple", TEXT_ATTR, 1, initiator_id=0
        )
        sampled_types = dict(sampled_network.tracer.counts_by_type)

        assert sampled.extras["sampled"] == 1
        assert sampled.extras["sample_stride"] == 4
        assert sampled.extras["region_peers"] == exact.extras["region_peers"]
        # The structural broadcast cost does not depend on the sample:
        # one query copy per region peer, exactly as in the exact run.
        assert sampled_types["broadcast"] == exact_types["broadcast"]
        assert sampled_types["broadcast"] == exact.extras["region_peers"]
        # Sampled matches are a subset of the exact ones.
        exact_oids = {m.oid for m in exact.matches}
        assert {m.oid for m in sampled.matches} <= exact_oids

    def test_full_rate_stride_one_recovers_all_matches(self):
        network = build_word_network(n_peers=48)
        ctx = OperatorContext(
            network, strategy=SimilarityStrategy.NAIVE, naive_sample_rate=0.99
        )
        sampled = naive_similar(ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
        exact_network = build_word_network(n_peers=48)
        exact_ctx = OperatorContext(
            exact_network, strategy=SimilarityStrategy.NAIVE
        )
        exact = naive_similar(exact_ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
        assert {m.oid for m in sampled.matches} == {m.oid for m in exact.matches}

    def test_sampling_estimates_are_memoizable(self):
        """Memoized sampled estimates charge exactly like unmemoized ones.

        Routed-entry hops legitimately differ between calls (the router's
        RNG advances), so the comparison runs the same call sequence on
        two identically-seeded networks and compares call by call.
        """

        def run_twice(memo_factory):
            network = build_word_network(n_peers=48)
            ctx = OperatorContext(
                network,
                strategy=SimilarityStrategy.NAIVE,
                naive_memo=memo_factory(network) if memo_factory else None,
                naive_sample_rate=0.25,
            )
            snapshots = []
            for __ in range(2):
                network.tracer.reset()
                naive_similar(ctx, "apple", TEXT_ATTR, 1, initiator_id=0)
                snapshot = network.tracer.snapshot()
                snapshots.append(
                    (snapshot.messages, snapshot.payload_bytes, snapshot.by_type)
                )
            return ctx.naive_memo, snapshots

        memo, memoized = run_twice(NaiveWorkloadMemo)
        __, plain = run_twice(None)
        assert memo.hits == 1
        assert memoized == plain
