"""Workload-level equivalence of the batched verification pipeline.

The perf overhaul (secondary indexes, batched verifier, shared verifier
pools) must not change a single match: on the bible-words and
painting-titles corpora, every strategy has to return exactly the
objects a seed-style per-candidate scan finds.  Distances are checked
too — the batched DP must agree with ``edit_distance_within`` value for
value, not only on the admitted set.
"""

import pytest

from repro.core.config import SimilarityStrategy
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.datasets.paintings import TITLE_ATTRIBUTE, painting_triples
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.bench.experiment import PreparedDataset, build_network
from repro.similarity.edit_distance import edit_distance_within
from repro.storage.qgrams import guaranteed_complete

from tests.conftest import StoreConfig

CONFIG = StoreConfig(seed=0, index_values=False, index_schema_grams=False)

WORKLOADS = {
    "bible": (bible_triples, TEXT_ATTRIBUTE, 300),
    "paintings": (painting_triples, TITLE_ATTRIBUTE, 150),
}


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload(request):
    maker, attribute, size = WORKLOADS[request.param]
    triples = maker(size, seed=0)
    network = build_network(triples, 64, CONFIG)
    queries = sorted({str(t.value) for t in triples})[::17][:8]
    return OperatorContext(network), triples, attribute, queries


def brute_force(triples, attribute, query, d):
    """Seed-style verification: one banded DP per stored (oid, value)."""
    best = {}
    for triple in triples:
        distance = edit_distance_within(query, str(triple.value), d)
        if distance <= d:
            previous = best.get(triple.oid)
            if previous is None or distance < previous:
                best[triple.oid] = distance
    return best


@pytest.mark.parametrize("d", [1, 2, 3])
@pytest.mark.parametrize(
    "strategy",
    [
        SimilarityStrategy.QGRAM,
        SimilarityStrategy.QSAMPLE,
        SimilarityStrategy.NAIVE,
    ],
)
def test_match_sets_identical_to_brute_force(workload, strategy, d):
    ctx, triples, attribute, queries = workload
    for query in queries:
        result = similar(ctx, query, attribute, d, strategy=strategy)
        got = {m.oid: m.distance for m in result.matches}
        expected = brute_force(triples, attribute, query, d)
        if strategy is SimilarityStrategy.NAIVE or guaranteed_complete(
            len(query), ctx.config.q, d
        ):
            assert got == expected
        else:
            # Outside the q-gram guarantee only soundness must hold.
            assert set(got) <= set(expected)
            assert all(expected[oid] == dist for oid, dist in got.items())


def test_prepared_dataset_places_identically():
    """place_entries() must fill every store exactly like insert_triples()."""
    from repro.overlay.network import PGridNetwork

    triples = bible_triples(200, seed=1)
    prepared = PreparedDataset.prepare(triples, CONFIG)
    via_prepared = prepared.build_network(32)
    reference = PGridNetwork(32, CONFIG, sample_keys=prepared.sample_keys)
    reference.insert_triples(triples)
    assert via_prepared.total_entries() == reference.total_entries()
    for fast, slow in zip(via_prepared.peers, reference.peers):
        assert [e.key for e in fast.store] == [e.key for e in slow.store]
        assert list(fast.store) == list(slow.store)
