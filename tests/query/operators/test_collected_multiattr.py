"""Unit tests for the collected Similar variant and multi-attribute queries."""

import pytest

from repro.core.config import SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.query.operators.base import OperatorContext
from repro.query.operators.collected import similar_collected
from repro.query.operators.multiattr import (
    StringPredicate,
    euclidean_similar,
    similar_all,
)
from repro.query.operators.similar import similar
from repro.similarity.edit_distance import edit_distance
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, WORDS, build_word_network


@pytest.fixture(scope="module")
def ctx():
    return OperatorContext(build_word_network(n_peers=48))


class TestSimilarCollected:
    @pytest.mark.parametrize(
        "strategy", [SimilarityStrategy.QGRAM, SimilarityStrategy.QSAMPLE]
    )
    @pytest.mark.parametrize("query,d", [("apple", 1), ("grape", 2), ("band", 1)])
    def test_agrees_with_delegated(self, ctx, strategy, query, d):
        collected = similar_collected(ctx, query, TEXT_ATTR, d, strategy=strategy)
        delegated = similar(ctx, query, TEXT_ATTR, d, strategy=strategy)
        assert sorted(m.matched for m in collected.matches) == sorted(
            m.matched for m in delegated.matches
        )

    def test_matches_brute_force(self, ctx):
        result = similar_collected(ctx, "cherry", TEXT_ATTR, 2)
        expected = sorted(w for w in WORDS if edit_distance("cherry", w) <= 2)
        assert sorted(m.matched for m in result.matches) == expected

    def test_count_filter_prunes(self, ctx):
        with_filter = similar_collected(
            ctx, "bandana", TEXT_ATTR, 1, strategy=SimilarityStrategy.QGRAM
        )
        without = similar_collected(
            ctx,
            "bandana",
            TEXT_ATTR,
            1,
            strategy=SimilarityStrategy.QGRAM,
            use_count_filter=False,
        )
        assert with_filter.candidates_after_filters <= without.candidates_after_filters
        assert [m.matched for m in with_filter.matches] == [
            m.matched for m in without.matches
        ]

    def test_count_filter_skipped_for_samples(self, ctx):
        result = similar_collected(
            ctx, "bandana", TEXT_ATTR, 1, strategy=SimilarityStrategy.QSAMPLE
        )
        assert result.extras["count_filter_pruned"] == 0

    def test_schema_level(self, ctx):
        result = similar_collected(ctx, "word:textt", "", 1)
        assert {m.matched for m in result.matches} == {TEXT_ATTR}

    def test_naive_dispatch(self, ctx):
        result = similar_collected(
            ctx, "apple", TEXT_ATTR, 1, strategy=SimilarityStrategy.NAIVE
        )
        expected = sorted(w for w in WORDS if edit_distance("apple", w) <= 1)
        assert sorted(m.matched for m in result.matches) == expected

    def test_negative_distance_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            similar_collected(ctx, "apple", TEXT_ATTR, -2)


class TestSimilarAll:
    def test_single_predicate_equals_similar(self, ctx):
        predicate = StringPredicate(TEXT_ATTR, "apple", 1)
        combined = similar_all(ctx, [predicate])
        single = similar(ctx, "apple", TEXT_ATTR, 1)
        assert {m.oid for m in combined} == {m.oid for m in single.matches}

    def test_conjunction_intersects(self, ctx):
        # Words close to both 'apple' and 'apply'.
        matches = similar_all(
            ctx,
            [
                StringPredicate(TEXT_ATTR, "apple", 1),
                StringPredicate(TEXT_ATTR, "apply", 1),
            ],
        )
        expected = {
            w
            for w in WORDS
            if edit_distance("apple", w) <= 1 and edit_distance("apply", w) <= 1
        }
        assert {m.matched for m in matches} <= {w for w in WORDS}
        assert {
            m.value_of(TEXT_ATTR) for m in matches
        } == expected

    def test_empty_intersection(self, ctx):
        matches = similar_all(
            ctx,
            [
                StringPredicate(TEXT_ATTR, "apple", 0),
                StringPredicate(TEXT_ATTR, "cherry", 0),
            ],
        )
        assert matches == []

    def test_no_predicates_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            similar_all(ctx, [])


class TestEuclideanSimilar:
    @pytest.fixture(scope="class")
    def points_ctx(self):
        triples = []
        points = [(0.0, 0.0), (1.0, 1.0), (3.0, 4.0), (6.0, 8.0), (-2.0, 1.0)]
        for i, (x, y) in enumerate(points):
            oid = f"p:{i:03d}"
            triples.append(Triple(oid, "pt:x", x))
            triples.append(Triple(oid, "pt:y", y))
        from repro.core.config import StoreConfig
        from repro.overlay.network import PGridNetwork

        config = StoreConfig(seed=6)
        probe = PGridNetwork(1, config)
        sample = [e.key for e in probe.entry_factory.entries_for_all(triples)]
        network = PGridNetwork(24, config, sample_keys=sample)
        network.insert_triples(triples)
        return OperatorContext(network), points

    def test_ball_membership(self, points_ctx):
        ctx, points = points_ctx
        matches = euclidean_similar(ctx, ["pt:x", "pt:y"], (0.0, 0.0), 5.0)
        expected = sorted(
            (x**2 + y**2) ** 0.5 for x, y in points if (x**2 + y**2) ** 0.5 <= 5.0
        )
        assert [round(m.distance, 6) for m in matches] == [
            round(d, 6) for d in expected
        ]

    def test_box_corner_excluded(self, points_ctx):
        # (3,4) is inside the radius-5 box around (0,0) but at exactly
        # distance 5; (6,8) is outside both.
        ctx, __ = points_ctx
        matches = euclidean_similar(ctx, ["pt:x", "pt:y"], (0.0, 0.0), 4.9)
        oids = {m.oid for m in matches}
        assert "p:002" not in oids  # (3,4) -> distance 5.0 > 4.9
        assert "p:003" not in oids

    def test_dimension_mismatch_rejected(self, points_ctx):
        ctx, __ = points_ctx
        with pytest.raises(ExecutionError):
            euclidean_similar(ctx, ["pt:x"], (0.0, 0.0), 1.0)

    def test_full_objects_attached(self, points_ctx):
        ctx, __ = points_ctx
        matches = euclidean_similar(ctx, ["pt:x", "pt:y"], (1.0, 1.0), 0.1)
        assert matches and matches[0].triples
