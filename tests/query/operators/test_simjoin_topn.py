"""Unit tests for similarity joins (Algorithm 3) and top-N (Algorithms 4/5)."""

import pytest

from repro.core.config import RankFunction, SimilarityStrategy
from repro.core.errors import ExecutionError
from repro.query.operators.base import OperatorContext
from repro.query.operators.simjoin import anchored_sim_join, sim_join
from repro.query.operators.topn import top_n_numeric, top_n_string_nn
from repro.similarity.edit_distance import edit_distance

from tests.conftest import LEN_ATTR, TEXT_ATTR, WORDS, build_word_network


@pytest.fixture(scope="module")
def ctx():
    return OperatorContext(build_word_network(n_peers=48))


class TestSimJoin:
    def test_self_join_matches_brute_force(self, ctx):
        result = sim_join(ctx, TEXT_ATTR, TEXT_ATTR, 1)
        expected = {
            (a, b)
            for a in WORDS
            for b in WORDS
            if edit_distance(a, b) <= 1
        }
        got = {(str(p.left.value), p.right.matched) for p in result.pairs}
        assert got == expected

    def test_left_size_and_probes(self, ctx):
        result = sim_join(ctx, TEXT_ATTR, TEXT_ATTR, 1)
        assert result.left_size == len(WORDS)
        assert result.probes == len(WORDS)

    def test_value_cache_reduces_probes(self, ctx):
        # All words are distinct here, so force duplicates via LEN_ATTR...
        # string join caching is exercised with the same-attribute join.
        cached = sim_join(ctx, TEXT_ATTR, TEXT_ATTR, 1, cache_values=True)
        assert cached.probes == len(set(WORDS))

    def test_schema_level_join(self, ctx):
        result = sim_join(ctx, TEXT_ATTR, "", 2, cache_values=True)
        # Word values are far (edit distance) from attribute names, so the
        # join is empty — but it must run without error.
        assert result.left_size == len(WORDS)

    def test_unanchored_left_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            sim_join(ctx, "", TEXT_ATTR, 1)


class TestAnchoredSimJoin:
    def test_anchored_at_search_string(self, ctx):
        result = anchored_sim_join(ctx, TEXT_ATTR, "apple", TEXT_ATTR, 1)
        assert result.left_size == 1
        expected = sorted(w for w in WORDS if edit_distance("apple", w) <= 1)
        assert sorted(p.right.matched for p in result.pairs) == expected

    def test_anchor_not_in_data(self, ctx):
        result = anchored_sim_join(ctx, TEXT_ATTR, "nosuch", TEXT_ATTR, 1)
        assert result.left_size == 0
        assert result.pairs == []

    def test_strategy_override(self, ctx):
        naive = anchored_sim_join(
            ctx, TEXT_ATTR, "apple", TEXT_ATTR, 1,
            strategy=SimilarityStrategy.NAIVE,
        )
        qgram = anchored_sim_join(
            ctx, TEXT_ATTR, "apple", TEXT_ATTR, 1,
            strategy=SimilarityStrategy.QGRAM,
        )
        assert {p.right.matched for p in naive.pairs} == {
            p.right.matched for p in qgram.pairs
        }


class TestTopNNumeric:
    def test_max_ranking(self, ctx):
        result = top_n_numeric(ctx, LEN_ATTR, 3, RankFunction.MAX)
        got = [m.distance for m in result.matches]
        assert got == sorted((float(len(w)) for w in WORDS), reverse=True)[:3]

    def test_min_ranking(self, ctx):
        result = top_n_numeric(ctx, LEN_ATTR, 3, RankFunction.MIN)
        got = [m.distance for m in result.matches]
        assert got == sorted(float(len(w)) for w in WORDS)[:3]

    def test_nn_ranking(self, ctx):
        result = top_n_numeric(ctx, LEN_ATTR, 5, RankFunction.NN, reference=6.0)
        got = [m.distance for m in result.matches]
        assert got == sorted(abs(len(w) - 6.0) for w in WORDS)[:5]

    def test_n_larger_than_data(self, ctx):
        result = top_n_numeric(ctx, LEN_ATTR, 10_000, RankFunction.MIN)
        assert len(result.matches) == len(WORDS)

    def test_fetch_full_objects(self, ctx):
        result = top_n_numeric(
            ctx, LEN_ATTR, 2, RankFunction.MAX, fetch_full_objects=True
        )
        assert all(m.value_of(TEXT_ATTR) is not None for m in result.matches)

    def test_invalid_n(self, ctx):
        with pytest.raises(ExecutionError):
            top_n_numeric(ctx, LEN_ATTR, 0, RankFunction.MAX)

    def test_missing_attribute(self, ctx):
        with pytest.raises(ExecutionError):
            top_n_numeric(ctx, "word:nosuch", 3, RankFunction.MAX)

    def test_probing_rounds_recorded(self, ctx):
        result = top_n_numeric(ctx, LEN_ATTR, 3, RankFunction.MAX)
        assert result.rounds >= 1
        assert len(result.probed_intervals) == result.rounds


class TestTopNString:
    def test_nearest_neighbours(self, ctx):
        result = top_n_string_nn(ctx, TEXT_ATTR, "apple", 4, max_distance=5)
        got = [m.distance for m in result.matches]
        expected = sorted(edit_distance("apple", w) for w in WORDS)[:4]
        assert got == expected

    def test_deepening_stops_early(self, ctx):
        result = top_n_string_nn(ctx, TEXT_ATTR, "apple", 1, max_distance=5)
        assert result.rounds == 1  # exact match found at d=0

    def test_max_distance_bounds_rounds(self, ctx):
        result = top_n_string_nn(ctx, TEXT_ATTR, "qqqq", 3, max_distance=2)
        assert result.rounds == 3  # d = 0, 1, 2
        assert all(m.distance <= 2 for m in result.matches)

    def test_invalid_n(self, ctx):
        with pytest.raises(ExecutionError):
            top_n_string_nn(ctx, TEXT_ATTR, "apple", 0)
